//! Shared fluid–structure interaction plumbing used by both engines.
//!
//! One FSI substep (paper §2.3): membrane + contact forces on every cell →
//! spread onto the lattice (Eq. 6) → LBM step → interpolate velocities
//! (Eq. 4) → advect vertices (Eq. 5).

use apr_cells::{apply_contact_forces, rebuild_grid, CellPool, ContactParams, UniformSubgrid};
use apr_ibm::{interpolate_velocity, DeltaKernel};
use apr_lattice::Lattice;
use apr_mesh::Vec3;

/// Zero all cell force buffers and accumulate membrane elastic forces,
/// in parallel across cells. Returns total elastic energy (summed in
/// deterministic slot-chunk order, thread-count independent).
pub fn compute_membrane_forces(pool: &mut CellPool) -> f64 {
    pool.par_map_sum(|cell| {
        cell.clear_forces();
        cell.compute_membrane_forces().total()
    })
}

/// Rebuild the spatial grid and add intercellular contact forces.
pub fn compute_contact_forces(
    pool: &mut CellPool,
    grid: &mut UniformSubgrid,
    params: ContactParams,
) -> usize {
    rebuild_grid(grid, pool);
    apply_contact_forces(pool, grid, params)
}

/// Spread every cell's vertex forces onto the lattice force field.
/// Positions are mapped by `to_lattice` (world → lattice coordinates);
/// force magnitudes are scaled by `force_scale` (world → lattice units).
pub fn spread_cell_forces(
    lattice: &mut Lattice,
    pool: &CellPool,
    kernel: DeltaKernel,
    to_lattice: impl Fn(Vec3) -> Vec3,
    force_scale: f64,
) {
    // Batch every cell's vertices (in slot order) into one spread so the
    // parallel scatter amortizes its scratch fields over the whole
    // suspension instead of per cell.
    let total: usize = pool.iter().map(|c| c.vertices.len()).sum();
    let mut positions = Vec::with_capacity(total);
    let mut forces = Vec::with_capacity(total);
    for cell in pool.iter() {
        positions.extend(cell.vertices.iter().map(|&v| to_lattice(v)));
        forces.extend(cell.forces.iter().map(|&f| f * force_scale));
    }
    let scratch = apr_exec::ScratchPool::new();
    let mut field = std::mem::take(&mut lattice.force);
    apr_ibm::spread_forces_into(lattice, &positions, &forces, kernel, &mut field, &scratch);
    lattice.force = field;
}

/// Interpolate lattice velocities at every vertex and advect the cells.
/// `to_lattice` maps world → lattice coordinates; `dt_world` converts one
/// lattice step of displacement back into world units (for a lattice whose
/// spacing is `1/n` world units per node, pass `1/n`).
pub fn advect_cells(
    lattice: &Lattice,
    pool: &mut CellPool,
    kernel: DeltaKernel,
    to_lattice: impl Fn(Vec3) -> Vec3 + Sync,
    dt_world: f64,
) {
    pool.par_for_each_mut(|cell| {
        let velocities: Vec<Vec3> = cell
            .vertices
            .iter()
            .map(|&v| interpolate_velocity(lattice, to_lattice(v), kernel))
            .collect();
        cell.advect(&velocities, dt_world);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_cells::CellKind;
    use apr_membrane::{Membrane, MembraneMaterial, ReferenceState};
    use apr_mesh::icosphere;
    use std::sync::Arc;

    fn pool_with_sphere(radius: f64, center: Vec3) -> CellPool {
        let mesh = icosphere(2, radius);
        let re = Arc::new(ReferenceState::build(&mesh));
        let mem = Arc::new(Membrane::new(re, MembraneMaterial::rbc(1e-3, 1e-5)));
        let mut pool = CellPool::with_capacity(4);
        let verts = mesh.vertices.iter().map(|&v| v + center).collect();
        pool.insert_shape(CellKind::Rbc, mem, verts);
        pool
    }

    #[test]
    fn undeformed_cell_exerts_negligible_force() {
        let mut pool = pool_with_sphere(3.0, Vec3::splat(8.0));
        let energy = compute_membrane_forces(&mut pool);
        assert!(energy.abs() < 1e-12);
        let mut lat = Lattice::new(16, 16, 16, 1.0);
        lat.periodic = [true, true, true];
        spread_cell_forces(&mut lat, &pool, DeltaKernel::Cosine4, |v| v, 1.0);
        let total: f64 = lat.force.iter().map(|f| f.abs()).sum();
        assert!(total < 1e-9, "force leak {total}");
    }

    #[test]
    fn advection_follows_uniform_flow() {
        let mut pool = pool_with_sphere(2.0, Vec3::splat(8.0));
        let mut lat = Lattice::new(16, 16, 16, 1.0);
        lat.periodic = [true, true, true];
        lat.initialize_equilibrium(1.0, [0.02, 0.0, -0.01]);
        let c0 = pool.iter().next().unwrap().centroid();
        for _ in 0..10 {
            advect_cells(&lat, &mut pool, DeltaKernel::Cosine4, |v| v, 1.0);
        }
        let c1 = pool.iter().next().unwrap().centroid();
        let expected = c0 + Vec3::new(0.2, 0.0, -0.1);
        assert!((c1 - expected).norm() < 1e-9, "{c1:?}");
    }

    #[test]
    fn coordinate_mapping_offsets_spreading() {
        // World coordinates offset by (−4, −4, −4) must deposit forces at
        // the mapped lattice location.
        let mut pool = pool_with_sphere(2.0, Vec3::splat(12.0));
        // Deform slightly so forces exist.
        for cell in pool.iter_mut() {
            for v in &mut cell.vertices {
                *v = Vec3::splat(12.0) + (*v - Vec3::splat(12.0)) * 1.05;
            }
        }
        compute_membrane_forces(&mut pool);
        let mut lat = Lattice::new(16, 16, 16, 1.0);
        lat.periodic = [true, true, true];
        spread_cell_forces(
            &mut lat,
            &pool,
            DeltaKernel::Cosine4,
            |v| v - Vec3::splat(4.0),
            1.0,
        );
        // Forces centred near lattice (8,8,8), not (12,12,12).
        let near = lat.idx(8, 8, 8);
        let far = lat.idx(14, 14, 14);
        let mag = |n: usize| {
            (lat.force[n * 3].powi(2) + lat.force[n * 3 + 1].powi(2) + lat.force[n * 3 + 2].powi(2))
                .sqrt()
        };
        // The shell of the sphere (radius 2.1 around centre 8) carries force.
        let shell = lat.idx(10, 8, 8);
        assert!(mag(shell) + mag(near) > 0.0);
        assert_eq!(mag(far), 0.0);
    }
}
