//! Physical-units configuration: from paper-style parameters (metres,
//! pascal-seconds, newtons per metre) to lattice-unit engine inputs.
//!
//! The paper specifies every run physically — Δx in µm, plasma at 1.2 cP,
//! whole blood at 4 cP, `G_s = 5·10⁻⁶ N/m` — and HARVEY derives lattice
//! parameters internally. [`PhysicalConfig`] is that derivation: fix the
//! coarse grid spacing, the coarse relaxation time and the refinement
//! ratio, and every other lattice quantity follows.

use apr_coupling::fine_tau;
use apr_hemo::UnitConverter;
use apr_membrane::MembraneMaterial;

/// Physical description of a coupled APR problem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysicalConfig {
    /// Coarse lattice spacing, m.
    pub dx_coarse: f64,
    /// Refinement ratio n.
    pub refinement: usize,
    /// Coarse relaxation time (sets Δt through the blood viscosity).
    pub tau_coarse: f64,
    /// Whole-blood dynamic viscosity, Pa·s.
    pub blood_viscosity: f64,
    /// Plasma dynamic viscosity, Pa·s.
    pub plasma_viscosity: f64,
    /// Blood mass density, kg/m³.
    pub density: f64,
}

impl PhysicalConfig {
    /// The paper's default fluids (4 cP blood, 1.2 cP plasma, 1060 kg/m³).
    pub fn paper_defaults(dx_coarse: f64, refinement: usize, tau_coarse: f64) -> Self {
        Self {
            dx_coarse,
            refinement,
            tau_coarse,
            blood_viscosity: apr_hemo::WHOLE_BLOOD_VISCOSITY,
            plasma_viscosity: apr_hemo::PLASMA_VISCOSITY,
            density: 1060.0,
        }
    }

    /// Viscosity ratio λ = ν_plasma/ν_blood (paper §2.4.1).
    pub fn lambda(&self) -> f64 {
        self.plasma_viscosity / self.blood_viscosity
    }

    /// Fine relaxation time via Eq. 7.
    pub fn tau_fine(&self) -> f64 {
        fine_tau(self.tau_coarse, self.refinement, self.lambda())
    }

    /// Unit converter for the coarse lattice (Δt from blood ν and τ_c).
    pub fn coarse_units(&self) -> UnitConverter {
        UnitConverter::from_viscosity(
            self.dx_coarse,
            self.blood_viscosity / self.density,
            self.tau_coarse,
            self.density,
        )
    }

    /// Unit converter for the fine lattice (convective scaling:
    /// Δx_f = Δx_c/n, Δt_f = Δt_c/n).
    pub fn fine_units(&self) -> UnitConverter {
        let c = self.coarse_units();
        UnitConverter::new(
            c.dx / self.refinement as f64,
            c.dt / self.refinement as f64,
            c.rho,
        )
    }

    /// Convert a physical body-force density (N/m³) into coarse lattice
    /// units; the fine lattice takes this divided by n.
    pub fn body_force_lattice(&self, f_si: f64) -> f64 {
        self.coarse_units().body_force_to_lattice(f_si)
    }

    /// RBC membrane material in **fine-lattice units** from physical
    /// moduli (`gs` N/m, `eb` J).
    pub fn rbc_material(&self, gs: f64, eb: f64) -> MembraneMaterial {
        let u = self.fine_units();
        MembraneMaterial::rbc(
            u.surface_modulus_to_lattice(gs),
            u.bending_modulus_to_lattice(eb),
        )
    }

    /// CTC membrane material in fine-lattice units.
    pub fn ctc_material(&self, gs: f64, eb: f64) -> MembraneMaterial {
        let u = self.fine_units();
        MembraneMaterial::ctc(
            u.surface_modulus_to_lattice(gs),
            u.bending_modulus_to_lattice(eb),
        )
    }

    /// A physical length in fine lattice units.
    pub fn length_fine(&self, l_si: f64) -> f64 {
        self.fine_units().length_to_lattice(l_si)
    }

    /// A physical length in coarse lattice units.
    pub fn length_coarse(&self, l_si: f64) -> f64 {
        self.coarse_units().length_to_lattice(l_si)
    }

    /// Physical duration of one coarse step, s.
    pub fn coarse_dt(&self) -> f64 {
        self.coarse_units().dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> PhysicalConfig {
        // Figure 6 parameters: Δx_c = 2.5 µm, n = 5, τ_c = 1.
        PhysicalConfig::paper_defaults(2.5e-6, 5, 1.0)
    }

    #[test]
    fn lambda_matches_paper_fluids() {
        let c = config();
        assert!((c.lambda() - 0.3).abs() < 1e-12, "λ = {}", c.lambda());
    }

    #[test]
    fn fine_tau_is_stable() {
        let c = config();
        let tau_f = c.tau_fine();
        assert!(tau_f > 0.5 && tau_f < 2.0, "τ_f = {tau_f}");
        // Eq. 7 by hand: 0.5 + 5·0.3·0.5 = 1.25.
        assert!((tau_f - 1.25).abs() < 1e-12);
    }

    #[test]
    fn convective_scaling_links_converters() {
        let c = config();
        let cc = c.coarse_units();
        let fc = c.fine_units();
        assert!((cc.dx / fc.dx - 5.0).abs() < 1e-12);
        assert!((cc.dt / fc.dt - 5.0).abs() < 1e-12);
        // Lattice velocities are identical across grids under convective
        // scaling: u_lat = u_SI·dt/dx has the same value.
        let u = 0.05;
        assert!((cc.velocity_to_lattice(u) - fc.velocity_to_lattice(u)).abs() < 1e-15);
    }

    #[test]
    fn fine_viscosity_is_plasma() {
        let c = config();
        let fc = c.fine_units();
        let nu_f = fc.viscosity_for_tau(c.tau_fine());
        let expected = c.plasma_viscosity / c.density;
        assert!(
            (nu_f - expected).abs() / expected < 1e-12,
            "ν_f = {nu_f} vs plasma {expected}"
        );
    }

    #[test]
    fn paper_rbc_modulus_is_numerically_reasonable() {
        // G_s = 5e-6 N/m on the 0.5 µm fine grid: the lattice value must be
        // usable by an explicit scheme (≪ 1) but far above round-off.
        let c = config();
        let m = c.rbc_material(5e-6, 2e-19);
        assert!(
            m.shear_modulus > 1e-6 && m.shear_modulus < 1.0,
            "lattice G_s = {}",
            m.shear_modulus
        );
        // CTC is 20× stiffer in the same units.
        let ctc = c.ctc_material(1e-4, 2e-19);
        assert!((ctc.shear_modulus / m.shear_modulus - 20.0).abs() < 1e-9);
    }

    #[test]
    fn coarse_step_duration_is_physiological() {
        // Δt = ν_lat·Δx²/ν_SI with ν_lat = 1/6 at τ=1: Δx 2.5 µm, blood
        // ν ≈ 3.77e-6 m²/s → Δt ≈ 0.28 µs. Thousands of steps per ms: right
        // order for cellular flow simulations.
        let dt = config().coarse_dt();
        assert!(dt > 1e-8 && dt < 1e-5, "Δt = {dt}");
    }
}
