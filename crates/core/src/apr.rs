//! The APR engine: coarse bulk fluid + moving cell-resolved window
//! (paper §2.4, the primary contribution).
//!
//! Coordinate convention: **cells live in fine-lattice coordinates** and the
//! window anatomy is centred in the fine domain. A window move shifts the
//! fine lattice's origin within the coarse lattice by a whole number of
//! coarse cells and translates every cell the opposite way, so the window
//! always occupies the entire fine lattice. World positions are recovered
//! through [`AprEngine::fine_to_world`].

use crate::fsi;
use apr_cells::{CellKind, CellPool, ContactParams, UniformSubgrid};
use apr_coupling::CouplingMap;
use apr_ibm::DeltaKernel;
use apr_lattice::{KernelKind, Lattice, RuntimeConfig, SubStep};
use apr_membrane::Membrane;
use apr_mesh::Vec3;
use apr_observe::{ConservationLedger, DomainTotals, LedgerConfig, WindowFlux};
use apr_window::{
    move_window, remove_escaped_cells, repopulate, CtcTracker, HematocritController,
    InsertionContext, InsertionReport, MoveTrigger, WindowAnatomy,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Geometry callback: re-flag the fine lattice for a new window origin
/// (coarse-lattice coordinates of fine node 0).
pub type FineGeometry = Box<dyn Fn(&mut Lattice, [f64; 3]) + Send + Sync>;

/// Bulk driver callback: runs on the coarse lattice at the start of every
/// engine step, before the coarse collide/stream, with the number of steps
/// completed so far. Used for time-dependent boundary forcing (pulsatile
/// inlets restamp their `Boundary::Velocity` values here). Like
/// [`FineGeometry`], the driver is code-not-state: it must be a pure
/// function of `(lattice, step)` so a resumed checkpoint replays the same
/// forcing.
pub type BulkDriver = Box<dyn Fn(&mut Lattice, u64) + Send + Sync>;

/// Window steering callback: given the CTC trajectory so far and the CTC's
/// current **world** (coarse-lattice) position, return the world point the
/// next window move should aim at. The default (no steer) aims at the CTC
/// itself; a steer can lead the target into a chosen daughter branch when
/// the window approaches a junction. Code-not-state, like [`FineGeometry`].
pub type WindowSteer = Box<dyn Fn(&CtcTracker, Vec3) -> Vec3 + Send + Sync>;

/// Report of one engine step.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AprStepReport {
    /// Did the window move this step?
    pub moved: bool,
    /// Insertion activity this step (if maintenance ran).
    pub insertion: Option<InsertionReport>,
    /// Cells removed after crossing the window boundary.
    pub escaped: usize,
}

/// Adaptive-physics-refinement simulation: coarse bulk + fine moving window
/// with explicit deformable cells.
pub struct AprEngine {
    /// Coarse (bulk, whole-blood) lattice.
    pub coarse: Lattice,
    /// Fine (window, plasma) lattice.
    pub fine: Lattice,
    /// Bulk↔window coupling.
    pub map: CouplingMap,
    /// Window anatomy in fine coordinates (centred in the fine domain).
    pub anatomy: WindowAnatomy,
    /// Live cells (fine coordinates).
    pub pool: CellPool,
    /// Spatial hash over cell vertices (fine coordinates).
    pub grid: UniformSubgrid,
    /// Intercellular repulsion.
    pub contact: ContactParams,
    /// IBM delta kernel.
    pub kernel: DeltaKernel,
    /// Hematocrit controller (None = no density maintenance).
    pub controller: Option<HematocritController>,
    /// Insertion machinery (None = no repopulation).
    pub insertion: Option<InsertionContext>,
    /// Window-move trigger.
    pub trigger: MoveTrigger,
    /// CTC trajectory in world (coarse-lattice) coordinates.
    pub tracker: CtcTracker,
    /// Steps between window-maintenance sweeps.
    pub maintenance_interval: u64,
    /// Conservation ledger (None = no per-step accounting; stepping then
    /// costs nothing beyond the existing gauges).
    pub ledger: Option<ConservationLedger>,
    pub(crate) geometry: Option<FineGeometry>,
    pub(crate) bulk_driver: Option<BulkDriver>,
    pub(crate) steer: Option<WindowSteer>,
    pub(crate) rng: StdRng,
    pub(crate) steps: u64,
    pub(crate) site_updates: u64,
    pub(crate) moves: u64,
    /// CTC membrane model, captured by [`AprEngine::add_ctc`] so the
    /// engine can resume checkpoints containing a CTC without the caller
    /// re-supplying it (membranes are code-not-state; see
    /// [`crate::guardian`]).
    pub(crate) ctc_membrane: Option<Arc<Membrane>>,
}

/// Staged construction for [`AprEngine`].
///
/// Required inputs (lattices, window origin, refinement ratio, viscosity
/// ratio) are taken by [`AprEngine::builder`]; everything else has a
/// paper-faithful default:
///
/// * window anatomy — proper/on-ramp/insertion widths of 0.22/0.12/0.14 ×
///   the fine domain span (the §3.2 layout every example uses),
/// * contact — cutoff 1.2 fine spacings, strength 5 × 10⁻⁴,
/// * kernel — [`DeltaKernel::Cosine4`],
/// * RNG seed — `0x5eed`,
/// * maintenance interval — 50 steps.
pub struct AprEngineBuilder {
    coarse: Lattice,
    fine: Lattice,
    origin: [f64; 3],
    n: usize,
    lambda: f64,
    window: Option<(f64, f64, f64)>,
    contact: ContactParams,
    kernel: DeltaKernel,
    lbm_kernel: Option<KernelKind>,
    runtime: Option<RuntimeConfig>,
    seed: u64,
    maintenance_interval: u64,
    pool_capacity: usize,
    ledger: Option<LedgerConfig>,
}

impl AprEngineBuilder {
    /// Window anatomy in **fine** lattice units: half-width of the proper
    /// region, on-ramp width, insertion-region width. Their sum should
    /// reach (near) the fine domain boundary.
    pub fn window(mut self, proper_half: f64, onramp: f64, insertion_width: f64) -> Self {
        self.window = Some((proper_half, onramp, insertion_width));
        self
    }

    /// Intercellular contact repulsion parameters.
    pub fn contact(mut self, contact: ContactParams) -> Self {
        self.contact = contact;
        self
    }

    /// IBM delta kernel for all interpolation/spreading.
    pub fn kernel(mut self, kernel: DeltaKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// LBM collide/stream kernel variant for both lattices; `None`
    /// (the default) defers to `APR_KERNEL` / the startup micro-probe.
    pub fn lbm_kernel(mut self, kind: impl Into<Option<KernelKind>>) -> Self {
        self.lbm_kernel = kind.into();
        self
    }

    /// Apply a whole [`RuntimeConfig`] to this engine: the kernel override
    /// (when `Some`, it wins over any earlier [`Self::lbm_kernel`] call)
    /// and the chunking policy, on both lattices. The `threads` knob is
    /// process-wide and is **not** applied here — call
    /// [`RuntimeConfig::install`] once at startup for that; this method
    /// only scopes the per-engine knobs so two engines in one process can
    /// run different kernels.
    pub fn runtime(mut self, cfg: RuntimeConfig) -> Self {
        self.runtime = Some(cfg);
        self
    }

    /// Seed of the deterministic RNG driving cell insertion.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Steps between window-maintenance sweeps (escape removal and
    /// repopulation).
    pub fn maintenance_interval(mut self, steps: u64) -> Self {
        assert!(steps > 0, "maintenance interval must be positive");
        self.maintenance_interval = steps;
        self
    }

    /// Preallocated cell slots (paper §2.4.5 allocates all cell memory up
    /// front).
    pub fn pool_capacity(mut self, slots: usize) -> Self {
        self.pool_capacity = slots;
        self
    }

    /// Arm the conservation ledger: every step samples bulk and window
    /// mass/momentum totals (deterministic ordered reduction), tracks
    /// drift against `config`'s tolerances, and publishes the sample to
    /// the metrics hub. Latched breaches surface as
    /// `HealthIssue::ConservationDrift` at the next guardian inspection.
    pub fn ledger(mut self, config: LedgerConfig) -> Self {
        self.ledger = Some(config);
        self
    }

    /// Assemble the engine: builds the bulk↔window coupling and seeds the
    /// fine fluid from the coarse solution.
    pub fn build(self) -> AprEngine {
        let AprEngineBuilder {
            mut coarse,
            mut fine,
            origin,
            n,
            lambda,
            window,
            contact,
            kernel,
            lbm_kernel,
            runtime,
            seed,
            maintenance_interval,
            pool_capacity,
            ledger,
        } = self;
        if let Some(kind) = lbm_kernel {
            coarse.set_kernel(Some(kind));
            fine.set_kernel(Some(kind));
        }
        if let Some(cfg) = runtime {
            if let Some(kind) = cfg.kernel {
                coarse.set_kernel(Some(kind));
                fine.set_kernel(Some(kind));
            }
            coarse.set_chunking(Some(cfg.chunking));
            fine.set_chunking(Some(cfg.chunking));
        }
        // Stamp the effective runtime knobs as run attributes: the flight
        // recorder copies them into its dump header, so a post-mortem
        // identifies the kernel/thread/chunking configuration that
        // produced it.
        let kernel_attr = runtime.and_then(|c| c.kernel).or(lbm_kernel);
        apr_telemetry::set_attribute(
            "runtime.kernel",
            match kernel_attr {
                Some(KernelKind::Reference) => "reference",
                Some(KernelKind::FusedSwap) => "fused",
                Some(KernelKind::FusedSimd) => "simd",
                None => "auto",
            },
        );
        apr_telemetry::set_attribute("runtime.threads", apr_exec::current_threads().to_string());
        apr_telemetry::set_attribute(
            "runtime.chunking",
            runtime.map_or("guided", |c| c.chunking.as_str()),
        );
        let (proper_half, onramp, insertion_width) = window.unwrap_or_else(|| {
            let span = (fine.nx.min(fine.ny).min(fine.nz) - 1) as f64;
            (span * 0.22, span * 0.12, span * 0.14)
        });
        let map = CouplingMap::new(&coarse, &fine, origin, n, lambda, 1.0);
        map.seed_fine_from_coarse(&coarse, &mut fine);
        let center = Vec3::new(
            (fine.nx - 1) as f64 / 2.0,
            (fine.ny - 1) as f64 / 2.0,
            (fine.nz - 1) as f64 / 2.0,
        );
        let anatomy = WindowAnatomy::new(center, proper_half, onramp, insertion_width);
        let grid = UniformSubgrid::new(contact.cutoff.max(2.0));
        AprEngine {
            coarse,
            fine,
            map,
            anatomy,
            pool: CellPool::with_capacity(pool_capacity),
            grid,
            contact,
            kernel,
            controller: None,
            insertion: None,
            trigger: MoveTrigger {
                trigger_distance: proper_half * 0.25,
            },
            tracker: CtcTracker::new(),
            maintenance_interval,
            ledger: ledger.map(ConservationLedger::new),
            geometry: None,
            bulk_driver: None,
            steer: None,
            rng: StdRng::seed_from_u64(seed),
            steps: 0,
            site_updates: 0,
            moves: 0,
            ctc_membrane: None,
        }
    }
}

impl AprEngine {
    /// Start building an engine from prepared lattices.
    ///
    /// * `origin` — coarse coordinates of fine node 0.
    /// * `n` — refinement ratio; `lambda` — viscosity ratio ν_f/ν_c.
    ///
    /// See [`AprEngineBuilder`] for the defaulted knobs.
    pub fn builder(
        coarse: Lattice,
        fine: Lattice,
        origin: [f64; 3],
        n: usize,
        lambda: f64,
    ) -> AprEngineBuilder {
        AprEngineBuilder {
            coarse,
            fine,
            origin,
            n,
            lambda,
            window: None,
            contact: ContactParams {
                cutoff: 1.2,
                strength: 5e-4,
            },
            kernel: DeltaKernel::Cosine4,
            lbm_kernel: None,
            runtime: None,
            seed: 0x5eed,
            maintenance_interval: 50,
            pool_capacity: 256,
            ledger: None,
        }
    }

    /// Install a geometry callback re-flagging the fine lattice after moves;
    /// applies it immediately for the current origin.
    pub fn set_fine_geometry(&mut self, geometry: FineGeometry) {
        geometry(&mut self.fine, self.map.origin);
        self.rebuild_coupling();
        self.map.seed_fine_from_coarse(&self.coarse, &mut self.fine);
        self.geometry = Some(geometry);
    }

    /// Install a bulk driver applying time-dependent forcing to the coarse
    /// lattice at the start of every step (see [`BulkDriver`]).
    pub fn set_bulk_driver(&mut self, driver: BulkDriver) {
        self.bulk_driver = Some(driver);
    }

    /// Install a window-steering callback biasing where window moves aim
    /// (see [`WindowSteer`]).
    pub fn set_window_steer(&mut self, steer: WindowSteer) {
        self.steer = Some(steer);
    }

    /// Reseed the deterministic RNG driving cell insertion.
    pub fn reseed_rng(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// World (coarse-lattice) coordinates of a fine-coordinate point.
    pub fn fine_to_world(&self, p: Vec3) -> Vec3 {
        Vec3::new(
            self.map.origin[0] + p.x / self.map.n as f64,
            self.map.origin[1] + p.y / self.map.n as f64,
            self.map.origin[2] + p.z / self.map.n as f64,
        )
    }

    /// Fine coordinates of a world point.
    pub fn world_to_fine(&self, p: Vec3) -> Vec3 {
        Vec3::new(
            (p.x - self.map.origin[0]) * self.map.n as f64,
            (p.y - self.map.origin[1]) * self.map.n as f64,
            (p.z - self.map.origin[2]) * self.map.n as f64,
        )
    }

    /// Add a CTC with explicit shape (fine coordinates); returns its ID.
    /// The membrane model is retained so checkpoints containing the CTC
    /// can be resumed through [`crate::SimSession::resume`].
    pub fn add_ctc(&mut self, membrane: Arc<Membrane>, vertices: Vec<Vec3>) -> u64 {
        self.ctc_membrane = Some(Arc::clone(&membrane));
        let (_, id) = self.pool.insert_shape(CellKind::Ctc, membrane, vertices);
        id
    }

    /// Add an RBC with explicit shape (fine coordinates); returns its ID.
    pub fn add_rbc(&mut self, membrane: Arc<Membrane>, vertices: Vec<Vec3>) -> u64 {
        let (_, id) = self.pool.insert_shape(CellKind::Rbc, membrane, vertices);
        id
    }

    /// Initially pack the window interior with RBCs from the insertion
    /// context's tile, skipping overlaps with existing cells (the paper
    /// §3.2 packs each domain before flow starts). Returns inserted count.
    pub fn populate_window(&mut self) -> usize {
        let Some(ctx) = &self.insertion else { return 0 };
        apr_cells::rebuild_grid(&mut self.grid, &self.pool);
        let (lo, hi) = self.anatomy.bounds();
        let edge = (hi.x - lo.x).min(ctx.tile.edge);
        let placements = ctx.tile.sample_cube(edge, &mut self.rng);
        let mut inserted = 0;
        for p in placements {
            let mut verts = p.realize(&ctx.rbc_mesh);
            for v in &mut verts {
                *v += lo;
            }
            let centroid: Vec3 = verts.iter().copied().sum::<Vec3>() / verts.len() as f64;
            if !self.anatomy.contains(centroid) {
                continue;
            }
            if apr_cells::centroid_conflict(&self.pool, centroid, 2.0 * ctx.min_gap) {
                continue;
            }
            if let apr_cells::OverlapOutcome::Clear =
                apr_cells::test_overlap(&self.grid, &verts, ctx.min_gap)
            {
                let (_, id) =
                    self.pool
                        .insert_shape(CellKind::Rbc, Arc::clone(&ctx.rbc_membrane), verts);
                let cell = self.pool.find_by_id(id).expect("just inserted");
                self.grid.insert_cell(id, &cell.vertices);
                inserted += 1;
            }
        }
        inserted
    }

    /// Current CTC centroid in fine coordinates.
    pub fn ctc_position(&self) -> Option<Vec3> {
        self.pool
            .iter()
            .find(|c| c.kind == CellKind::Ctc)
            .map(|c| c.centroid())
    }

    /// Window hematocrit (if a controller is installed).
    pub fn window_hematocrit(&self) -> Option<f64> {
        self.controller
            .as_ref()
            .map(|c| c.window_hematocrit(&self.pool, &self.anatomy))
    }

    /// Advance one coarse step (with `n` fine FSI substeps), plus window
    /// maintenance and (when triggered) a window move.
    pub fn step(&mut self) -> AprStepReport {
        // 1-based: spans of this call are tagged with the value `steps()`
        // will have once it completes.
        let _step_scope = apr_telemetry::step_scope(self.steps + 1);
        let _step_span = apr_telemetry::span("apr.step");
        let mut report = AprStepReport::default();
        let mut flux = WindowFlux::default();
        if let Some(driver) = &self.bulk_driver {
            let _s = apr_telemetry::span("apr.bulk_driver");
            driver(&mut self.coarse, self.steps);
        }
        let old = {
            let _s = apr_telemetry::span("coupling.snapshot");
            self.map.snapshot(&self.coarse, &self.fine)
        };
        {
            let _s = apr_telemetry::span("apr.coarse");
            self.coarse.step();
        }
        let new = {
            let _s = apr_telemetry::span("coupling.snapshot");
            self.map.snapshot(&self.coarse, &self.fine)
        };
        let n = self.map.n;
        for k in 0..n {
            let theta = (k + 1) as f64 / n as f64;
            {
                let _s = apr_telemetry::span("fsi.membrane_forces");
                fsi::compute_membrane_forces(&mut self.pool);
            }
            {
                let _s = apr_telemetry::span("fsi.contact_forces");
                fsi::compute_contact_forces(&mut self.pool, &mut self.grid, self.contact);
            }
            {
                let _s = apr_telemetry::span("fsi.spread");
                self.fine.clear_forces();
                fsi::spread_cell_forces(&mut self.fine, &self.pool, self.kernel, |v| v, 1.0);
            }
            {
                let _s = apr_telemetry::span("apr.fine.collide");
                self.fine.advance(SubStep::Collide);
            }
            {
                let _s = apr_telemetry::span("coupling.impose_shell");
                self.map.impose_shell(&mut self.fine, &old, &new, theta);
            }
            {
                let _s = apr_telemetry::span("apr.fine.stream");
                self.fine.advance(SubStep::Stream);
            }
            {
                let _s = apr_telemetry::span("fsi.interpolate");
                fsi::advect_cells(&self.fine, &mut self.pool, self.kernel, |v| v, 1.0);
            }
        }
        {
            let _s = apr_telemetry::span("coupling.restrict");
            self.map.restrict(&mut self.coarse, &self.fine);
        }

        self.steps += 1;
        let step_sites =
            self.coarse.fluid_node_count() as u64 + (self.fine.fluid_node_count() * n) as u64;
        self.site_updates += step_sites;
        apr_telemetry::counter_add("apr.site_updates", step_sites);

        // Trajectory + window move.
        if let Some(ctc) = self.ctc_position() {
            let world = self.fine_to_world(ctc);
            self.tracker.record(self.steps, world);
            if self.trigger.should_move(&self.anatomy, ctc) {
                let _s = apr_telemetry::span("apr.window_move");
                if let Some(moved) = self.execute_window_move(ctc) {
                    report.moved = true;
                    flux = moved;
                }
            }
        }

        // Periodic density maintenance.
        if self.steps.is_multiple_of(self.maintenance_interval) {
            let _s = apr_telemetry::span("window.maintenance");
            let escaped = remove_escaped_cells(&mut self.pool, &mut self.grid, &self.anatomy);
            report.escaped = escaped;
            if escaped > 0 {
                apr_telemetry::emit(apr_telemetry::TelemetryEvent::EscapedCells {
                    step: self.steps,
                    count: escaped as u32,
                });
            }
            if let (Some(controller), Some(ctx)) = (&self.controller, &self.insertion) {
                let ins = repopulate(
                    &mut self.pool,
                    &mut self.grid,
                    &self.anatomy,
                    controller,
                    ctx,
                    &mut self.rng,
                );
                apr_telemetry::emit(apr_telemetry::TelemetryEvent::Repopulation {
                    step: self.steps,
                    needy_subregions: ins.needy_subregions as u32,
                    inserted: ins.inserted as u32,
                    rejected: (ins.rejected_overlap + ins.rejected_outside) as u32,
                });
                report.insertion = Some(ins);
            }
        }

        self.sample_ledger(flux);
        self.publish_gauges();
        report
    }

    /// Feed the conservation ledger, if one is armed. The totals come
    /// from the exec pool's fixed-shape ordered reduction, so arming the
    /// ledger never perturbs bit-identity of the physics it audits.
    fn sample_ledger(&mut self, flux: WindowFlux) {
        if self.ledger.is_none() {
            return;
        }
        let _s = apr_telemetry::span("observe.ledger");
        let (mass, momentum, nodes) = self.coarse.mass_momentum_totals();
        let bulk = DomainTotals {
            mass,
            momentum,
            fluid_nodes: nodes as u64,
        };
        let (mass, momentum, nodes) = self.fine.mass_momentum_totals();
        let window = DomainTotals {
            mass,
            momentum,
            fluid_nodes: nodes as u64,
        };
        let hematocrit = self.window_hematocrit();
        let steps = self.steps;
        let ledger = self.ledger.as_mut().expect("checked above");
        ledger.record(steps, bulk, window, hematocrit, flux);
    }

    /// Per-step observability: region occupancy and window hematocrit
    /// gauges. Skipped entirely (including the pool scan) when telemetry
    /// is disabled.
    fn publish_gauges(&self) {
        if !apr_telemetry::is_enabled() {
            return;
        }
        let occ = apr_window::region_occupancy(&self.pool, &self.anatomy);
        apr_window::publish_occupancy(&occ);
        if let Some(ht) = self.window_hematocrit() {
            apr_telemetry::gauge_set("window.hematocrit", ht);
        }
        apr_telemetry::gauge_set("apr.window_moves", self.moves as f64);
        apr_telemetry::gauge_set("exec.threads", apr_exec::current_threads() as f64);
    }

    /// Perform the §2.4.3 window move toward the CTC at fine position
    /// `ctc`. Returns the fill/capture flux of the move, or `None` if the
    /// shift rounds to zero or would leave the coarse domain.
    fn execute_window_move(&mut self, ctc: Vec3) -> Option<WindowFlux> {
        let n = self.map.n as f64;
        // Aim point: the CTC itself, unless a steer leads it (e.g. into a
        // daughter branch at a junction).
        let aim = match &self.steer {
            Some(steer) => {
                let world = self.fine_to_world(ctc);
                self.world_to_fine(steer(&self.tracker, world))
            }
            None => ctc,
        };
        // Integer coarse-cell shift bringing the aim point back to centre.
        let shift_c = Vec3::new(
            ((aim.x - self.anatomy.center.x) / n).round(),
            ((aim.y - self.anatomy.center.y) / n).round(),
            ((aim.z - self.anatomy.center.z) / n).round(),
        );
        if shift_c == Vec3::ZERO {
            return None;
        }
        let new_origin = [
            self.map.origin[0] + shift_c.x,
            self.map.origin[1] + shift_c.y,
            self.map.origin[2] + shift_c.z,
        ];
        // Keep the fine domain inside the coarse one.
        let fine_dims = [self.fine.nx, self.fine.ny, self.fine.nz];
        let coarse_dims = [self.coarse.nx, self.coarse.ny, self.coarse.nz];
        for a in 0..3 {
            if self.fine.periodic[a] {
                continue;
            }
            let hi = new_origin[a] + (fine_dims[a] - 1) as f64 / n;
            if new_origin[a] < 0.0 || hi > (coarse_dims[a] - 1) as f64 {
                return None;
            }
        }

        let shift_fine = shift_c * n;
        // Capture/fill in the old frame: the window recentres on the snap
        // target; fill copies are placed shifted by the displacement.
        let target = self.anatomy.center + shift_fine;
        let (_, move_report) = move_window(
            &self.anatomy,
            &mut self.pool,
            &mut self.grid,
            target,
            self.insertion.as_ref().map_or(1.0, |c| c.min_gap),
        );
        // Translate everything back so the anatomy stays domain-centred.
        for cell in self.pool.iter_mut() {
            cell.translate(-shift_fine);
        }
        apr_cells::rebuild_grid(&mut self.grid, &self.pool);

        // Shift the fine lattice origin and rebuild the coupling.
        self.map = CouplingMap::new(
            &self.coarse,
            &self.fine,
            new_origin,
            self.map.n,
            self.map.lambda,
            1.0,
        );
        if let Some(geometry) = &self.geometry {
            geometry(&mut self.fine, new_origin);
            self.rebuild_coupling();
        }
        // Fresh fine fluid from the coarse solution (paper §2.4.3).
        self.map.seed_fine_from_coarse(&self.coarse, &mut self.fine);
        self.moves += 1;
        apr_telemetry::emit(apr_telemetry::TelemetryEvent::WindowMove {
            step: self.steps,
            shift: [shift_c.x, shift_c.y, shift_c.z],
            captured: move_report.captured as u32,
            copied: move_report.copied as u32,
            removed: move_report.removed as u32,
        });
        Some(WindowFlux {
            captured: move_report.captured as u32,
            copied: move_report.copied as u32,
            removed: move_report.removed as u32,
            moved: true,
        })
    }

    fn rebuild_coupling(&mut self) {
        self.map = CouplingMap::new(
            &self.coarse,
            &self.fine,
            self.map.origin,
            self.map.n,
            self.map.lambda,
            1.0,
        );
    }

    /// Steps taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Window moves executed.
    pub fn window_moves(&self) -> u64 {
        self.moves
    }

    /// Cumulative site updates (coarse + n×fine) — the APR/eFSI cost proxy.
    pub fn site_updates(&self) -> u64 {
        self.site_updates
    }
}
