//! The explicitly resolved fluid–structure interaction (eFSI) engine —
//! the paper's baseline: one fine lattice everywhere, every cell explicit.

use crate::fsi;
use apr_cells::{CellKind, CellPool, ContactParams, UniformSubgrid};
use apr_ibm::DeltaKernel;
use apr_lattice::Lattice;
use apr_membrane::Membrane;
use apr_mesh::Vec3;
use std::sync::Arc;

/// Fully resolved FSI simulation: fine lattice + explicit cells.
///
/// All positions are in the lattice's own coordinates (node spacing 1).
///
/// ```
/// use apr_core::EfsiEngine;
/// use apr_cells::{CellKind, ContactParams};
/// use apr_lattice::couette_channel;
/// use apr_membrane::{Membrane, MembraneMaterial, ReferenceState};
/// use apr_mesh::{icosphere, Vec3};
/// use std::sync::Arc;
///
/// // Shear channel with one soft sphere.
/// let lattice = couette_channel(16, 12, 12, 1.0, 0.03);
/// let mut engine = EfsiEngine::new(lattice, 4, ContactParams { cutoff: 1.0, strength: 1e-4 });
/// let mesh = icosphere(1, 2.0);
/// let membrane = Arc::new(Membrane::new(
///     Arc::new(ReferenceState::build(&mesh)),
///     MembraneMaterial::rbc(1e-3, 1e-5),
/// ));
/// let verts: Vec<Vec3> = mesh.vertices.iter().map(|&v| v + Vec3::new(8.0, 6.0, 6.0)).collect();
/// engine.add_cell(CellKind::Rbc, membrane, verts);
/// for _ in 0..10 {
///     engine.step();
/// }
/// assert!(engine.pool.iter().next().unwrap().is_finite());
/// ```
pub struct EfsiEngine {
    /// The fluid lattice (walls/BCs pre-configured by the caller).
    pub lattice: Lattice,
    /// Live cells.
    pub pool: CellPool,
    /// Spatial hash for contact/overlap queries.
    pub grid: UniformSubgrid,
    /// Intercellular repulsion parameters.
    pub contact: ContactParams,
    /// IBM delta kernel.
    pub kernel: DeltaKernel,
    pub(crate) steps: u64,
    pub(crate) site_updates: u64,
    /// Per-kind membrane models captured by [`EfsiEngine::add_cell`] so
    /// checkpoints can be resumed through [`crate::SimSession::resume`]
    /// without the caller re-supplying them (indexed Rbc, Ctc).
    pub(crate) membranes: [Option<Arc<Membrane>>; 2],
}

impl EfsiEngine {
    /// New engine around a prepared lattice.
    pub fn new(lattice: Lattice, cell_capacity: usize, contact: ContactParams) -> Self {
        let grid = UniformSubgrid::new(contact.cutoff.max(1.0));
        Self {
            lattice,
            pool: CellPool::with_capacity(cell_capacity),
            grid,
            contact,
            kernel: DeltaKernel::Cosine4,
            steps: 0,
            site_updates: 0,
            membranes: [None, None],
        }
    }

    /// Add a cell with explicit shape vertices (lattice coordinates);
    /// returns its global ID. The membrane model is retained per kind so
    /// checkpoints can be resumed through [`crate::SimSession::resume`].
    pub fn add_cell(
        &mut self,
        kind: CellKind,
        membrane: Arc<Membrane>,
        vertices: Vec<Vec3>,
    ) -> u64 {
        self.membranes[match kind {
            CellKind::Rbc => 0,
            CellKind::Ctc => 1,
        }] = Some(Arc::clone(&membrane));
        let (_, id) = self.pool.insert_shape(kind, membrane, vertices);
        id
    }

    /// Advance one fully coupled FSI step.
    pub fn step(&mut self) {
        let _step_span = apr_telemetry::span("efsi.step");
        {
            let _s = apr_telemetry::span("fsi.membrane_forces");
            fsi::compute_membrane_forces(&mut self.pool);
        }
        {
            let _s = apr_telemetry::span("fsi.contact_forces");
            fsi::compute_contact_forces(&mut self.pool, &mut self.grid, self.contact);
        }
        {
            let _s = apr_telemetry::span("fsi.spread");
            self.lattice.clear_forces();
            fsi::spread_cell_forces(&mut self.lattice, &self.pool, self.kernel, |v| v, 1.0);
        }
        {
            let _s = apr_telemetry::span("efsi.lattice");
            self.lattice.step();
        }
        {
            let _s = apr_telemetry::span("fsi.interpolate");
            fsi::advect_cells(&self.lattice, &mut self.pool, self.kernel, |v| v, 1.0);
        }
        self.steps += 1;
        let step_sites = self.lattice.fluid_node_count() as u64;
        self.site_updates += step_sites;
        apr_telemetry::counter_add("efsi.site_updates", step_sites);
    }

    /// Steps taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Cumulative lattice site updates — the compute-cost proxy used when
    /// comparing APR and eFSI resource use (paper §3.3's node-hours).
    pub fn site_updates(&self) -> u64 {
        self.site_updates
    }

    /// Centroid of the first cell of `kind` (e.g. the CTC).
    pub fn centroid_of_first(&self, kind: CellKind) -> Option<Vec3> {
        self.pool
            .iter()
            .find(|c| c.kind == kind)
            .map(|c| c.centroid())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_lattice::couette_channel;
    use apr_membrane::{MembraneMaterial, ReferenceState};
    use apr_mesh::icosphere;

    fn sphere_membrane(radius: f64, gs: f64) -> (Arc<Membrane>, apr_mesh::TriMesh) {
        let mesh = icosphere(2, radius);
        let re = Arc::new(ReferenceState::build(&mesh));
        (
            Arc::new(Membrane::new(re, MembraneMaterial::rbc(gs, gs * 0.01))),
            mesh,
        )
    }

    #[test]
    fn cell_in_shear_flow_migrates_with_flow() {
        // A soft sphere in Couette flow must translate downstream with the
        // local fluid velocity without blowing up.
        let lat = couette_channel(24, 18, 16, 1.0, 0.04);
        let mut eng = EfsiEngine::new(
            lat,
            4,
            ContactParams {
                cutoff: 1.0,
                strength: 1e-4,
            },
        );
        let (mem, mesh) = sphere_membrane(3.0, 5e-4);
        let verts: Vec<Vec3> = mesh
            .vertices
            .iter()
            .map(|&v| v + Vec3::new(12.0, 12.0, 8.0))
            .collect();
        eng.add_cell(CellKind::Rbc, mem, verts);
        // Let the flow develop, then track the cell.
        for _ in 0..400 {
            eng.step();
        }
        let c0 = eng.centroid_of_first(CellKind::Rbc).unwrap();
        for _ in 0..300 {
            eng.step();
        }
        let c1 = eng.centroid_of_first(CellKind::Rbc).unwrap();
        let cell = eng.pool.iter().next().unwrap();
        assert!(cell.is_finite(), "cell blew up");
        // Moved downstream (+x), stayed near its y-plane.
        assert!(c1.x > c0.x + 0.5, "c0 {c0:?} -> c1 {c1:?}");
        assert!((c1.y - c0.y).abs() < 2.0);
        // Rough speed check: local Couette velocity at y≈12 over height 16:
        // u ≈ 0.04·(11.5/16) ≈ 0.029 per step.
        let speed = (c1.x - c0.x) / 300.0;
        assert!(
            (0.010..0.05).contains(&speed),
            "speed {speed} vs expected ≈0.029"
        );
    }

    #[test]
    fn volume_is_conserved_through_fsi() {
        let lat = couette_channel(20, 16, 16, 1.0, 0.03);
        let mut eng = EfsiEngine::new(
            lat,
            4,
            ContactParams {
                cutoff: 1.0,
                strength: 1e-4,
            },
        );
        let (mem, mesh) = sphere_membrane(3.0, 1e-3);
        let verts: Vec<Vec3> = mesh
            .vertices
            .iter()
            .map(|&v| v + Vec3::new(10.0, 8.0, 8.0))
            .collect();
        eng.add_cell(CellKind::Rbc, mem, verts);
        let v0 = eng.pool.iter().next().unwrap().volume();
        for _ in 0..500 {
            eng.step();
        }
        let v1 = eng.pool.iter().next().unwrap().volume();
        assert!((v1 - v0).abs() / v0 < 0.05, "volume drifted {v0} -> {v1}");
    }
}
