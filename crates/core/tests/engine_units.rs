//! Fast unit-level tests of the APR engine's bookkeeping (coordinates,
//! population, configuration) — the physics is covered by `apr_engine.rs`.

use apr_cells::{ContactParams, RbcTile};
use apr_core::{AprEngine, PhysicalConfig};
use apr_coupling::fine_tau;
use apr_lattice::Lattice;
use apr_membrane::{Membrane, MembraneMaterial, ReferenceState};
use apr_mesh::{biconcave_rbc_mesh, Vec3};
use apr_window::{HematocritController, InsertionContext};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn small_engine(n: usize) -> AprEngine {
    let coarse = Lattice::new(24, 24, 24, 0.9);
    let span = 8usize;
    let fine = Lattice::new(
        span * n + 1,
        span * n + 1,
        span * n + 1,
        fine_tau(0.9, n, 0.3),
    );
    AprEngine::builder(coarse, fine, [8.0, 8.0, 8.0], n, 0.3)
        .window(
            span as f64 * n as f64 * 0.22,
            span as f64 * n as f64 * 0.12,
            span as f64 * n as f64 * 0.14,
        )
        .contact(ContactParams {
            cutoff: 1.0,
            strength: 1e-4,
        })
        .build()
}

#[test]
fn world_fine_coordinates_round_trip() {
    let eng = small_engine(3);
    for p in [
        Vec3::new(9.0, 10.0, 11.0),
        Vec3::new(8.0, 8.0, 8.0),
        Vec3::new(12.3, 9.7, 15.1),
    ] {
        let f = eng.world_to_fine(p);
        let back = eng.fine_to_world(f);
        assert!((back - p).norm() < 1e-12, "{p:?} -> {f:?} -> {back:?}");
    }
    // Window origin maps to fine node 0.
    let f = eng.world_to_fine(Vec3::new(8.0, 8.0, 8.0));
    assert!(f.norm() < 1e-12);
}

#[test]
fn anatomy_is_centred_in_fine_domain() {
    let eng = small_engine(3);
    let center = eng.anatomy.center;
    assert!((center.x - (eng.fine.nx - 1) as f64 / 2.0).abs() < 1e-12);
    // Window fits inside the fine domain.
    let (lo, hi) = eng.anatomy.bounds();
    assert!(lo.x >= -1e-9 && hi.x <= (eng.fine.nx - 1) as f64 + 1e-9);
}

#[test]
fn populate_window_respects_target() {
    let mut eng = small_engine(2);
    let rbc_mesh = biconcave_rbc_mesh(1, 2.2);
    let volume = rbc_mesh.enclosed_volume();
    let re = Arc::new(ReferenceState::build(&rbc_mesh));
    let membrane = Arc::new(Membrane::new(re, MembraneMaterial::rbc(1e-3, 1e-5)));
    let mut rng = StdRng::seed_from_u64(1);
    let tile = RbcTile::build(30.0, 0.15, 2.2, 1.3, volume, &mut rng);
    eng.insertion = Some(InsertionContext {
        rbc_mesh,
        rbc_membrane: membrane,
        tile,
        min_gap: 0.5,
    });
    eng.controller = Some(HematocritController::new(0.15, 0.85, volume));
    let inserted = eng.populate_window();
    assert!(inserted > 3, "only {inserted} packed");
    let ht = eng.window_hematocrit().unwrap();
    assert!(ht > 0.02 && ht < 0.25, "Ht = {ht}");
    // Every cell inside the window bounds.
    for cell in eng.pool.iter() {
        assert!(eng.anatomy.contains(cell.centroid()));
    }
}

#[test]
fn physical_config_drives_engine_parameters() {
    // Build an engine from paper-style physical inputs and confirm the τs
    // land where PhysicalConfig predicts.
    let cfg = PhysicalConfig::paper_defaults(2.5e-6, 2, 1.0);
    let coarse = Lattice::new(24, 24, 24, cfg.tau_coarse);
    let fine = Lattice::new(17, 17, 17, cfg.tau_fine());
    let eng = AprEngine::builder(coarse, fine, [8.0, 8.0, 8.0], cfg.refinement, cfg.lambda())
        .window(4.0, 2.0, 2.0)
        .contact(ContactParams {
            cutoff: 1.0,
            strength: 1e-4,
        })
        .build();
    assert!((eng.fine.tau - cfg.tau_fine()).abs() < 1e-12);
    assert!((eng.map.lambda - 0.3).abs() < 1e-12);
}

#[test]
fn step_without_cells_is_stable() {
    // Fluid-only coupled stepping must hold the resting state.
    let mut eng = small_engine(2);
    for _ in 0..20 {
        eng.step();
    }
    let (rho, u) = eng.fine.moments_at(eng.fine.idx(8, 8, 8));
    assert!((rho - 1.0).abs() < 1e-9);
    assert!(u.iter().all(|c| c.abs() < 1e-9));
    assert_eq!(eng.window_moves(), 0);
}
