//! End-to-end tests of the APR engine: hematocrit maintenance in a tube
//! (mini Figure 5) and CTC tracking with window moves (mini Figures 6/9).

use apr_cells::ContactParams;
use apr_core::{AprEngine, HematocritSeries};
use apr_coupling::fine_tau;
use apr_lattice::{force_driven_tube, Lattice};
use apr_membrane::{Membrane, MembraneMaterial, ReferenceState};
use apr_mesh::{biconcave_rbc_mesh, icosphere, Vec3};
use apr_window::{HematocritController, InsertionContext};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Build a small APR tube problem: coarse force-driven tube along z with a
/// cubic window in the middle, refinement `n`, viscosity ratio λ = 0.3.
fn tube_engine(n: usize, nz_coarse: usize, g: f64) -> AprEngine {
    let (nx, ny) = (21usize, 21usize);
    let radius = 9.0;
    let tau_c = 0.9;
    let lambda = 0.3;
    let coarse = force_driven_tube(nx, ny, nz_coarse, tau_c, radius, g);

    // Window: 8 coarse cells across, centred in x/y, near the inlet in z.
    let span = 8usize;
    let fine_dim = span * n + 1;
    let mut fine = Lattice::new(fine_dim, fine_dim, fine_dim, fine_tau(tau_c, n, lambda));
    // Body force must act on the window fluid too (same pressure gradient);
    // convective scaling: g_fine = g_coarse / n (acceleration × Δt²/Δx).
    fine.body_force = [0.0, 0.0, g / n as f64];
    let origin = [
        (nx as f64 - 1.0) / 2.0 - span as f64 / 2.0,
        (ny as f64 - 1.0) / 2.0 - span as f64 / 2.0,
        4.0,
    ];

    let proper_half = span as f64 * n as f64 * 0.22;
    let onramp = span as f64 * n as f64 * 0.12;
    let insertion = span as f64 * n as f64 * 0.14;
    AprEngine::builder(coarse, fine, origin, n, lambda)
        .window(proper_half, onramp, insertion)
        .contact(ContactParams {
            cutoff: 1.2,
            strength: 5e-4,
        })
        .build()
}

/// RBC machinery sized for the fine lattice (radius in fine lattice units).
fn rbc_insertion(radius: f64, gs: f64) -> (InsertionContext, HematocritController) {
    let rbc_mesh = biconcave_rbc_mesh(1, radius);
    let re = Arc::new(ReferenceState::build(&rbc_mesh));
    let membrane = Arc::new(Membrane::new(re, MembraneMaterial::rbc(gs, gs * 0.05)));
    let mut rng = StdRng::seed_from_u64(99);
    let volume = rbc_mesh.enclosed_volume();
    let thickness = radius * 0.6;
    let tile = RbcTileBuilder {
        radius,
        thickness,
        volume,
    }
    .build(&mut rng);
    let controller = HematocritController::new(0.12, 0.85, volume);
    (
        InsertionContext {
            rbc_mesh,
            rbc_membrane: membrane,
            tile,
            min_gap: 0.8,
        },
        controller,
    )
}

struct RbcTileBuilder {
    radius: f64,
    thickness: f64,
    volume: f64,
}

impl RbcTileBuilder {
    fn build(&self, rng: &mut StdRng) -> apr_cells::RbcTile {
        apr_cells::RbcTile::build(
            40.0_f64.max(self.radius * 10.0),
            0.15,
            self.radius,
            self.thickness,
            self.volume,
            rng,
        )
    }
}

#[test]
fn window_hematocrit_is_maintained_in_tube_flow() {
    let mut eng = tube_engine(3, 48, 4e-6);
    let (ctx, controller) = rbc_insertion(3.0, 2e-4);
    let target = controller.target;
    eng.insertion = Some(ctx);
    eng.controller = Some(controller);
    eng.maintenance_interval = 10;
    let initial = eng.populate_window();
    assert!(initial > 5, "initial packing placed only {initial} cells");

    let mut series = HematocritSeries::default();
    for step in 0..600u64 {
        eng.step();
        if step % 10 == 0 {
            series.record(step, eng.window_hematocrit().unwrap());
        }
    }
    // Cells must still be alive and sane.
    assert!(eng.pool.live_count() > 5);
    for cell in eng.pool.iter() {
        assert!(cell.is_finite(), "a cell blew up");
    }
    // Hematocrit near target with bounded fluctuation (Figure 5B behaviour).
    let steady = series.steady_mean(0.4).expect("series has samples");
    assert!(
        (steady - target).abs() < 0.6 * target,
        "steady Ht {steady} vs target {target}"
    );
    // Cells flow downstream: insertion/removal churn must have happened.
    assert!(
        eng.pool.total_inserted() > initial as u64,
        "no repopulation occurred"
    );
}

#[test]
fn ctc_is_tracked_and_window_moves_with_it() {
    let mut eng = tube_engine(3, 96, 6e-6);
    // Stiff CTC at the window centre.
    let ctc_mesh = icosphere(2, 3.5);
    let re = Arc::new(ReferenceState::build(&ctc_mesh));
    let mem = Arc::new(Membrane::new(re, MembraneMaterial::ctc(2e-3, 1e-4)));
    let center = eng.anatomy.center;
    let verts: Vec<Vec3> = ctc_mesh.vertices.iter().map(|&v| v + center).collect();
    eng.add_ctc(mem, verts);

    let start_world = eng.fine_to_world(eng.ctc_position().unwrap());
    let mut moves = 0;
    for _ in 0..2500 {
        let report = eng.step();
        if report.moved {
            moves += 1;
        }
        if eng.window_moves() >= 3 {
            break;
        }
    }
    assert!(moves >= 1, "window never moved");
    let end_world = eng.tracker.current().unwrap();
    // The CTC advanced down the tube (+z) by multiple coarse cells.
    assert!(
        end_world.z > start_world.z + 2.0,
        "CTC did not travel: {start_world:?} -> {end_world:?}"
    );
    // The trajectory is monotone in z (Poiseuille flow, no back-flow).
    let zs: Vec<f64> = eng.tracker.samples.iter().map(|&(_, p)| p.z).collect();
    for w in zs.windows(2) {
        assert!(w[1] >= w[0] - 0.05, "trajectory reversed");
    }
    // The CTC stayed inside the window proper after all the moves.
    let ctc = eng.ctc_position().unwrap();
    assert!(
        eng.anatomy.cube_distance(ctc) <= eng.anatomy.interior_half(),
        "CTC outside window interior"
    );
    // The cell survived the moves intact.
    let cell = eng
        .pool
        .iter()
        .find(|c| c.kind == apr_cells::CellKind::Ctc)
        .unwrap();
    assert!(cell.is_finite());
}

#[test]
fn apr_site_updates_are_far_below_equivalent_efsi() {
    // The cost proxy behind the paper's 10× node-hour saving (§3.3): the
    // APR window + coarse bulk touches far fewer sites than a fully fine
    // lattice over the same domain.
    let eng = tube_engine(3, 96, 6e-6);
    let apr_sites_per_step = eng.coarse.fluid_node_count() + eng.fine.fluid_node_count() * 3;
    // Equivalent eFSI: the whole coarse domain at fine resolution, stepped
    // at the fine rate (n substeps per coarse step).
    let efsi_sites_per_step = eng.coarse.fluid_node_count() * 27 * 3;
    let saving = efsi_sites_per_step as f64 / apr_sites_per_step as f64;
    assert!(saving > 10.0, "APR saving only {saving}×");
}
