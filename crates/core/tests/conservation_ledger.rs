//! Conservation-ledger integration: a clean APR campaign stays inside
//! the default drift tolerances (the coarse↔fine coupling exchanges a
//! little mass by design, but boundedly), and — under `fault-injection` —
//! a mass leak that keeps every node numerically healthy still trips the
//! guardian through the ledger's `ConservationDrift` issue and is healed
//! by rollback.

use apr_core::{AprEngine, LedgerConfig};
use apr_coupling::fine_tau;
use apr_lattice::{force_driven_tube, Lattice};

/// Small APR tube (same recipe as the guardian tests, refinement 2, no
/// cells): coarse force-driven tube along z with a cubic fine window.
fn tube_engine(config: LedgerConfig) -> AprEngine {
    let (nx, ny, nz) = (21usize, 21usize, 48usize);
    let (tau_c, lambda, g, n) = (0.9, 0.3, 4e-6, 2usize);
    let coarse = force_driven_tube(nx, ny, nz, tau_c, 9.0, g);
    let span = 8usize;
    let fine_dim = span * n + 1;
    let mut fine = Lattice::new(fine_dim, fine_dim, fine_dim, fine_tau(tau_c, n, lambda));
    fine.body_force = [0.0, 0.0, g / n as f64];
    let origin = [
        (nx as f64 - 1.0) / 2.0 - span as f64 / 2.0,
        (ny as f64 - 1.0) / 2.0 - span as f64 / 2.0,
        4.0,
    ];
    AprEngine::builder(coarse, fine, origin, n, lambda)
        .ledger(config)
        .build()
}

#[test]
fn clean_apr_campaign_stays_inside_default_tolerances() {
    let mut eng = tube_engine(LedgerConfig::default());
    for _ in 0..60 {
        eng.step();
    }
    let ledger = eng.ledger.as_ref().expect("ledger armed via builder");
    assert_eq!(ledger.samples(), 60, "one ledger sample per step");
    assert!(
        ledger.breaches().is_empty(),
        "clean run latched breaches: {:?}",
        ledger.breaches()
    );
    let last = ledger.last().expect("sample recorded");
    assert_eq!(last.step, 60);
    assert!(last.bulk.mass > 0.0 && last.window.mass > 0.0);
    assert!(
        last.bulk.fluid_nodes > 0 && last.window.fluid_nodes > 0,
        "totals must count fluid nodes"
    );
    // No window move happened (no tracked cell), so no flux accrued and
    // window continuity was never restarted.
    assert_eq!(ledger.cumulative_flux(), (0, 0, 0));
}

#[test]
fn disarmed_engine_records_nothing() {
    let (nx, ny, nz) = (21usize, 21usize, 48usize);
    let coarse = force_driven_tube(nx, ny, nz, 0.9, 9.0, 4e-6);
    let fine = Lattice::new(17, 17, 17, fine_tau(0.9, 2, 0.3));
    let mut eng = AprEngine::builder(coarse, fine, [6.0, 6.0, 4.0], 2, 0.3).build();
    for _ in 0..5 {
        eng.step();
    }
    assert!(eng.ledger.is_none(), "ledger is strictly opt-in");
}

#[cfg(feature = "fault-injection")]
mod fault_injection {
    use super::*;
    use apr_core::Guardian;
    use apr_guard::{FaultKind, HealthIssue, RecoveryAction, RetryPolicy, SentinelConfig};

    /// A mass leak leaves every node finite, in density range, and slow —
    /// invisible to the numeric sentinel — yet the ledger must latch the
    /// drift and the guardian must roll it back within one check interval.
    /// The tolerance is self-calibrated: a clean probe run measures the
    /// legitimate coupling drift, the tolerance is set well above it, and
    /// the injected leak is sized well above the tolerance.
    #[test]
    fn mass_leak_trips_the_guardian_within_one_check_interval() {
        // Phase 1: calibrate the clean drift with a disarmed ledger.
        let disarmed = LedgerConfig {
            bulk_mass_tol: f64::INFINITY,
            window_mass_tol: f64::INFINITY,
            momentum_tol: None,
            ht_drift_tol: f64::INFINITY,
        };
        let mut probe = tube_engine(disarmed);
        let mut clean_drift = 0.0f64;
        for step in 0..40 {
            probe.step();
            let s = probe.ledger.as_ref().unwrap().last().unwrap();
            if step > 0 {
                clean_drift = clean_drift.max(s.window_mass_drift);
            }
        }
        let last = probe.ledger.as_ref().unwrap().last().unwrap();
        let tol = (clean_drift * 8.0).max(1e-11);
        let fluid_nodes = last.window.fluid_nodes as f64;

        // Phase 2: size the leak to 8× the tolerance, spread over interior
        // nodes at 30% each so every node stays in the sentinel's healthy
        // density range (min_rho = 0.2).
        let per_node_fraction = 0.3;
        let needed_rel_drop = tol * 8.0;
        let nodes_needed =
            ((needed_rel_drop * fluid_nodes / per_node_fraction).ceil() as usize).max(1);

        let config = LedgerConfig {
            window_mass_tol: tol,
            ..LedgerConfig::default()
        };
        let mut eng = tube_engine(config);
        let check_interval = 5u64;
        let mut guardian = Guardian::new(
            SentinelConfig::default(),
            RetryPolicy::default(),
            check_interval,
        );
        // Interior nodes only: shell nodes are re-imposed from the coarse
        // solution every substep, which would erase the leak.
        let fault_step = 13u64;
        let mut scheduled = 0usize;
        'outer: for z in 4..13usize {
            for y in 4..13usize {
                for x in 4..13usize {
                    if scheduled == nodes_needed {
                        break 'outer;
                    }
                    guardian.faults.schedule(
                        fault_step,
                        FaultKind::MassLeak {
                            node: eng.fine.idx(x, y, z),
                            fraction: per_node_fraction,
                        },
                    );
                    scheduled += 1;
                }
            }
        }
        assert_eq!(
            scheduled, nodes_needed,
            "interior region too small for the calibrated leak \
             ({nodes_needed} nodes at {per_node_fraction} each, tol {tol:e})"
        );

        // Phase 3: the trip must land at the first inspection after the
        // leak — within one check interval.
        let mut tripped_at = None;
        while eng.steps() < 40 {
            let outcome = guardian.step(&mut eng).expect("recovery must succeed");
            if outcome.rolled_back && tripped_at.is_none() {
                tripped_at = Some(guardian.log.events[0].step);
            }
        }
        let tripped_at = tripped_at.unwrap_or_else(|| {
            panic!(
                "leak of {nodes_needed} nodes (rel drop {needed_rel_drop:e}, tol {tol:e}) \
                 never tripped the sentinel:\n{}",
                guardian.log.summary()
            )
        });
        assert!(
            tripped_at >= fault_step && tripped_at < fault_step + check_interval,
            "trip at step {tripped_at}, fault at {fault_step}, interval {check_interval}"
        );
        assert_eq!(guardian.faults.fired_count(), scheduled, "leak never fired");

        // The incident report must name the conservation drift — not a
        // numeric issue (the leak keeps every node healthy by design).
        let incident = &guardian.log.events[0];
        assert!(matches!(incident.action, RecoveryAction::RolledBack { .. }));
        let drift = incident
            .report
            .issues
            .iter()
            .find_map(|i| match i {
                HealthIssue::ConservationDrift {
                    quantity,
                    observed,
                    tolerance,
                    ..
                } => Some((*quantity, *observed, *tolerance)),
                _ => None,
            })
            .expect("incident carries no ConservationDrift issue");
        assert_eq!(drift.0, "window_mass");
        assert!(
            drift.1 > drift.2,
            "observed {} <= tolerance {}",
            drift.1,
            drift.2
        );
        assert!(
            !incident.report.issues.iter().any(|i| {
                matches!(
                    i,
                    HealthIssue::NonFiniteDensity { .. } | HealthIssue::DensityOutOfRange { .. }
                )
            }),
            "leak was supposed to stay numerically healthy: {:?}",
            incident.report.issues
        );

        // Rollback healed it: the fault is one-shot, the ledger continuity
        // was reset by the restore, and the rest of the campaign is clean.
        assert_eq!(
            guardian.log.rollback_count(),
            1,
            "{}",
            guardian.log.summary()
        );
        assert!(
            eng.ledger.as_ref().unwrap().breaches().is_empty(),
            "breaches survived the rollback"
        );
    }
}
