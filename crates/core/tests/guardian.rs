//! Robustness-layer integration tests: full-engine checkpoints are
//! resume-identical (byte-for-byte, including across a window move),
//! corruption is rejected with a typed error, and — under the
//! `fault-injection` feature — an injected NaN trips the sentinel, rolls
//! the campaign back, and the run still completes near the clean result.

use apr_cells::ContactParams;
use apr_core::{restore_engine, save_engine, AprEngine};
use apr_coupling::fine_tau;
use apr_guard::GuardError;
use apr_lattice::{force_driven_tube, Lattice};
use apr_membrane::{Membrane, MembraneMaterial, ReferenceState};
use apr_mesh::{biconcave_rbc_mesh, icosphere, Vec3};
use apr_window::{HematocritController, InsertionContext};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Small APR tube problem (same recipe as the engine tests): coarse
/// force-driven tube along z, cubic window, refinement `n`, λ = 0.3.
fn tube_engine(n: usize, nz_coarse: usize, g: f64) -> AprEngine {
    let (nx, ny) = (21usize, 21usize);
    let tau_c = 0.9;
    let lambda = 0.3;
    let coarse = force_driven_tube(nx, ny, nz_coarse, tau_c, 9.0, g);
    let span = 8usize;
    let fine_dim = span * n + 1;
    let mut fine = Lattice::new(fine_dim, fine_dim, fine_dim, fine_tau(tau_c, n, lambda));
    fine.body_force = [0.0, 0.0, g / n as f64];
    let origin = [
        (nx as f64 - 1.0) / 2.0 - span as f64 / 2.0,
        (ny as f64 - 1.0) / 2.0 - span as f64 / 2.0,
        4.0,
    ];
    let side = span as f64 * n as f64;
    AprEngine::builder(coarse, fine, origin, n, lambda)
        .window(side * 0.22, side * 0.12, side * 0.14)
        .contact(ContactParams {
            cutoff: 1.2,
            strength: 5e-4,
        })
        .build()
}

fn rbc_insertion(radius: f64, gs: f64) -> (InsertionContext, HematocritController) {
    let rbc_mesh = biconcave_rbc_mesh(1, radius);
    let re = Arc::new(ReferenceState::build(&rbc_mesh));
    let membrane = Arc::new(Membrane::new(re, MembraneMaterial::rbc(gs, gs * 0.05)));
    let mut rng = StdRng::seed_from_u64(99);
    let volume = rbc_mesh.enclosed_volume();
    let tile = apr_cells::RbcTile::build(
        40.0_f64.max(radius * 10.0),
        0.15,
        radius,
        radius * 0.6,
        volume,
        &mut rng,
    );
    let controller = HematocritController::new(0.12, 0.85, volume);
    (
        InsertionContext {
            rbc_mesh,
            rbc_membrane: membrane,
            tile,
            min_gap: 0.8,
        },
        controller,
    )
}

/// Engine with live hematocrit maintenance (RNG-driven insertion churn).
fn hematocrit_engine() -> AprEngine {
    let mut eng = tube_engine(3, 48, 4e-6);
    let (ctx, controller) = rbc_insertion(3.0, 2e-4);
    eng.insertion = Some(ctx);
    eng.controller = Some(controller);
    eng.maintenance_interval = 10;
    let placed = eng.populate_window();
    assert!(placed > 5, "initial packing placed only {placed} cells");
    eng
}

fn ctc_membrane() -> (Arc<Membrane>, apr_mesh::TriMesh) {
    let mesh = icosphere(2, 3.5);
    let re = Arc::new(ReferenceState::build(&mesh));
    (
        Arc::new(Membrane::new(re, MembraneMaterial::ctc(2e-3, 1e-4))),
        mesh,
    )
}

#[test]
fn checkpoint_resume_is_bit_identical() {
    // Run past several maintenance sweeps so the RNG stream, free-list and
    // diagnostics all carry real state, then checkpoint.
    let mut live = hematocrit_engine();
    for _ in 0..60 {
        live.step();
    }
    let blob = save_engine(&live);

    // Restore onto a freshly built engine (same recipe, never stepped).
    let mut resumed = hematocrit_engine();
    restore_engine(&mut resumed, &blob, None).unwrap();
    assert_eq!(resumed.steps(), live.steps());
    assert_eq!(
        save_engine(&resumed),
        blob,
        "restored engine must re-serialize to the identical checkpoint"
    );

    // Stepping both engines K more steps (crossing maintenance sweeps that
    // consume the insertion RNG) must stay byte-for-byte identical.
    for _ in 0..30 {
        live.step();
        resumed.step();
    }
    assert_eq!(
        save_engine(&live),
        save_engine(&resumed),
        "resumed trajectory diverged from the uninterrupted run"
    );
}

#[test]
fn checkpoint_resume_is_bit_identical_across_a_window_move() {
    let (mem, mesh) = ctc_membrane();
    let build = || {
        let mut eng = tube_engine(3, 96, 6e-6);
        let center = eng.anatomy.center;
        let verts: Vec<Vec3> = mesh.vertices.iter().map(|&v| v + center).collect();
        eng.add_ctc(Arc::clone(&mem), verts);
        eng
    };

    // Advance until the window has moved at least once, then a bit more.
    let mut live = build();
    let mut steps = 0;
    while live.window_moves() == 0 {
        live.step();
        steps += 1;
        assert!(steps < 3000, "window never moved");
    }
    for _ in 0..20 {
        live.step();
    }
    let blob = save_engine(&live);

    // The fresh engine still has the *initial* window origin; restore must
    // bring back the moved origin, coupling and translated CTC exactly.
    let mut resumed = build();
    restore_engine(&mut resumed, &blob, Some(&mem)).unwrap();
    assert_eq!(
        resumed.map.origin, live.map.origin,
        "window origin not restored"
    );
    assert_eq!(resumed.window_moves(), live.window_moves());

    for _ in 0..25 {
        live.step();
        resumed.step();
    }
    assert_eq!(
        save_engine(&live),
        save_engine(&resumed),
        "post-move resumed trajectory diverged"
    );
}

#[test]
fn corrupted_checkpoint_is_rejected_with_typed_error() {
    let mut eng = hematocrit_engine();
    for _ in 0..20 {
        eng.step();
    }
    let good = save_engine(&eng);

    // Flip a bit deep inside a payload: must surface as a CRC error naming
    // the damaged section, never a panic or silent bad state.
    let mut bad = good.clone();
    let idx = bad.len() / 2;
    bad[idx] ^= 0x10;
    let mut target = hematocrit_engine();
    match restore_engine(&mut target, &bad, None) {
        Err(GuardError::Crc {
            section,
            expected,
            actual,
        }) => {
            assert!(!section.is_empty());
            assert_ne!(expected, actual);
        }
        other => panic!("expected Crc error, got {other:?}"),
    }

    // Truncation is a format error, also typed.
    let cut = &good[..good.len() - 9];
    assert!(matches!(
        restore_engine(&mut target, cut, None),
        Err(GuardError::Format(_))
    ));

    // The engine is still usable after the rejected restores.
    restore_engine(&mut target, &good, None).unwrap();
    target.step();
}

#[test]
fn missing_ctc_membrane_is_reported_not_panicked() {
    let (mem, mesh) = ctc_membrane();
    let mut eng = tube_engine(3, 48, 4e-6);
    let center = eng.anatomy.center;
    let verts: Vec<Vec3> = mesh.vertices.iter().map(|&v| v + center).collect();
    eng.add_ctc(mem, verts);
    let blob = save_engine(&eng);

    let mut target = tube_engine(3, 48, 4e-6);
    assert!(matches!(
        restore_engine(&mut target, &blob, None),
        Err(GuardError::MissingContext(_))
    ));
}

#[cfg(feature = "fault-injection")]
mod fault_injection {
    use super::*;
    use apr_core::Guardian;
    use apr_guard::{FaultKind, RetryPolicy, SentinelConfig};

    /// End-to-end recovery: a NaN injected into a membrane mid-campaign
    /// trips the sentinel, the guardian rolls back to the last good
    /// checkpoint and the campaign completes with a hematocrit matching
    /// the clean run's. The telemetry event stream must tell the same
    /// story: checkpoint → sentinel trip → rollback, in that order.
    #[test]
    fn injected_nan_is_rolled_back_and_campaign_completes() {
        let total_steps = 200u64;
        apr_telemetry::enable();

        // Clean reference run.
        let mut clean = hematocrit_engine();
        for _ in 0..total_steps {
            clean.step();
        }
        let clean_ht = clean.window_hematocrit().unwrap();

        // Guarded run with a vertex NaN scheduled mid-campaign. The
        // guardian dumps the telemetry flight recorder on the trip.
        let flightrec =
            std::env::temp_dir().join(format!("apr_flightrec_e2e_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&flightrec);
        let mut eng = hematocrit_engine();
        let mut guardian = Guardian::new(SentinelConfig::default(), RetryPolicy::default(), 5);
        guardian.set_flightrec_path(&flightrec);
        guardian.faults.schedule(
            73,
            FaultKind::MembraneNan {
                cell_index: 2,
                vertex: 4,
            },
        );

        let mut stepped = 0u64;
        while stepped < total_steps {
            let outcome = guardian.step(&mut eng).expect("recovery must succeed");
            if !outcome.rolled_back {
                stepped = eng.steps();
            }
        }

        assert_eq!(guardian.faults.fired_count(), 1, "fault never fired");
        assert!(
            guardian.log.rollback_count() >= 1,
            "sentinel never tripped on the injected NaN:\n{}",
            guardian.log.summary()
        );
        for cell in eng.pool.iter() {
            assert!(cell.is_finite(), "NaN survived recovery");
        }
        let ht = eng.window_hematocrit().unwrap();
        assert!(
            (ht - clean_ht).abs() < 0.05,
            "recovered hematocrit {ht} far from clean run {clean_ht} \
             (log:\n{})",
            guardian.log.summary()
        );

        // Typed event stream. The global recorder is shared with other
        // tests in this binary, so select this incident by the step its
        // rollback was logged at (guardian tests use disjoint step ranges).
        use apr_telemetry::TelemetryEvent;
        let incident = guardian
            .log
            .events
            .first()
            .expect("recovery log lost the incident");
        let trip_step = incident.step;
        let events = apr_telemetry::global().events();
        let trip = events
            .iter()
            .find(|e| {
                matches!(e.event, TelemetryEvent::SentinelTrip { step, issues, .. }
                    if step == trip_step && issues > 0)
            })
            .expect("no sentinel-trip event for the injected NaN");
        let rollback = events
            .iter()
            .find(|e| matches!(e.event, TelemetryEvent::Rollback { step, .. } if step == trip_step))
            .expect("no rollback event paired with the sentinel trip");
        assert!(
            rollback.t_ns >= trip.t_ns,
            "rollback recorded before its sentinel trip"
        );
        if let TelemetryEvent::Rollback {
            restored_step,
            step,
            ..
        } = rollback.event
        {
            assert!(
                restored_step < step,
                "rollback must restore an earlier step ({restored_step} vs {step})"
            );
        }
        // A healthy checkpoint must have been saved before the trip — the
        // state the rollback restored.
        assert!(
            events.iter().any(|e| matches!(
                e.event,
                TelemetryEvent::CheckpointSaved { step, .. } if step < trip_step
            ) && e.t_ns <= trip.t_ns),
            "no checkpoint event precedes the sentinel trip"
        );

        // The flight record dumped at the trip must be valid JSON with the
        // v1 schema, hold span and event entries from the window preceding
        // the incident, and include the sentinel trip itself as its
        // freshest event.
        let text =
            std::fs::read_to_string(&flightrec).expect("guardian did not write the flight record");
        let doc = apr_telemetry::json::parse(&text).expect("flight record is not valid JSON");
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some(apr_telemetry::FLIGHTREC_SCHEMA)
        );
        let entries = doc.get("entries").and_then(|e| e.as_arr()).unwrap();
        assert!(!entries.is_empty(), "flight record has no entries");
        let spans = entries
            .iter()
            .filter(|e| e.get("type").and_then(|t| t.as_str()) == Some("span"))
            .count();
        assert!(spans > 0, "flight record holds no spans");
        assert!(
            entries.iter().any(|e| {
                e.get("type").and_then(|t| t.as_str()) == Some("event")
                    && e.get("kind").and_then(|k| k.as_str()) == Some("sentinel_trip")
                    && e.get("args")
                        .and_then(|a| a.get("step"))
                        .and_then(|s| s.as_f64())
                        == Some(trip_step as f64)
            }),
            "flight record is missing the sentinel-trip event"
        );
        let total = doc.get("total").and_then(|t| t.as_f64()).unwrap();
        assert!(
            total >= entries.len() as f64,
            "total must count every entry ever pushed"
        );
        let _ = std::fs::remove_file(&flightrec);
    }

    /// A corrupted lattice distribution also trips the sentinel and is
    /// healed by rollback (the replay is clean — one-shot faults model
    /// transient corruption).
    #[test]
    fn corrupted_distribution_is_rolled_back() {
        let mut eng = hematocrit_engine();
        // Must be an interior node: shell nodes are overwritten from the
        // coarse solution every substep, which would erase the fault.
        let node = eng.fine.idx(12, 12, 12);
        let mut guardian = Guardian::new(SentinelConfig::default(), RetryPolicy::default(), 5);
        guardian.faults.schedule(
            12,
            FaultKind::DistributionCorrupt {
                node,
                magnitude: 1e6,
            },
        );
        let mut stepped = 0u64;
        while stepped < 40 {
            let outcome = guardian.step(&mut eng).expect("recovery must succeed");
            if !outcome.rolled_back {
                stepped = eng.steps();
            }
        }
        assert_eq!(
            guardian.log.rollback_count(),
            1,
            "{}",
            guardian.log.summary()
        );
        // After recovery the lattice is sane again.
        let report = guardian.inspect(&eng);
        assert!(report.is_healthy(), "{report:?}");
    }
}

#[test]
fn retry_budget_is_enforced() {
    use apr_core::Guardian;
    use apr_guard::{RetryPolicy, SentinelConfig};

    // A sentinel that can never pass (min density above physical rho ≈ 1)
    // trips at every check; the guardian must roll back `max_retries`
    // times and then give up with a typed fatal error.
    let mut eng = hematocrit_engine();
    let sentinel = SentinelConfig {
        min_rho: 2.0,
        ..SentinelConfig::default()
    };
    let policy = RetryPolicy {
        max_retries: 2,
        tau_tighten: Some(1.25),
        ..RetryPolicy::default()
    };
    let mut guardian = Guardian::new(sentinel, policy, 5);

    let mut fatal = None;
    for _ in 0..20 {
        match guardian.step(&mut eng) {
            Ok(_) => {}
            Err(e) => {
                fatal = Some(e);
                break;
            }
        }
    }
    match fatal {
        Some(GuardError::RetriesExhausted { attempts, .. }) => assert_eq!(attempts, 3),
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    assert_eq!(guardian.log.rollback_count(), 2);
    assert!(guardian.log.summary().contains("gave up"));
    // τ tightening compounds across the rollbacks (Eq. 7 damping).
    let base = fine_tau(0.9, 3, 0.3);
    assert!(
        eng.fine.tau > base,
        "tau was not tightened: {} vs {base}",
        eng.fine.tau
    );
}
