//! Per-task execution timeline simulation.
//!
//! The paper's §3.4 analysis rests on a timing breakdown ("A breakdown of
//! CPU, GPU timings along with the communication between them showed that…
//! most of the total time was spent on the GPUs"). This module replays one
//! coupled step over a [`Schedule`] with per-task work assignments and
//! produces that breakdown: per-device busy time, per-node critical path,
//! and overall utilization.

use crate::device::Device;
use crate::schedule::Schedule;

/// Work rates used to convert owned volumes into task durations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkRates {
    /// Seconds per bulk lattice node per coarse step (CPU task).
    pub cpu_per_node: f64,
    /// Seconds per window lattice node per coarse step, all substeps
    /// included (GPU task).
    pub gpu_per_node: f64,
    /// Seconds per halo site exchanged.
    pub comm_per_site: f64,
}

/// Timing breakdown of one simulated step.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// Per-task busy time, indexed by global task id.
    pub task_busy: Vec<f64>,
    /// Per-task device.
    pub task_device: Vec<Device>,
    /// Wall time = slowest task (bulk and window overlap; halo sync joins
    /// them at the end of the step).
    pub wall_time: f64,
    /// Total CPU busy seconds.
    pub cpu_busy: f64,
    /// Total GPU busy seconds.
    pub gpu_busy: f64,
    /// Total communication seconds.
    pub comm_busy: f64,
}

impl Timeline {
    /// Mean utilization: busy time over (tasks × wall time).
    pub fn utilization(&self) -> f64 {
        let busy: f64 = self.task_busy.iter().sum();
        busy / (self.task_busy.len() as f64 * self.wall_time)
    }

    /// Fraction of total busy time spent on GPUs (the paper's headline
    /// observation is that this dominates).
    pub fn gpu_fraction(&self) -> f64 {
        self.gpu_busy / (self.gpu_busy + self.cpu_busy).max(1e-300)
    }
}

/// Simulate one coupled step over `schedule` with the given rates.
pub fn simulate_step(schedule: &Schedule, rates: WorkRates) -> Timeline {
    let total_tasks = schedule.task_count();
    let mut task_busy = vec![0.0; total_tasks];
    let mut task_device = vec![Device::Cpu; total_tasks];
    let mut cpu_busy = 0.0;
    let mut gpu_busy = 0.0;
    let mut comm_busy = 0.0;

    for t in &schedule.bulk_tasks {
        let compute = t.block.volume() as f64 * rates.cpu_per_node;
        let comm = t.block.surface_area() as f64 * rates.comm_per_site;
        task_busy[t.id] = compute + comm;
        task_device[t.id] = Device::Cpu;
        cpu_busy += compute;
        comm_busy += comm;
    }
    for t in &schedule.window_tasks {
        let compute = t.block.volume() as f64 * rates.gpu_per_node;
        let comm = t.block.surface_area() as f64 * rates.comm_per_site;
        task_busy[t.id] = compute + comm;
        task_device[t.id] = Device::Gpu;
        gpu_busy += compute;
        comm_busy += comm;
    }
    let wall_time = task_busy.iter().copied().fold(0.0f64, f64::max);
    Timeline {
        task_busy,
        task_device,
        wall_time,
        cpu_busy,
        gpu_busy,
        comm_busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::NodeConfig;

    fn summit_timeline() -> Timeline {
        // One node, 48³ bulk + 36³ window (window denser in work per node
        // because of the n substeps folded into gpu_per_node).
        let schedule = Schedule::build(NodeConfig::SUMMIT, 1, [48, 48, 48], [36, 36, 36]);
        simulate_step(
            &schedule,
            WorkRates {
                cpu_per_node: 1e-7,
                gpu_per_node: 4e-7,
                comm_per_site: 1e-8,
            },
        )
    }

    #[test]
    fn gpu_work_dominates_like_the_paper_says() {
        let t = summit_timeline();
        assert!(t.gpu_fraction() > 0.5, "GPU fraction {}", t.gpu_fraction());
    }

    #[test]
    fn wall_time_is_the_critical_path() {
        let t = summit_timeline();
        for &b in &t.task_busy {
            assert!(b <= t.wall_time + 1e-15);
        }
        assert!(t.utilization() > 0.0 && t.utilization() <= 1.0);
    }

    #[test]
    fn balanced_blocks_give_high_utilization() {
        // Cubic domain over a cubic task grid: near-equal blocks.
        let schedule = Schedule::build(NodeConfig::SUMMIT, 2, [60, 60, 60], [40, 40, 40]);
        let t = simulate_step(
            &schedule,
            WorkRates {
                cpu_per_node: 1e-7,
                gpu_per_node: 1.1e-7,
                comm_per_site: 0.0,
            },
        );
        assert!(t.utilization() > 0.5, "utilization {}", t.utilization());
    }
}
