//! Halo exchange between block tasks, with sealed messages and
//! NACK-driven resend.
//!
//! A shared-memory stand-in for the paper's MPI halo exchange (§2.4.5,
//! "Reducing Cell Communication"): each task owns a scalar field over its
//! block plus a one-layer ghost shell; [`HaloExchanger::exchange`] fills
//! every ghost layer from the owning neighbour. Tasks run concurrently on
//! the apr-exec worker pool and hand off slabs over crossbeam channels, so
//! the communication structure (who sends what to whom, message sizes)
//! matches the distributed original even though transport is memcpy-speed.
//!
//! Resilience: every slab travels as a [`SealedSlab`] (exchange epoch +
//! sequence number + CRC32). Receivers validate before unpacking; a slab
//! that is missing, corrupt, or mis-epoched produces a [`Nack`] back to
//! the sender, which resends from its retained send buffer — with
//! exponential backoff — up to [`HaloConfig::max_resends`] times. Only
//! when the budget is exhausted (or the peer is dead) does the ghost
//! layer *freeze* at its previous contents, and that degradation is
//! reported in the [`ExchangeReport`] instead of panicking.

use crate::decomp::BlockDecomposition;
use crate::envelope::{HaloError, LinkId, Nack, SealedSlab};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::collections::HashMap;
use std::time::Duration;

/// A face key: `(axis, direction)` with direction `+1` or `-1`.
type Face = (usize, i64);

/// Stable link tag for a receiver-side face.
fn face_tag(face: Face) -> u8 {
    (face.0 as u8) * 2 + u8::from(face.1 > 0)
}

/// Sender-side endpoint for one face: where the slab goes and how the
/// receiver names the link.
struct SendPort {
    tx: Sender<SealedSlab>,
    /// Receiving task.
    dst: usize,
    /// The face the receiver sees the slab arrive on.
    recv_face: Face,
}

/// Receiver-side endpoint for one face.
struct RecvPort {
    rx: Receiver<SealedSlab>,
    /// Sending task.
    src: usize,
    /// NACK path back to the sender's queue.
    nack: Sender<Nack>,
}

/// A task-local field: the owned block plus a 1-layer ghost shell.
#[derive(Debug, Clone)]
pub struct GhostField {
    /// Owned extent.
    pub extent: [usize; 3],
    /// Data including ghosts: dimensions `extent + 2` per axis.
    pub data: Vec<f64>,
}

impl GhostField {
    /// New zero field for a block of `extent`.
    pub fn new(extent: [usize; 3]) -> Self {
        let n = (extent[0] + 2) * (extent[1] + 2) * (extent[2] + 2);
        Self {
            extent,
            data: vec![0.0; n],
        }
    }

    /// Index into the ghosted array; `(-1..=extent)` per axis.
    #[inline]
    pub fn idx(&self, x: i64, y: i64, z: i64) -> usize {
        let (gx, gy) = (self.extent[0] + 2, self.extent[1] + 2);
        debug_assert!(x >= -1 && y >= -1 && z >= -1);
        ((x + 1) as usize) + gx * ((y + 1) as usize + gy * ((z + 1) as usize))
    }

    /// Read an owned or ghost value.
    #[inline]
    pub fn get(&self, x: i64, y: i64, z: i64) -> f64 {
        self.data[self.idx(x, y, z)]
    }

    /// Write an owned or ghost value.
    #[inline]
    pub fn set(&mut self, x: i64, y: i64, z: i64, v: f64) {
        let i = self.idx(x, y, z);
        self.data[i] = v;
    }

    /// Values one face slab carries.
    pub fn face_len(&self, axis: usize) -> usize {
        let (a1, a2) = ((axis + 1) % 3, (axis + 2) % 3);
        self.extent[a1] * self.extent[a2]
    }

    /// Extract the boundary slab facing direction `(axis, +1/−1)`.
    pub fn boundary_slab(&self, axis: usize, dir: i64) -> Vec<f64> {
        let e = self.extent;
        let fixed = if dir > 0 { e[axis] as i64 - 1 } else { 0 };
        let (a1, a2) = ((axis + 1) % 3, (axis + 2) % 3);
        let mut out = Vec::with_capacity(e[a1] * e[a2]);
        for j in 0..e[a2] as i64 {
            for i in 0..e[a1] as i64 {
                let mut c = [0i64; 3];
                c[axis] = fixed;
                c[a1] = i;
                c[a2] = j;
                out.push(self.get(c[0], c[1], c[2]));
            }
        }
        out
    }

    /// Fill the ghost slab on side `(axis, dir)` from a received slab.
    pub fn fill_ghost_slab(&mut self, axis: usize, dir: i64, slab: &[f64]) {
        let e = self.extent;
        let fixed = if dir > 0 { e[axis] as i64 } else { -1 };
        let (a1, a2) = ((axis + 1) % 3, (axis + 2) % 3);
        assert_eq!(slab.len(), e[a1] * e[a2], "slab size mismatch");
        let mut it = slab.iter();
        for j in 0..e[a2] as i64 {
            for i in 0..e[a1] as i64 {
                let mut c = [0i64; 3];
                c[axis] = fixed;
                c[a1] = i;
                c[a2] = j;
                self.set(c[0], c[1], c[2], *it.next().unwrap());
            }
        }
    }
}

/// Tunables for the sealed exchange protocol.
#[derive(Debug, Clone)]
pub struct HaloConfig {
    /// Resend attempts per exchange before a ghost layer freezes.
    pub max_resends: u32,
    /// How long a receiver waits for a slab that has not arrived.
    pub recv_timeout: Duration,
    /// Backoff before the first resend re-receive; doubles per attempt.
    pub backoff_base: Duration,
}

impl Default for HaloConfig {
    fn default() -> Self {
        Self {
            max_resends: 3,
            recv_timeout: Duration::from_micros(200),
            backoff_base: Duration::from_micros(20),
        }
    }
}

/// What one [`HaloExchanger::exchange`] did, including every degradation.
#[derive(Debug, Clone, Default)]
pub struct ExchangeReport {
    /// Payload bytes moved (first sends only; resends not double-counted).
    pub bytes: usize,
    /// Heal rounds run (0 when every slab validated first try).
    pub retries: u32,
    /// Messages resent from retained buffers.
    pub resends: u32,
    /// Slabs that failed CRC validation.
    pub corrupt_detected: u32,
    /// Receives that timed out at least once.
    pub timeouts: u32,
    /// Ghost layers frozen at stale contents after the resend budget.
    pub frozen_faces: u32,
    /// Per-face degradations that survived healing: `(task, error)`.
    pub degraded: Vec<(usize, HaloError)>,
}

impl ExchangeReport {
    /// True when every ghost layer was filled from a validated slab.
    pub fn fully_healthy(&self) -> bool {
        self.frozen_faces == 0 && self.degraded.is_empty()
    }
}

/// Message routing for one decomposition's halo exchange.
pub struct HaloExchanger {
    senders: Vec<HashMap<Face, SendPort>>,
    receivers: Vec<HashMap<Face, RecvPort>>,
    nack_rx: Vec<Receiver<Nack>>,
    /// Last sealed slab per sender face, kept for NACK-driven resend.
    retained: Vec<HashMap<Face, SealedSlab>>,
    /// Tasks known dead; their faces freeze instead of blocking.
    dead: Vec<bool>,
    /// Protocol tunables.
    pub config: HaloConfig,
    /// Bytes moved in the last exchange (diagnostics for the perf model).
    pub last_exchange_bytes: usize,
    exchanges: u64,
    #[cfg(feature = "fault-injection")]
    chaos: crate::chaos::ChaosPlan,
    #[cfg(feature = "fault-injection")]
    delayed: Vec<(usize, Face, SealedSlab)>,
}

impl HaloExchanger {
    /// Build channels for every interior face of `decomp`.
    pub fn new(decomp: &BlockDecomposition) -> Self {
        Self::with_config(decomp, HaloConfig::default())
    }

    /// Build with explicit protocol tunables.
    pub fn with_config(decomp: &BlockDecomposition, config: HaloConfig) -> Self {
        let t = decomp.task_count();
        let mut senders: Vec<HashMap<Face, SendPort>> = (0..t).map(|_| HashMap::new()).collect();
        let mut receivers: Vec<HashMap<Face, RecvPort>> = (0..t).map(|_| HashMap::new()).collect();
        let nack_ports: Vec<(Sender<Nack>, Receiver<Nack>)> = (0..t).map(|_| unbounded()).collect();
        let mut link = |src: usize, send_face: Face, dst: usize, recv_face: Face| {
            let (tx, rx) = unbounded();
            senders[src].insert(send_face, SendPort { tx, dst, recv_face });
            receivers[dst].insert(
                recv_face,
                RecvPort {
                    rx,
                    src,
                    nack: nack_ports[src].0.clone(),
                },
            );
        };
        for task in 0..t {
            let k = decomp.grid_coords(task);
            for axis in 0..3 {
                if k[axis] + 1 < decomp.grid[axis] {
                    let mut kk = k;
                    kk[axis] += 1;
                    let nb = decomp.task_at(kk);
                    // task → nb (positive face) and nb → task (negative).
                    link(task, (axis, 1), nb, (axis, -1));
                    link(nb, (axis, -1), task, (axis, 1));
                }
            }
        }
        Self {
            senders,
            receivers,
            nack_rx: nack_ports.into_iter().map(|(_, rx)| rx).collect(),
            retained: (0..t).map(|_| HashMap::new()).collect(),
            dead: vec![false; t],
            config,
            last_exchange_bytes: 0,
            exchanges: 0,
            #[cfg(feature = "fault-injection")]
            chaos: crate::chaos::ChaosPlan::new(),
            #[cfg(feature = "fault-injection")]
            delayed: Vec::new(),
        }
    }

    /// Number of completed [`exchange`](Self::exchange) calls.
    pub fn exchange_count(&self) -> u64 {
        self.exchanges
    }

    /// Mark `task` dead: it stops sending and receiving, and its
    /// neighbours' facing ghost layers freeze (reported as
    /// [`HaloError::PeerDead`]) instead of blocking on it.
    pub fn mark_peer_dead(&mut self, task: usize) {
        self.dead[task] = true;
    }

    /// Is `task` marked dead?
    pub fn is_dead(&self, task: usize) -> bool {
        self.dead[task]
    }

    /// Schedule message-level chaos for this exchanger (drop / corrupt /
    /// delay every send from `task` during exchange round `round`).
    /// One-shot, like all chaos events.
    #[cfg(feature = "fault-injection")]
    pub fn schedule_message_fault(
        &mut self,
        round: u64,
        task: usize,
        fault: crate::chaos::MsgFault,
    ) {
        self.chaos.message_fault(round, task, fault);
    }

    /// Back-compat shorthand for a scheduled drop.
    #[cfg(feature = "fault-injection")]
    pub fn schedule_halo_drop(&mut self, exchange: u64, task: usize) {
        self.schedule_message_fault(exchange, task, crate::chaos::MsgFault::Drop);
    }

    /// Exchange all face halos: every field sends its boundary slabs and
    /// fills its ghost slabs. Runs tasks concurrently on the apr-exec pool
    /// (one chunk per task, so chunk layout — and hence per-task work
    /// assignment — is identical for every thread count).
    ///
    /// Three-phase protocol: **all** sends are posted before **any** task
    /// receives (interleaving them inside a single parallel pass can
    /// deadlock when the worker pool is smaller than the task count — the
    /// same reason MPI codes pre-post their halo sends); then every task
    /// validates its incoming slabs in parallel; then a serial heal phase
    /// drains NACKs and resends from retained buffers until everything is
    /// delivered or the budget runs out.
    ///
    /// Never panics on transport failure: missing/corrupt slabs degrade
    /// to frozen ghosts recorded in the returned [`ExchangeReport`]. An
    /// `Err` is only returned for caller-level protocol misuse.
    pub fn exchange(&mut self, fields: &mut [GhostField]) -> Result<ExchangeReport, HaloError> {
        let pool = apr_exec::current();
        if fields.len() != self.senders.len() {
            return Err(HaloError::Protocol(format!(
                "{} fields for {} tasks",
                fields.len(),
                self.senders.len()
            )));
        }
        let tasks = fields.len();
        let epoch = self.exchanges;
        let mut report = ExchangeReport::default();
        #[cfg(feature = "fault-injection")]
        let msg_faults = self.chaos.take_message_faults_due(epoch);

        // Per-task (rank) busy-time slots: each task is one chunk, so each
        // slot is written by exactly one lane per phase. This is the
        // shared-memory analogue of the paper's per-rank communication
        // timing — it surfaces which block dominates the exchange.
        let timing = apr_telemetry::is_enabled();
        let rank_ns: Vec<std::sync::atomic::AtomicU64> = if timing {
            (0..tasks)
                .map(|_| std::sync::atomic::AtomicU64::new(0))
                .collect()
        } else {
            Vec::new()
        };
        let record_ranks = |span: apr_telemetry::ScopedSpan<'static>| {
            if timing {
                let ns: Vec<u64> = rank_ns
                    .iter()
                    .map(|a| a.load(std::sync::atomic::Ordering::Relaxed))
                    .collect();
                apr_telemetry::global().record_rank_times(&ns);
            }
            drop(span); // rank times must land before the span closes
        };

        // Phase 1a (parallel): seal every outgoing slab — boundary
        // extraction plus CRC32 are the per-rank pack cost.
        let pack_span = apr_telemetry::span("halo.pack_send");
        let mut sealed: Vec<Vec<(Face, SealedSlab)>> = vec![Vec::new(); tasks];
        {
            let shared = &fields[..];
            let senders = &self.senders;
            let dead = &self.dead;
            pool.par_for_chunks_mut(&mut sealed, 1, |task, part| {
                let _rank = apr_telemetry::rank_scope(task as u32);
                let t0 = timing.then(std::time::Instant::now);
                if !dead[task] {
                    let field = &shared[task];
                    let mut out = Vec::with_capacity(senders[task].len());
                    for (&face, port) in &senders[task] {
                        let slab = field.boundary_slab(face.0, face.1);
                        let link = LinkId {
                            src: task as u32,
                            dst: port.dst as u32,
                            tag: face_tag(port.recv_face),
                        };
                        out.push((face, SealedSlab::seal(link, epoch, epoch, slab)));
                    }
                    part[0] = out;
                }
                if let Some(t0) = t0 {
                    rank_ns[task].store(
                        t0.elapsed().as_nanos() as u64,
                        std::sync::atomic::Ordering::Relaxed,
                    );
                }
            });
        }
        // Phase 1b (serial): retain + inject faults + post sends. Channel
        // pushes are cheap; the heavy sealing already happened in parallel.
        for (task, out) in sealed.into_iter().enumerate() {
            #[cfg(feature = "fault-injection")]
            let fault = msg_faults
                .iter()
                .find(|&&(rank, _)| rank == task)
                .map(|&(_, f)| f);
            for (face, slab) in out {
                // A dead receiver never drains its queue; don't feed it.
                if self.dead[self.senders[task][&face].dst] {
                    continue;
                }
                report.bytes += slab.byte_len();
                self.retained[task].insert(face, slab.clone());
                #[cfg(feature = "fault-injection")]
                match fault {
                    Some(crate::chaos::MsgFault::Drop) => continue,
                    Some(crate::chaos::MsgFault::Delay) => {
                        self.delayed.push((task, face, slab));
                        continue;
                    }
                    Some(crate::chaos::MsgFault::Corrupt) => {
                        let mut bad = slab;
                        bad.corrupt_in_place();
                        let _ = self.senders[task][&face].tx.send(bad);
                        continue;
                    }
                    None => {}
                }
                let _ = self.senders[task][&face].tx.send(slab);
            }
        }
        record_ranks(pack_span);

        // Phase 2 (parallel): validate + unpack. Every posted slab is
        // already queued, so the bounded receive only actually waits for
        // slabs that never arrived (dropped, delayed, or peer-dead).
        let unpack_span = apr_telemetry::span("halo.recv_unpack");
        let fail_slots: Vec<std::sync::Mutex<Vec<(Face, HaloError)>>> = (0..tasks)
            .map(|_| std::sync::Mutex::new(Vec::new()))
            .collect();
        {
            let receivers = &self.receivers;
            let dead = &self.dead;
            let cfg = &self.config;
            pool.par_for_chunks_mut(fields, 1, |task, part| {
                let _rank = apr_telemetry::rank_scope(task as u32);
                let t0 = timing.then(std::time::Instant::now);
                let field = &mut part[0];
                let mut failures = Vec::new();
                if !dead[task] {
                    for (&face, port) in &receivers[task] {
                        match receive_validated(port, face, task, field, epoch, cfg, dead) {
                            Ok(()) => {}
                            Err(err) => {
                                // NACK the sender unless it is dead (a dead
                                // peer cannot resend; freeze immediately).
                                if !matches!(err, HaloError::PeerDead { .. }) {
                                    let _ = port.nack.send(Nack {
                                        link: LinkId {
                                            src: port.src as u32,
                                            dst: task as u32,
                                            tag: face_tag(face),
                                        },
                                        epoch,
                                        reason: err_reason(&err),
                                    });
                                }
                                failures.push((face, err));
                            }
                        }
                    }
                }
                if !failures.is_empty() {
                    *fail_slots[task].lock().unwrap() = failures;
                }
                if let Some(t0) = t0 {
                    rank_ns[task].store(
                        t0.elapsed().as_nanos() as u64,
                        std::sync::atomic::Ordering::Relaxed,
                    );
                }
            });
        }
        record_ranks(unpack_span);

        // Phase 3 (serial): NACK-driven heal with exponential backoff.
        let mut failures: Vec<(usize, Face, HaloError)> = Vec::new();
        for (task, slot) in fail_slots.iter().enumerate() {
            for (face, err) in slot.lock().unwrap().drain(..) {
                match err {
                    HaloError::Corrupt { .. } => report.corrupt_detected += 1,
                    HaloError::Timeout { .. } => report.timeouts += 1,
                    _ => {}
                }
                failures.push((task, face, err));
            }
        }
        let mut attempt = 0u32;
        while !failures.is_empty() && attempt < self.config.max_resends {
            attempt += 1;
            // Drain NACK queues and resend from retained buffers (a
            // delayed message finally leaves its stash here).
            let mut resent = 0u32;
            for src in 0..tasks {
                while let Ok(nack) = self.nack_rx[src].try_recv() {
                    if self.dead[src] || nack.epoch != epoch {
                        continue;
                    }
                    #[cfg(feature = "fault-injection")]
                    if let Some(pos) = self
                        .delayed
                        .iter()
                        .position(|(t, _, slab)| *t == src && slab.link == nack.link)
                    {
                        let (_, face, slab) = self.delayed.remove(pos);
                        let _ = self.senders[src][&face].tx.send(slab);
                        resent += 1;
                        continue;
                    }
                    if let Some((face, slab)) = self.retained[src]
                        .iter()
                        .find(|(_, slab)| slab.link == nack.link)
                        .map(|(&face, slab)| (face, slab.clone()))
                    {
                        let _ = self.senders[src][&face].tx.send(slab);
                        resent += 1;
                    }
                }
            }
            report.resends += resent;
            apr_telemetry::counter_add("halo.resends", resent as u64);
            apr_telemetry::emit(apr_telemetry::TelemetryEvent::HaloResend {
                round: epoch,
                attempt,
                messages: resent,
            });
            if resent > 0 {
                // Exponential backoff: transient congestion clears faster
                // than repeated immediate retries would.
                std::thread::sleep(self.config.backoff_base * (1 << (attempt - 1).min(10)));
            }
            // Re-receive the failed faces (serial: fields borrow is ours).
            let cfg = &self.config;
            let mut still_failed = Vec::with_capacity(failures.len());
            for (task, face, err) in failures {
                if matches!(err, HaloError::PeerDead { .. }) || self.dead[task] {
                    still_failed.push((task, face, err));
                    continue;
                }
                let port = &self.receivers[task][&face];
                match receive_validated(port, face, task, &mut fields[task], epoch, cfg, &self.dead)
                {
                    Ok(()) => {}
                    Err(new_err) => {
                        if matches!(new_err, HaloError::Corrupt { .. }) {
                            report.corrupt_detected += 1;
                        }
                        if !matches!(new_err, HaloError::PeerDead { .. }) {
                            let _ = port.nack.send(Nack {
                                link: LinkId {
                                    src: port.src as u32,
                                    dst: task as u32,
                                    tag: face_tag(face),
                                },
                                epoch,
                                reason: err_reason(&new_err),
                            });
                        }
                        still_failed.push((task, face, new_err));
                    }
                }
            }
            failures = still_failed;
        }
        report.retries = attempt;
        apr_telemetry::counter_add("halo.retries", attempt as u64);

        // Graceful degradation: whatever could not be healed freezes at
        // the previous ghost contents — never a panic, never a deadlock.
        for (task, face, err) in failures {
            report.frozen_faces += 1;
            let degraded = match err {
                HaloError::PeerDead { .. } => err,
                _ => HaloError::ResendsExhausted {
                    link: LinkId {
                        src: self.receivers[task][&face].src as u32,
                        dst: task as u32,
                        tag: face_tag(face),
                    },
                    attempts: self.config.max_resends,
                },
            };
            report.degraded.push((task, degraded));
        }
        apr_telemetry::counter_add("halo.frozen_ghosts", report.frozen_faces as u64);
        if report.corrupt_detected > 0 {
            apr_telemetry::counter_add("halo.corrupt_detected", report.corrupt_detected as u64);
        }

        self.last_exchange_bytes = report.bytes;
        apr_telemetry::counter_add("halo.bytes", report.bytes as u64);
        apr_telemetry::emit(apr_telemetry::TelemetryEvent::HaloExchange {
            round: epoch,
            bytes: report.bytes as u64,
            starved: report.frozen_faces,
        });
        self.exchanges += 1;
        Ok(report)
    }
}

fn err_reason(err: &HaloError) -> &'static str {
    match err {
        HaloError::Timeout { .. } => "timeout",
        HaloError::Corrupt { .. } => "corrupt",
        HaloError::Reordered { .. } => "reordered",
        HaloError::SizeMismatch { .. } => "size_mismatch",
        HaloError::PeerDead { .. } => "peer_dead",
        HaloError::ResendsExhausted { .. } => "exhausted",
        HaloError::Protocol(_) => "protocol",
    }
}

/// Receive one face's slab with a bounded wait, validate the seal, and
/// unpack into the ghost layer. Stale-epoch slabs (late resends from a
/// previous round) are discarded and the receive retried.
fn receive_validated(
    port: &RecvPort,
    face: Face,
    task: usize,
    field: &mut GhostField,
    epoch: u64,
    cfg: &HaloConfig,
    dead: &[bool],
) -> Result<(), HaloError> {
    if dead[port.src] {
        return Err(HaloError::PeerDead { rank: port.src });
    }
    let expected_len = field.face_len(face.0);
    loop {
        let slab = match port.rx.try_recv() {
            Ok(slab) => slab,
            Err(TryRecvError::Empty) => match port.rx.recv_timeout(cfg.recv_timeout) {
                Ok(slab) => slab,
                Err(RecvTimeoutError::Timeout) => {
                    return Err(HaloError::Timeout {
                        link: LinkId {
                            src: port.src as u32,
                            dst: task as u32,
                            tag: face_tag(face),
                        },
                    })
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(HaloError::PeerDead { rank: port.src })
                }
            },
            Err(TryRecvError::Disconnected) => return Err(HaloError::PeerDead { rank: port.src }),
        };
        match slab.verify(epoch, expected_len) {
            Ok(()) => {
                field.fill_ghost_slab(face.0, face.1, &slab.payload);
                return Ok(());
            }
            // A slab from an earlier epoch is a late duplicate: discard
            // it and keep waiting for this round's message.
            Err(HaloError::Reordered { got_epoch, .. }) if got_epoch < epoch => continue,
            Err(err) => return Err(err),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distributed 7-point Jacobi smoother: the canonical halo workload.
    fn distributed_jacobi_step(
        decomp: &BlockDecomposition,
        ex: &mut HaloExchanger,
        fields: &mut [GhostField],
    ) {
        ex.exchange(fields).unwrap();
        for (t, field) in fields.iter_mut().enumerate() {
            let e = field.extent;
            let k = decomp.grid_coords(t);
            let mut next = field.data.clone();
            for z in 0..e[2] as i64 {
                for y in 0..e[1] as i64 {
                    for x in 0..e[0] as i64 {
                        // Skip global domain boundary (Dirichlet).
                        let gx = decomp.blocks[t].lo[0] as i64 + x;
                        let gy = decomp.blocks[t].lo[1] as i64 + y;
                        let gz = decomp.blocks[t].lo[2] as i64 + z;
                        let dims = decomp.dims;
                        if gx == 0
                            || gy == 0
                            || gz == 0
                            || gx == dims[0] as i64 - 1
                            || gy == dims[1] as i64 - 1
                            || gz == dims[2] as i64 - 1
                        {
                            continue;
                        }
                        let _ = k;
                        let avg = (field.get(x - 1, y, z)
                            + field.get(x + 1, y, z)
                            + field.get(x, y - 1, z)
                            + field.get(x, y + 1, z)
                            + field.get(x, y, z - 1)
                            + field.get(x, y, z + 1))
                            / 6.0;
                        next[field.idx(x, y, z)] = avg;
                    }
                }
            }
            field.data = next;
        }
    }

    fn gather(decomp: &BlockDecomposition, fields: &[GhostField]) -> Vec<f64> {
        let d = decomp.dims;
        let mut global = vec![0.0; d[0] * d[1] * d[2]];
        for (t, f) in fields.iter().enumerate() {
            let b = &decomp.blocks[t];
            for z in 0..f.extent[2] {
                for y in 0..f.extent[1] {
                    for x in 0..f.extent[0] {
                        let g = (b.lo[0] + x) + d[0] * ((b.lo[1] + y) + d[1] * (b.lo[2] + z));
                        global[g] = f.get(x as i64, y as i64, z as i64);
                    }
                }
            }
        }
        global
    }

    fn scatter(decomp: &BlockDecomposition, global: &[f64]) -> Vec<GhostField> {
        let d = decomp.dims;
        decomp
            .blocks
            .iter()
            .map(|b| {
                let mut f = GhostField::new(b.extent());
                for z in 0..f.extent[2] {
                    for y in 0..f.extent[1] {
                        for x in 0..f.extent[0] {
                            let g = (b.lo[0] + x) + d[0] * ((b.lo[1] + y) + d[1] * (b.lo[2] + z));
                            f.set(x as i64, y as i64, z as i64, global[g]);
                        }
                    }
                }
                f
            })
            .collect()
    }

    fn serial_jacobi_step(dims: [usize; 3], data: &mut [f64]) {
        let idx = |x: usize, y: usize, z: usize| x + dims[0] * (y + dims[1] * z);
        let old = data.to_vec();
        for z in 1..dims[2] - 1 {
            for y in 1..dims[1] - 1 {
                for x in 1..dims[0] - 1 {
                    data[idx(x, y, z)] = (old[idx(x - 1, y, z)]
                        + old[idx(x + 1, y, z)]
                        + old[idx(x, y - 1, z)]
                        + old[idx(x, y + 1, z)]
                        + old[idx(x, y, z - 1)]
                        + old[idx(x, y, z + 1)])
                        / 6.0;
                }
            }
        }
    }

    fn marked_fields(decomp: &BlockDecomposition) -> Vec<GhostField> {
        let mut fields: Vec<GhostField> = decomp
            .blocks
            .iter()
            .map(|b| GhostField::new(b.extent()))
            .collect();
        // Mark each task's owned cells with its task id.
        for (t, f) in fields.iter_mut().enumerate() {
            for z in 0..f.extent[2] as i64 {
                for y in 0..f.extent[1] as i64 {
                    for x in 0..f.extent[0] as i64 {
                        f.set(x, y, z, t as f64 + 1.0);
                    }
                }
            }
        }
        fields
    }

    #[test]
    fn distributed_jacobi_matches_serial() {
        let dims = [12, 10, 8];
        let decomp = BlockDecomposition::new(dims, 8);
        // Deterministic pseudo-random initial condition.
        let mut global: Vec<f64> = (0..dims[0] * dims[1] * dims[2])
            .map(|i| ((i * 2654435761) % 1000) as f64 / 1000.0)
            .collect();
        let mut fields = scatter(&decomp, &global);
        let mut ex = HaloExchanger::new(&decomp);
        for _ in 0..5 {
            distributed_jacobi_step(&decomp, &mut ex, &mut fields);
            serial_jacobi_step(dims, &mut global);
        }
        let gathered = gather(&decomp, &fields);
        for (i, (a, b)) in gathered.iter().zip(&global).enumerate() {
            assert!((a - b).abs() < 1e-12, "node {i}: {a} vs {b}");
        }
    }

    #[test]
    fn exchange_reports_traffic_and_health() {
        let decomp = BlockDecomposition::new([8, 8, 8], 8);
        let mut fields: Vec<GhostField> = decomp
            .blocks
            .iter()
            .map(|b| GhostField::new(b.extent()))
            .collect();
        let mut ex = HaloExchanger::new(&decomp);
        let report = ex.exchange(&mut fields).unwrap();
        // 2×2×2 grid of 4³ blocks: each block sends 3 faces of 16 values.
        let expected = 8 * 3 * 16 * std::mem::size_of::<f64>();
        assert_eq!(report.bytes, expected);
        assert_eq!(ex.last_exchange_bytes, expected);
        assert!(report.fully_healthy());
        assert_eq!(report.retries, 0, "clean exchange must not retry");
        assert_eq!(report.resends, 0);
    }

    #[test]
    fn ghost_values_match_neighbor_boundaries() {
        let decomp = BlockDecomposition::new([4, 2, 2], 2);
        let mut fields = marked_fields(&decomp);
        let mut ex = HaloExchanger::new(&decomp);
        ex.exchange(&mut fields).unwrap();
        // Task 0's +x ghost layer must now hold task 1's id.
        assert_eq!(fields[0].get(fields[0].extent[0] as i64, 0, 0), 2.0);
        // Task 1's −x ghost layer holds task 0's id.
        assert_eq!(fields[1].get(-1, 0, 0), 1.0);
    }

    #[test]
    fn dead_peer_freezes_ghosts_without_panicking() {
        let decomp = BlockDecomposition::new([4, 2, 2], 2);
        let mut fields = marked_fields(&decomp);
        let mut ex = HaloExchanger::new(&decomp);
        ex.mark_peer_dead(1);
        let report = ex.exchange(&mut fields).unwrap();
        // Task 0's +x ghost was never filled: frozen at the initial zero.
        assert_eq!(fields[0].get(fields[0].extent[0] as i64, 0, 0), 0.0);
        assert_eq!(report.frozen_faces, 1);
        assert!(matches!(
            report.degraded.as_slice(),
            [(0, HaloError::PeerDead { rank: 1 })]
        ));
        // No resends were attempted toward a dead peer.
        assert_eq!(report.resends, 0);
    }

    #[test]
    fn field_count_mismatch_is_a_typed_error() {
        let decomp = BlockDecomposition::new([4, 2, 2], 2);
        let mut fields = marked_fields(&decomp);
        fields.pop();
        let mut ex = HaloExchanger::new(&decomp);
        assert!(matches!(
            ex.exchange(&mut fields),
            Err(HaloError::Protocol(_))
        ));
    }

    #[cfg(feature = "fault-injection")]
    mod chaos {
        use super::*;
        use crate::chaos::MsgFault;

        #[test]
        fn dropped_halo_is_healed_by_resend() {
            let decomp = BlockDecomposition::new([4, 2, 2], 2);
            let mut fields = marked_fields(&decomp);
            let mut ex = HaloExchanger::new(&decomp);
            // Task 1 loses all its sends during the first exchange.
            ex.schedule_message_fault(0, 1, MsgFault::Drop);
            let report = ex.exchange(&mut fields).unwrap();
            // The retained-buffer resend healed the ghost in-round.
            assert_eq!(fields[0].get(fields[0].extent[0] as i64, 0, 0), 2.0);
            assert_eq!(fields[1].get(-1, 0, 0), 1.0);
            assert!(report.resends >= 1, "{report:?}");
            assert!(report.timeouts >= 1, "{report:?}");
            assert!(report.fully_healthy(), "{report:?}");
            // The drop is one-shot: the next exchange is clean.
            let report = ex.exchange(&mut fields).unwrap();
            assert_eq!(report.resends, 0);
            assert_eq!(ex.exchange_count(), 2);
        }

        #[test]
        fn corrupted_halo_is_detected_by_crc_and_healed() {
            let decomp = BlockDecomposition::new([4, 2, 2], 2);
            let mut fields = marked_fields(&decomp);
            let mut ex = HaloExchanger::new(&decomp);
            ex.schedule_message_fault(0, 0, MsgFault::Corrupt);
            let report = ex.exchange(&mut fields).unwrap();
            assert!(report.corrupt_detected >= 1, "{report:?}");
            assert!(report.resends >= 1, "{report:?}");
            assert!(report.fully_healthy(), "{report:?}");
            // The healed ghost holds the *clean* value, not the corrupt one.
            assert_eq!(fields[1].get(-1, 0, 0), 1.0);
        }

        #[test]
        fn delayed_halo_arrives_on_first_retry() {
            let decomp = BlockDecomposition::new([4, 2, 2], 2);
            let mut fields = marked_fields(&decomp);
            let mut ex = HaloExchanger::new(&decomp);
            ex.schedule_message_fault(0, 1, MsgFault::Delay);
            let report = ex.exchange(&mut fields).unwrap();
            assert_eq!(fields[0].get(fields[0].extent[0] as i64, 0, 0), 2.0);
            assert!(report.resends >= 1, "{report:?}");
            assert!(report.fully_healthy(), "{report:?}");
        }

        #[test]
        fn exhausted_resends_freeze_rather_than_abort() {
            let decomp = BlockDecomposition::new([4, 2, 2], 2);
            let mut fields = marked_fields(&decomp);
            let mut ex = HaloExchanger::new(&decomp);
            // Drop the same sender's traffic on every heal attempt by
            // shrinking the budget to zero: nothing can be resent.
            ex.config.max_resends = 0;
            ex.schedule_message_fault(0, 1, MsgFault::Drop);
            let report = ex.exchange(&mut fields).unwrap();
            assert_eq!(report.frozen_faces, 1, "{report:?}");
            assert!(matches!(
                report.degraded.as_slice(),
                [(0, HaloError::ResendsExhausted { .. })]
            ));
            // The ghost froze at its previous (initial) contents.
            assert_eq!(fields[0].get(fields[0].extent[0] as i64, 0, 0), 0.0);
        }
    }
}
