//! Halo exchange between block tasks.
//!
//! A shared-memory stand-in for the paper's MPI halo exchange (§2.4.5,
//! "Reducing Cell Communication"): each task owns a scalar field over its
//! block plus a one-layer ghost shell; [`HaloExchanger::exchange`] fills
//! every ghost layer from the owning neighbour. Tasks run concurrently on
//! the apr-exec worker pool and hand off slabs over crossbeam channels, so
//! the communication structure (who sends what to whom, message sizes)
//! matches the distributed original even though transport is memcpy-speed.

use crate::decomp::BlockDecomposition;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;

/// Per-task halo endpoints, keyed by face `(axis, direction)`.
type FaceSenders = HashMap<(usize, i64), Sender<Vec<f64>>>;
type FaceReceivers = HashMap<(usize, i64), Receiver<Vec<f64>>>;

/// A task-local field: the owned block plus a 1-layer ghost shell.
#[derive(Debug, Clone)]
pub struct GhostField {
    /// Owned extent.
    pub extent: [usize; 3],
    /// Data including ghosts: dimensions `extent + 2` per axis.
    pub data: Vec<f64>,
}

impl GhostField {
    /// New zero field for a block of `extent`.
    pub fn new(extent: [usize; 3]) -> Self {
        let n = (extent[0] + 2) * (extent[1] + 2) * (extent[2] + 2);
        Self {
            extent,
            data: vec![0.0; n],
        }
    }

    /// Index into the ghosted array; `(-1..=extent)` per axis.
    #[inline]
    pub fn idx(&self, x: i64, y: i64, z: i64) -> usize {
        let (gx, gy) = (self.extent[0] + 2, self.extent[1] + 2);
        debug_assert!(x >= -1 && y >= -1 && z >= -1);
        ((x + 1) as usize) + gx * ((y + 1) as usize + gy * ((z + 1) as usize))
    }

    /// Read an owned or ghost value.
    #[inline]
    pub fn get(&self, x: i64, y: i64, z: i64) -> f64 {
        self.data[self.idx(x, y, z)]
    }

    /// Write an owned or ghost value.
    #[inline]
    pub fn set(&mut self, x: i64, y: i64, z: i64, v: f64) {
        let i = self.idx(x, y, z);
        self.data[i] = v;
    }

    /// Extract the boundary slab facing direction `(axis, +1/−1)`.
    pub fn boundary_slab(&self, axis: usize, dir: i64) -> Vec<f64> {
        let e = self.extent;
        let fixed = if dir > 0 { e[axis] as i64 - 1 } else { 0 };
        let (a1, a2) = ((axis + 1) % 3, (axis + 2) % 3);
        let mut out = Vec::with_capacity(e[a1] * e[a2]);
        for j in 0..e[a2] as i64 {
            for i in 0..e[a1] as i64 {
                let mut c = [0i64; 3];
                c[axis] = fixed;
                c[a1] = i;
                c[a2] = j;
                out.push(self.get(c[0], c[1], c[2]));
            }
        }
        out
    }

    /// Fill the ghost slab on side `(axis, dir)` from a received slab.
    pub fn fill_ghost_slab(&mut self, axis: usize, dir: i64, slab: &[f64]) {
        let e = self.extent;
        let fixed = if dir > 0 { e[axis] as i64 } else { -1 };
        let (a1, a2) = ((axis + 1) % 3, (axis + 2) % 3);
        assert_eq!(slab.len(), e[a1] * e[a2], "slab size mismatch");
        let mut it = slab.iter();
        for j in 0..e[a2] as i64 {
            for i in 0..e[a1] as i64 {
                let mut c = [0i64; 3];
                c[axis] = fixed;
                c[a1] = i;
                c[a2] = j;
                self.set(c[0], c[1], c[2], *it.next().unwrap());
            }
        }
    }
}

/// Message routing for one decomposition's halo exchange.
pub struct HaloExchanger {
    senders: Vec<FaceSenders>,
    receivers: Vec<FaceReceivers>,
    /// Bytes moved in the last exchange (diagnostics for the perf model).
    pub last_exchange_bytes: usize,
    exchanges: u64,
    #[cfg(feature = "fault-injection")]
    drop_plan: Vec<(u64, usize)>,
    #[cfg(feature = "fault-injection")]
    starved_receives: std::sync::atomic::AtomicUsize,
}

impl HaloExchanger {
    /// Build channels for every interior face of `decomp`.
    pub fn new(decomp: &BlockDecomposition) -> Self {
        let t = decomp.task_count();
        let mut senders: Vec<FaceSenders> = (0..t).map(|_| HashMap::new()).collect();
        let mut receivers: Vec<FaceReceivers> = (0..t).map(|_| HashMap::new()).collect();
        for task in 0..t {
            let k = decomp.grid_coords(task);
            for axis in 0..3 {
                if k[axis] + 1 < decomp.grid[axis] {
                    let mut kk = k;
                    kk[axis] += 1;
                    let nb = decomp.task_at(kk);
                    // task → nb (positive face) and nb → task (negative).
                    let (s1, r1) = unbounded();
                    senders[task].insert((axis, 1), s1);
                    receivers[nb].insert((axis, -1), r1);
                    let (s2, r2) = unbounded();
                    senders[nb].insert((axis, -1), s2);
                    receivers[task].insert((axis, 1), r2);
                }
            }
        }
        Self {
            senders,
            receivers,
            last_exchange_bytes: 0,
            exchanges: 0,
            #[cfg(feature = "fault-injection")]
            drop_plan: Vec::new(),
            #[cfg(feature = "fault-injection")]
            starved_receives: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Number of completed [`exchange`](Self::exchange) calls.
    pub fn exchange_count(&self) -> u64 {
        self.exchanges
    }

    /// Schedule every send from `task` to be silently dropped during the
    /// `exchange`-th exchange (0-based). One-shot: the entry is consumed
    /// when it fires, so a retried exchange proceeds clean — models a
    /// transiently lost MPI message.
    #[cfg(feature = "fault-injection")]
    pub fn schedule_halo_drop(&mut self, exchange: u64, task: usize) {
        self.drop_plan.push((exchange, task));
    }

    /// Receives starved by dropped sends so far (the affected ghost slab
    /// keeps its previous, stale contents).
    #[cfg(feature = "fault-injection")]
    pub fn starved_receives(&self) -> usize {
        self.starved_receives
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Exchange all face halos: every field sends its boundary slabs and
    /// fills its ghost slabs. Runs tasks concurrently on the apr-exec pool
    /// (one chunk per task, so chunk layout — and hence per-task work
    /// assignment — is identical for every thread count).
    ///
    /// Two-phase protocol: **all** sends complete before **any** task
    /// receives. Interleaving them inside a single parallel pass can
    /// deadlock when the worker pool is smaller than the task count (every
    /// worker blocks on a `recv` whose sender task has not been scheduled) —
    /// the same reason MPI codes pre-post their halo sends.
    pub fn exchange(&mut self, fields: &mut [GhostField]) {
        let pool = apr_exec::current();
        assert_eq!(
            fields.len(),
            self.senders.len(),
            "field/task count mismatch"
        );
        #[cfg(feature = "fault-injection")]
        let muted: Vec<usize> = {
            let round = self.exchanges;
            let mut muted = Vec::new();
            self.drop_plan.retain(|&(ex, task)| {
                if ex == round {
                    muted.push(task);
                    false
                } else {
                    true
                }
            });
            muted
        };
        let senders = &self.senders;
        let receivers = &self.receivers;
        // Per-task (rank) busy-time slots: each task is one chunk, so each
        // slot is written by exactly one lane per phase. This is the
        // shared-memory analogue of the paper's per-rank communication
        // timing — it surfaces which block dominates the exchange.
        let timing = apr_telemetry::is_enabled();
        let rank_ns: Vec<std::sync::atomic::AtomicU64> = if timing {
            (0..fields.len())
                .map(|_| std::sync::atomic::AtomicU64::new(0))
                .collect()
        } else {
            Vec::new()
        };
        let record_ranks = |span: apr_telemetry::ScopedSpan<'static>| {
            if timing {
                let ns: Vec<u64> = rank_ns
                    .iter()
                    .map(|a| a.load(std::sync::atomic::Ordering::Relaxed))
                    .collect();
                apr_telemetry::global().record_rank_times(&ns);
            }
            drop(span); // rank times must land before the span closes
        };
        // Phase 1: post every send (unbounded channels never block).
        let pack_span = apr_telemetry::span("halo.pack_send");
        let shared = &fields[..];
        let bytes: usize = pool
            .par_map_reduce(
                shared.len(),
                1,
                |task, _range| {
                    let t0 = timing.then(std::time::Instant::now);
                    #[cfg(feature = "fault-injection")]
                    if muted.contains(&task) {
                        return 0;
                    }
                    let field = &shared[task];
                    let mut sent = 0;
                    for (&(axis, dir), tx) in &senders[task] {
                        let slab = field.boundary_slab(axis, dir);
                        sent += slab.len() * std::mem::size_of::<f64>();
                        tx.send(slab).expect("halo receiver dropped");
                    }
                    if let Some(t0) = t0 {
                        rank_ns[task].store(
                            t0.elapsed().as_nanos() as u64,
                            std::sync::atomic::Ordering::Relaxed,
                        );
                    }
                    sent
                },
                |a, b| a + b,
            )
            .unwrap_or(0);
        record_ranks(pack_span);
        // Phase 2: drain; every surviving message is already queued, so a
        // non-blocking receive is exact — an empty channel can only mean
        // the paired send was dropped, and the ghost slab stays stale.
        let unpack_span = apr_telemetry::span("halo.recv_unpack");
        #[cfg(feature = "fault-injection")]
        let starved_before = self.starved_receives();
        #[cfg(feature = "fault-injection")]
        let starved = &self.starved_receives;
        pool.par_for_chunks_mut(fields, 1, |task, part| {
            let t0 = timing.then(std::time::Instant::now);
            let field = &mut part[0];
            for (&(axis, dir), rx) in &receivers[task] {
                #[cfg(feature = "fault-injection")]
                {
                    match rx.try_recv() {
                        Ok(slab) => field.fill_ghost_slab(axis, dir, &slab),
                        Err(_) => {
                            starved.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                }
                #[cfg(not(feature = "fault-injection"))]
                {
                    let slab = rx.recv().expect("halo sender dropped");
                    field.fill_ghost_slab(axis, dir, &slab);
                }
            }
            if let Some(t0) = t0 {
                rank_ns[task].store(
                    t0.elapsed().as_nanos() as u64,
                    std::sync::atomic::Ordering::Relaxed,
                );
            }
        });
        record_ranks(unpack_span);
        self.last_exchange_bytes = bytes;
        apr_telemetry::counter_add("halo.bytes", bytes as u64);
        apr_telemetry::emit(apr_telemetry::TelemetryEvent::HaloExchange {
            round: self.exchanges,
            bytes: bytes as u64,
            #[cfg(feature = "fault-injection")]
            starved: (self.starved_receives() - starved_before) as u32,
            #[cfg(not(feature = "fault-injection"))]
            starved: 0,
        });
        self.exchanges += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distributed 7-point Jacobi smoother: the canonical halo workload.
    fn distributed_jacobi_step(
        decomp: &BlockDecomposition,
        ex: &mut HaloExchanger,
        fields: &mut [GhostField],
    ) {
        ex.exchange(fields);
        for (t, field) in fields.iter_mut().enumerate() {
            let e = field.extent;
            let k = decomp.grid_coords(t);
            let mut next = field.data.clone();
            for z in 0..e[2] as i64 {
                for y in 0..e[1] as i64 {
                    for x in 0..e[0] as i64 {
                        // Skip global domain boundary (Dirichlet).
                        let gx = decomp.blocks[t].lo[0] as i64 + x;
                        let gy = decomp.blocks[t].lo[1] as i64 + y;
                        let gz = decomp.blocks[t].lo[2] as i64 + z;
                        let dims = decomp.dims;
                        if gx == 0
                            || gy == 0
                            || gz == 0
                            || gx == dims[0] as i64 - 1
                            || gy == dims[1] as i64 - 1
                            || gz == dims[2] as i64 - 1
                        {
                            continue;
                        }
                        let _ = k;
                        let avg = (field.get(x - 1, y, z)
                            + field.get(x + 1, y, z)
                            + field.get(x, y - 1, z)
                            + field.get(x, y + 1, z)
                            + field.get(x, y, z - 1)
                            + field.get(x, y, z + 1))
                            / 6.0;
                        next[field.idx(x, y, z)] = avg;
                    }
                }
            }
            field.data = next;
        }
    }

    fn gather(decomp: &BlockDecomposition, fields: &[GhostField]) -> Vec<f64> {
        let d = decomp.dims;
        let mut global = vec![0.0; d[0] * d[1] * d[2]];
        for (t, f) in fields.iter().enumerate() {
            let b = &decomp.blocks[t];
            for z in 0..f.extent[2] {
                for y in 0..f.extent[1] {
                    for x in 0..f.extent[0] {
                        let g = (b.lo[0] + x) + d[0] * ((b.lo[1] + y) + d[1] * (b.lo[2] + z));
                        global[g] = f.get(x as i64, y as i64, z as i64);
                    }
                }
            }
        }
        global
    }

    fn scatter(decomp: &BlockDecomposition, global: &[f64]) -> Vec<GhostField> {
        let d = decomp.dims;
        decomp
            .blocks
            .iter()
            .map(|b| {
                let mut f = GhostField::new(b.extent());
                for z in 0..f.extent[2] {
                    for y in 0..f.extent[1] {
                        for x in 0..f.extent[0] {
                            let g = (b.lo[0] + x) + d[0] * ((b.lo[1] + y) + d[1] * (b.lo[2] + z));
                            f.set(x as i64, y as i64, z as i64, global[g]);
                        }
                    }
                }
                f
            })
            .collect()
    }

    fn serial_jacobi_step(dims: [usize; 3], data: &mut [f64]) {
        let idx = |x: usize, y: usize, z: usize| x + dims[0] * (y + dims[1] * z);
        let old = data.to_vec();
        for z in 1..dims[2] - 1 {
            for y in 1..dims[1] - 1 {
                for x in 1..dims[0] - 1 {
                    data[idx(x, y, z)] = (old[idx(x - 1, y, z)]
                        + old[idx(x + 1, y, z)]
                        + old[idx(x, y - 1, z)]
                        + old[idx(x, y + 1, z)]
                        + old[idx(x, y, z - 1)]
                        + old[idx(x, y, z + 1)])
                        / 6.0;
                }
            }
        }
    }

    #[test]
    fn distributed_jacobi_matches_serial() {
        let dims = [12, 10, 8];
        let decomp = BlockDecomposition::new(dims, 8);
        // Deterministic pseudo-random initial condition.
        let mut global: Vec<f64> = (0..dims[0] * dims[1] * dims[2])
            .map(|i| ((i * 2654435761) % 1000) as f64 / 1000.0)
            .collect();
        let mut fields = scatter(&decomp, &global);
        let mut ex = HaloExchanger::new(&decomp);
        for _ in 0..5 {
            distributed_jacobi_step(&decomp, &mut ex, &mut fields);
            serial_jacobi_step(dims, &mut global);
        }
        let gathered = gather(&decomp, &fields);
        for (i, (a, b)) in gathered.iter().zip(&global).enumerate() {
            assert!((a - b).abs() < 1e-12, "node {i}: {a} vs {b}");
        }
    }

    #[test]
    fn exchange_reports_traffic() {
        let decomp = BlockDecomposition::new([8, 8, 8], 8);
        let mut fields: Vec<GhostField> = decomp
            .blocks
            .iter()
            .map(|b| GhostField::new(b.extent()))
            .collect();
        let mut ex = HaloExchanger::new(&decomp);
        ex.exchange(&mut fields);
        // 2×2×2 grid of 4³ blocks: each block sends 3 faces of 16 values.
        let expected = 8 * 3 * 16 * std::mem::size_of::<f64>();
        assert_eq!(ex.last_exchange_bytes, expected);
    }

    #[test]
    fn ghost_values_match_neighbor_boundaries() {
        let decomp = BlockDecomposition::new([4, 2, 2], 2);
        let mut fields: Vec<GhostField> = decomp
            .blocks
            .iter()
            .map(|b| GhostField::new(b.extent()))
            .collect();
        // Mark each task's owned cells with its task id.
        for (t, f) in fields.iter_mut().enumerate() {
            for z in 0..f.extent[2] as i64 {
                for y in 0..f.extent[1] as i64 {
                    for x in 0..f.extent[0] as i64 {
                        f.set(x, y, z, t as f64 + 1.0);
                    }
                }
            }
        }
        let mut ex = HaloExchanger::new(&decomp);
        ex.exchange(&mut fields);
        // Task 0's +x ghost layer must now hold task 1's id.
        assert_eq!(fields[0].get(fields[0].extent[0] as i64, 0, 0), 2.0);
        // Task 1's −x ghost layer holds task 0's id.
        assert_eq!(fields[1].get(-1, 0, 0), 1.0);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn dropped_halo_leaves_ghosts_stale_then_recovers() {
        let decomp = BlockDecomposition::new([4, 2, 2], 2);
        let mut fields: Vec<GhostField> = decomp
            .blocks
            .iter()
            .map(|b| GhostField::new(b.extent()))
            .collect();
        for (t, f) in fields.iter_mut().enumerate() {
            for z in 0..f.extent[2] as i64 {
                for y in 0..f.extent[1] as i64 {
                    for x in 0..f.extent[0] as i64 {
                        f.set(x, y, z, t as f64 + 1.0);
                    }
                }
            }
        }
        let mut ex = HaloExchanger::new(&decomp);
        // Task 1 loses all its sends during the first exchange.
        ex.schedule_halo_drop(0, 1);
        ex.exchange(&mut fields);
        // Task 0's +x ghost was starved: still the initial zero.
        assert_eq!(fields[0].get(fields[0].extent[0] as i64, 0, 0), 0.0);
        // The reverse direction was unaffected.
        assert_eq!(fields[1].get(-1, 0, 0), 1.0);
        assert_eq!(ex.starved_receives(), 1);
        // The drop is one-shot: the next exchange heals the ghost.
        ex.exchange(&mut fields);
        assert_eq!(fields[0].get(fields[0].extent[0] as i64, 0, 0), 2.0);
        assert_eq!(ex.starved_receives(), 1);
        assert_eq!(ex.exchange_count(), 2);
    }
}
