//! Block domain decomposition.
//!
//! Splits a cuboid lattice into a 3D grid of near-equal blocks — the task
//! layout the paper uses for both the bulk (CPU ranks) and window (GPU
//! ranks) domains. Halo geometry derived here also feeds the performance
//! model's communication-volume terms (Figures 7–8).

/// One task's sub-block of the global domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// Inclusive lower corner (global lattice coordinates).
    pub lo: [usize; 3],
    /// Exclusive upper corner.
    pub hi: [usize; 3],
}

impl Block {
    /// Extent along each axis.
    pub fn extent(&self) -> [usize; 3] {
        [
            self.hi[0] - self.lo[0],
            self.hi[1] - self.lo[1],
            self.hi[2] - self.lo[2],
        ]
    }

    /// Number of lattice nodes in the block.
    pub fn volume(&self) -> usize {
        let e = self.extent();
        e[0] * e[1] * e[2]
    }

    /// Surface area in lattice faces (halo volume per exchanged layer).
    pub fn surface_area(&self) -> usize {
        let e = self.extent();
        2 * (e[0] * e[1] + e[1] * e[2] + e[0] * e[2])
    }

    /// Does the block contain global coordinate `p`?
    pub fn contains(&self, p: [usize; 3]) -> bool {
        (0..3).all(|a| p[a] >= self.lo[a] && p[a] < self.hi[a])
    }
}

/// A 3D grid decomposition of a global domain into tasks.
#[derive(Debug, Clone)]
pub struct BlockDecomposition {
    /// Global domain size.
    pub dims: [usize; 3],
    /// Task grid shape (blocks per axis).
    pub grid: [usize; 3],
    /// Blocks in lexicographic task order.
    pub blocks: Vec<Block>,
}

impl BlockDecomposition {
    /// Decompose `dims` into exactly `tasks` blocks using the most cubic
    /// factorization of the task count (minimizes total halo surface).
    ///
    /// # Panics
    /// Panics if `tasks` is zero or exceeds the node count.
    pub fn new(dims: [usize; 3], tasks: usize) -> Self {
        assert!(tasks > 0, "need at least one task");
        assert!(
            tasks <= dims[0] * dims[1] * dims[2],
            "more tasks ({tasks}) than lattice nodes"
        );
        let grid = best_grid(dims, tasks);
        let mut blocks = Vec::with_capacity(tasks);
        for kz in 0..grid[2] {
            for ky in 0..grid[1] {
                for kx in 0..grid[0] {
                    let k = [kx, ky, kz];
                    let mut lo = [0; 3];
                    let mut hi = [0; 3];
                    for a in 0..3 {
                        lo[a] = dims[a] * k[a] / grid[a];
                        hi[a] = dims[a] * (k[a] + 1) / grid[a];
                    }
                    blocks.push(Block { lo, hi });
                }
            }
        }
        Self { dims, grid, blocks }
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.blocks.len()
    }

    /// Task index of grid cell `(kx, ky, kz)`.
    pub fn task_at(&self, k: [usize; 3]) -> usize {
        k[0] + self.grid[0] * (k[1] + self.grid[1] * k[2])
    }

    /// Grid cell of task `t`.
    pub fn grid_coords(&self, t: usize) -> [usize; 3] {
        [
            t % self.grid[0],
            (t / self.grid[0]) % self.grid[1],
            t / (self.grid[0] * self.grid[1]),
        ]
    }

    /// Task owning global lattice coordinate `p`.
    pub fn owner_of(&self, p: [usize; 3]) -> usize {
        let mut k = [0; 3];
        for a in 0..3 {
            debug_assert!(p[a] < self.dims[a]);
            // Inverse of the block-boundary formula.
            k[a] = ((p[a] + 1) * self.grid[a]).div_ceil(self.dims[a]) - 1;
            while self.dims[a] * k[a] / self.grid[a] > p[a] {
                k[a] -= 1;
            }
            while self.dims[a] * (k[a] + 1) / self.grid[a] <= p[a] {
                k[a] += 1;
            }
        }
        self.task_at(k)
    }

    /// Neighbouring task indices of task `t` (face neighbours only — the
    /// dominant halo traffic; diagonal volumes are edge/corner sized).
    pub fn face_neighbors(&self, t: usize) -> Vec<usize> {
        let k = self.grid_coords(t);
        let mut out = Vec::with_capacity(6);
        for a in 0..3 {
            if k[a] > 0 {
                let mut kk = k;
                kk[a] -= 1;
                out.push(self.task_at(kk));
            }
            if k[a] + 1 < self.grid[a] {
                let mut kk = k;
                kk[a] += 1;
                out.push(self.task_at(kk));
            }
        }
        out
    }

    /// Total halo nodes exchanged per step for halo width `w` (sum over all
    /// interior faces, counting both directions).
    pub fn total_halo_volume(&self, w: usize) -> usize {
        let mut total = 0;
        for t in 0..self.task_count() {
            let k = self.grid_coords(t);
            let e = self.blocks[t].extent();
            for a in 0..3 {
                if k[a] + 1 < self.grid[a] {
                    let face = e[(a + 1) % 3] * e[(a + 2) % 3];
                    total += 2 * face * w; // both directions
                }
            }
        }
        total
    }

    /// Maximum block volume (the load-imbalance bound).
    pub fn max_block_volume(&self) -> usize {
        self.blocks.iter().map(Block::volume).max().unwrap_or(0)
    }
}

/// Most cubic grid `g` with `g[0]·g[1]·g[2] == tasks`, biased so longer
/// domain axes receive more cuts.
fn best_grid(dims: [usize; 3], tasks: usize) -> [usize; 3] {
    let mut best = [tasks, 1, 1];
    let mut best_cost = f64::MAX;
    let mut f1 = 1;
    while f1 * f1 * f1 <= tasks {
        if !tasks.is_multiple_of(f1) {
            f1 += 1;
            continue;
        }
        let rem = tasks / f1;
        let mut f2 = f1;
        while f2 * f2 <= rem {
            if !rem.is_multiple_of(f2) {
                f2 += 1;
                continue;
            }
            let f3 = rem / f2;
            // Try all axis assignments of (f1, f2, f3).
            for perm in permutations([f1, f2, f3]) {
                if perm[0] > dims[0] || perm[1] > dims[1] || perm[2] > dims[2] {
                    continue;
                }
                // Cost: total surface area of one block.
                let b = [
                    dims[0] as f64 / perm[0] as f64,
                    dims[1] as f64 / perm[1] as f64,
                    dims[2] as f64 / perm[2] as f64,
                ];
                let cost = b[0] * b[1] + b[1] * b[2] + b[0] * b[2];
                if cost < best_cost {
                    best_cost = cost;
                    best = perm;
                }
            }
            f2 += 1;
        }
        f1 += 1;
    }
    best
}

fn permutations(v: [usize; 3]) -> [[usize; 3]; 6] {
    [
        [v[0], v[1], v[2]],
        [v[0], v[2], v[1]],
        [v[1], v[0], v[2]],
        [v[1], v[2], v[0]],
        [v[2], v[0], v[1]],
        [v[2], v[1], v[0]],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_partition_the_domain() {
        let d = BlockDecomposition::new([30, 20, 10], 12);
        assert_eq!(d.task_count(), 12);
        let total: usize = d.blocks.iter().map(Block::volume).sum();
        assert_eq!(total, 30 * 20 * 10);
    }

    #[test]
    fn owner_of_matches_contains() {
        let d = BlockDecomposition::new([17, 13, 9], 8);
        for p in [[0, 0, 0], [16, 12, 8], [5, 7, 3], [9, 6, 4]] {
            let t = d.owner_of(p);
            assert!(d.blocks[t].contains(p), "point {p:?} owner {t}");
        }
    }

    #[test]
    fn every_node_has_exactly_one_owner() {
        let d = BlockDecomposition::new([12, 10, 8], 6);
        for x in 0..12 {
            for y in 0..10 {
                for z in 0..8 {
                    let owners = d.blocks.iter().filter(|b| b.contains([x, y, z])).count();
                    assert_eq!(owners, 1, "node ({x},{y},{z})");
                }
            }
        }
    }

    #[test]
    fn cubic_counts_give_cubic_grids() {
        let d = BlockDecomposition::new([64, 64, 64], 8);
        assert_eq!(d.grid, [2, 2, 2]);
        let d = BlockDecomposition::new([64, 64, 64], 27);
        assert_eq!(d.grid, [3, 3, 3]);
    }

    #[test]
    fn elongated_domains_get_cut_along_long_axis() {
        let d = BlockDecomposition::new([100, 10, 10], 4);
        assert_eq!(d.grid, [4, 1, 1]);
    }

    #[test]
    fn face_neighbors_are_symmetric() {
        let d = BlockDecomposition::new([24, 24, 24], 8);
        for t in 0..8 {
            for &n in &d.face_neighbors(t) {
                assert!(d.face_neighbors(n).contains(&t));
            }
        }
        // Corner block of a 2×2×2 grid has exactly 3 face neighbours.
        assert_eq!(d.face_neighbors(0).len(), 3);
    }

    #[test]
    fn halo_volume_grows_with_task_count() {
        let dims = [60, 60, 60];
        let h8 = BlockDecomposition::new(dims, 8).total_halo_volume(1);
        let h64 = BlockDecomposition::new(dims, 64).total_halo_volume(1);
        assert!(h64 > 2 * h8, "h8={h8}, h64={h64}");
    }

    #[test]
    fn surface_to_volume_rises_as_blocks_shrink() {
        // The strong-scaling rolloff mechanism (paper §3.4): per-task halo
        // grows relative to per-task volume as tasks increase.
        let dims = [120, 120, 120];
        let ratio = |tasks: usize| {
            let d = BlockDecomposition::new(dims, tasks);
            let b = &d.blocks[0];
            b.surface_area() as f64 / b.volume() as f64
        };
        assert!(ratio(8) < ratio(64));
        assert!(ratio(64) < ratio(512));
    }
}
