//! Seeded chaos harness for the distributed runtime.
//!
//! A [`ChaosPlan`] is a deterministic schedule of injected failures —
//! message drops/corruptions/delays, rank kills, hangs, and panics — keyed
//! by step (for rank faults) or exchange round (for message faults). Every
//! entry is **one-shot**: it is consumed when it fires, so a replay after
//! recovery runs clean and bit-identical recovery is testable at all.
//!
//! [`ChaosPlan::from_seed`] derives a whole schedule from a single `u64`
//! with the same splitmix64 generator `apr-guard` uses for its fault
//! plans, so a CI matrix row is reproduced locally by quoting one number.
//!
//! The plan type and the kill/hang/panic faults are compiled
//! unconditionally (the headline rank-recovery test runs in the default
//! feature set); a production run simply never schedules anything. The
//! message-level faults are applied by the exchange layers — gated behind
//! `fault-injection` in [`crate::halo`], unconditional in the supervisor
//! where the plan itself is the opt-in.

/// What to do to a rank's outgoing halo messages in one exchange round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgFault {
    /// Silently discard every send (lost message; heals via NACK resend).
    Drop,
    /// Flip a payload bit after sealing (detected by CRC, healed by
    /// resend from the retained buffer).
    Corrupt,
    /// Withhold sends until the first resend request (late message).
    Delay,
}

/// One scheduled failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Fail-stop rank `rank` at the start of step `step` (1-based, i.e.
    /// the rank dies before contributing to that step).
    KillRank {
        /// Step the kill fires at.
        step: u64,
        /// Victim rank.
        rank: usize,
    },
    /// Rank `rank` stops making progress (heartbeat stalls) for `lasts`
    /// steps starting at `step`; the supervisor declares it dead once its
    /// stall patience is exceeded.
    HangRank {
        /// First stalled step.
        step: u64,
        /// Victim rank.
        rank: usize,
        /// Stalled step count.
        lasts: u64,
    },
    /// Rank `rank` panics inside its step closure at step `step`
    /// (exercises the supervisor's `catch_unwind` containment).
    PanicRank {
        /// Step the panic fires at.
        step: u64,
        /// Victim rank.
        rank: usize,
    },
    /// Apply `fault` to every message rank `rank` sends during exchange
    /// round `round` (0-based).
    Message {
        /// Exchange round the fault fires in.
        round: u64,
        /// Sending rank whose messages are affected.
        rank: usize,
        /// What happens to the messages.
        fault: MsgFault,
    },
}

/// A deterministic, one-shot schedule of injected failures.
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    events: Vec<ChaosEvent>,
    /// Events that already fired (kept for post-mortem assertions).
    fired: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// Empty plan (no faults — the production value).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule one event.
    pub fn schedule(&mut self, event: ChaosEvent) -> &mut Self {
        self.events.push(event);
        self
    }

    /// Convenience: kill `rank` at `step`.
    pub fn kill_rank(&mut self, step: u64, rank: usize) -> &mut Self {
        self.schedule(ChaosEvent::KillRank { step, rank })
    }

    /// Convenience: hang `rank` for `lasts` steps starting at `step`.
    pub fn hang_rank(&mut self, step: u64, rank: usize, lasts: u64) -> &mut Self {
        self.schedule(ChaosEvent::HangRank { step, rank, lasts })
    }

    /// Convenience: panic `rank` at `step`.
    pub fn panic_rank(&mut self, step: u64, rank: usize) -> &mut Self {
        self.schedule(ChaosEvent::PanicRank { step, rank })
    }

    /// Convenience: apply `fault` to `rank`'s sends in exchange `round`.
    pub fn message_fault(&mut self, round: u64, rank: usize, fault: MsgFault) -> &mut Self {
        self.schedule(ChaosEvent::Message { round, rank, fault })
    }

    /// Derive a mixed schedule from a seed: one kill in the middle half of
    /// the run, plus a handful of message drops/corruptions/delays spread
    /// over the early exchange rounds. Identical seeds yield identical
    /// plans on every platform.
    pub fn from_seed(seed: u64, max_step: u64, ranks: usize) -> Self {
        assert!(ranks >= 1, "chaos plan needs at least one rank");
        assert!(max_step >= 4, "chaos plan needs at least four steps");
        let mut state = seed;
        let mut next = || apr_guard::splitmix64(&mut state);
        let mut plan = Self::new();
        // One fail-stop kill somewhere in the middle half of the run.
        let kill_step = max_step / 4 + 1 + next() % (max_step / 2).max(1);
        let kill_rank = (next() % ranks as u64) as usize;
        plan.kill_rank(kill_step, kill_rank);
        // Message-level faults in rounds before the kill so both healing
        // paths (resend and rollback) are exercised in one run.
        let kinds = [MsgFault::Drop, MsgFault::Corrupt, MsgFault::Delay];
        for kind in kinds {
            let round = next() % kill_step.max(1);
            let rank = (next() % ranks as u64) as usize;
            plan.message_fault(round, rank, kind);
        }
        plan
    }

    /// True if nothing is scheduled and nothing has fired.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.fired.is_empty()
    }

    /// Events still waiting to fire.
    pub fn pending(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// Events that already fired, in firing order.
    pub fn fired(&self) -> &[ChaosEvent] {
        &self.fired
    }

    /// Consume and return the ranks killed at `step`.
    pub fn take_kills_due(&mut self, step: u64) -> Vec<usize> {
        self.take(|ev| match ev {
            ChaosEvent::KillRank { step: s, rank } if s == step => Some(rank),
            _ => None,
        })
    }

    /// Consume and return `(rank, lasts)` hangs starting at `step`.
    pub fn take_hangs_due(&mut self, step: u64) -> Vec<(usize, u64)> {
        self.take(|ev| match ev {
            ChaosEvent::HangRank {
                step: s,
                rank,
                lasts,
            } if s == step => Some((rank, lasts)),
            _ => None,
        })
    }

    /// Consume and return the ranks that panic at `step`.
    pub fn take_panics_due(&mut self, step: u64) -> Vec<usize> {
        self.take(|ev| match ev {
            ChaosEvent::PanicRank { step: s, rank } if s == step => Some(rank),
            _ => None,
        })
    }

    /// Consume and return `(rank, fault)` message faults for exchange
    /// `round`.
    pub fn take_message_faults_due(&mut self, round: u64) -> Vec<(usize, MsgFault)> {
        self.take(|ev| match ev {
            ChaosEvent::Message {
                round: r,
                rank,
                fault,
            } if r == round => Some((rank, fault)),
            _ => None,
        })
    }

    fn take<T>(&mut self, mut pick: impl FnMut(ChaosEvent) -> Option<T>) -> Vec<T> {
        let mut out = Vec::new();
        let mut remaining = Vec::with_capacity(self.events.len());
        for ev in self.events.drain(..) {
            match pick(ev) {
                Some(v) => {
                    self.fired.push(ev);
                    out.push(v);
                }
                None => remaining.push(ev),
            }
        }
        self.events = remaining;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_one_shot() {
        let mut plan = ChaosPlan::new();
        plan.kill_rank(5, 2).message_fault(3, 0, MsgFault::Drop);
        assert!(plan.take_kills_due(4).is_empty());
        assert_eq!(plan.take_kills_due(5), [2]);
        assert!(plan.take_kills_due(5).is_empty(), "kills fire once");
        assert_eq!(plan.take_message_faults_due(3), [(0, MsgFault::Drop)]);
        assert!(plan.take_message_faults_due(3).is_empty());
        assert_eq!(plan.pending().len(), 0);
        assert_eq!(plan.fired().len(), 2);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_seed_sensitive() {
        let a = ChaosPlan::from_seed(42, 40, 4);
        let b = ChaosPlan::from_seed(42, 40, 4);
        assert_eq!(a.pending(), b.pending());
        let c = ChaosPlan::from_seed(43, 40, 4);
        assert_ne!(a.pending(), c.pending(), "different seeds must differ");
    }

    #[test]
    fn seeded_plan_kills_within_the_middle_half() {
        for seed in 0..32u64 {
            let plan = ChaosPlan::from_seed(seed, 40, 3);
            let kill = plan
                .pending()
                .iter()
                .find_map(|ev| match *ev {
                    ChaosEvent::KillRank { step, rank } => Some((step, rank)),
                    _ => None,
                })
                .expect("every seeded plan schedules a kill");
            assert!(kill.0 > 40 / 4 && kill.0 <= 40 / 4 + 40 / 2, "{kill:?}");
            assert!(kill.1 < 3);
        }
    }

    #[test]
    fn hang_and_panic_events_round_trip() {
        let mut plan = ChaosPlan::new();
        plan.hang_rank(7, 1, 3).panic_rank(9, 0);
        assert_eq!(plan.take_hangs_due(7), [(1, 3)]);
        assert_eq!(plan.take_panics_due(9), [0]);
    }
}
