//! Rank supervision, buddy checkpointing, and deterministic rank-loss
//! recovery for the distributed LBM.
//!
//! [`ResilientSlabLattice`] wraps [`SlabLattice`] in the fault-tolerance
//! layer a multi-day campaign needs:
//!
//! * **Sealed plane exchange** — ghost planes travel as [`SealedSlab`]
//!   envelopes (epoch + sequence + CRC32) over channels, carrying only
//!   the five D3Q19 populations that actually cross each z-face (pull
//!   streaming reads nothing else from a ghost plane), a 19→5 payload
//!   reduction that keeps the checksum overhead inside the resilience
//!   budget. Validation failures are NACKed and resent from retained
//!   buffers with exponential backoff; exhaustion freezes the ghost and
//!   records a [`HealthIssue::HaloDegraded`] instead of aborting.
//! * **Rank supervision** — every rank's collide/stream runs inside
//!   `catch_unwind`; a panic marks the rank dead instead of tearing down
//!   the process. Per-rank heartbeats (last completed step) detect hung
//!   ranks after a configurable patience.
//! * **Buddy checkpointing** — every `checkpoint_interval` clean steps
//!   each rank serializes its lattice into a CRC-protected checkpoint
//!   container and replicates the blob to its neighbour `(rank+1) % n`.
//! * **Deterministic recovery** — on rank loss the supervisor restores
//!   the dead rank from its buddy replica, rolls *all* ranks back to the
//!   common checkpoint epoch, and replays forward. Because chaos faults
//!   are one-shot and every step is deterministic, the recovered run is
//!   **bit-identical** to a failure-free run — the headline property the
//!   `rank_recovery` integration test asserts at multiple thread counts.

use crate::chaos::ChaosPlan;
use crate::distributed_lbm::SlabLattice;
use crate::envelope::{HaloError, LinkId, SealedSlab};
use crate::halo::HaloConfig;
use apr_guard::{read_lattice, write_lattice, CheckpointReader, CheckpointWriter, GuardError};
use apr_guard::{HealthIssue, HealthReport};
use apr_lattice::{Lattice, SubStep, C};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Tunables for the resilience layer.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Take a buddy checkpoint every this many *clean* steps.
    pub checkpoint_interval: u64,
    /// Recovery budget for the whole run; exceeding it is the only way
    /// the supervisor gives up.
    pub max_recoveries: u32,
    /// Stalled heartbeat steps before a hung rank is declared dead.
    pub hang_patience: u64,
    /// Sealed-exchange protocol tunables (resend budget, timeouts).
    pub halo: HaloConfig,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            checkpoint_interval: 8,
            max_recoveries: 8,
            hang_patience: 2,
            halo: HaloConfig::default(),
        }
    }
}

/// Terminal failures — everything transient is healed internally.
#[derive(Debug)]
pub enum ResilienceError {
    /// The recovery budget ran out.
    RecoveryExhausted {
        /// Step at which the budget was exceeded.
        step: u64,
        /// Recoveries performed.
        recoveries: u32,
    },
    /// A buddy replica failed its container/CRC validation.
    ReplicaCorrupt {
        /// Rank whose replica was damaged.
        rank: usize,
        /// The underlying guard error.
        source: GuardError,
    },
}

impl std::fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResilienceError::RecoveryExhausted { step, recoveries } => {
                write!(
                    f,
                    "recovery budget exhausted at step {step} after {recoveries} recoveries"
                )
            }
            ResilienceError::ReplicaCorrupt { rank, source } => {
                write!(f, "buddy replica for rank {rank} is corrupt: {source}")
            }
        }
    }
}

impl std::error::Error for ResilienceError {}

/// What one supervised step did.
#[derive(Debug, Clone, Default)]
pub struct StepOutcome {
    /// Step completed (1-based).
    pub step: u64,
    /// True when every rank participated and every ghost plane was
    /// filled from a validated message.
    pub clean: bool,
    /// Ghost planes frozen at stale contents this step.
    pub frozen_faces: u32,
    /// Sealed-plane resends this step.
    pub resends: u32,
    /// Ranks restored from buddy replicas before this step ran.
    pub recovered: Vec<usize>,
}

/// One directed sealed-plane link between neighbouring ranks.
struct PlaneLink {
    src: usize,
    dst: usize,
    /// 0 = fills dst's low ghost (plane 0), 1 = fills dst's high ghost.
    tag: u8,
    tx: Sender<SealedSlab>,
    rx: Receiver<SealedSlab>,
    /// Last sealed slab, kept for NACK-driven resend.
    retained: Option<SealedSlab>,
    /// Slab withheld by a Delay fault until the first resend request.
    delayed: Option<SealedSlab>,
}

/// The D3Q19 populations with `c_z == dz` — the only ones a ghost plane
/// on that side must supply to pull streaming.
fn crossing_dirs(dz: i32) -> [usize; 5] {
    let mut out = [0usize; 5];
    let mut k = 0;
    for (i, c) in C.iter().enumerate() {
        if c[2] == dz {
            out[k] = i;
            k += 1;
        }
    }
    assert_eq!(k, 5, "D3Q19 has exactly five populations per z-face");
    out
}

/// [`SlabLattice`] wrapped in sealed halos, rank supervision, buddy
/// checkpoints, and rollback-and-replay recovery.
pub struct ResilientSlabLattice {
    slabs: SlabLattice,
    /// Pristine per-rank lattices (geometry + initial state) used to
    /// respawn a rank before restoring checkpoint state into it.
    templates: Vec<Lattice>,
    cfg: ResilienceConfig,
    chaos: ChaosPlan,
    links: Vec<PlaneLink>,
    dirs_up: [usize; 5],
    dirs_down: [usize; 5],
    /// Steps completed (external count; replay does not inflate it).
    step: u64,
    /// Exchange rounds completed (grows during replay — each exchange is
    /// a genuinely new set of messages).
    rounds: u64,
    /// Step of the last buddy checkpoint (0 = initial state).
    epoch: u64,
    own_ckpt: Vec<Option<Arc<Vec<u8>>>>,
    /// `buddy_ckpt[h]` is the replica of rank `(h + n - 1) % n` that
    /// rank `h` holds in memory for its buddy.
    buddy_ckpt: Vec<Option<Arc<Vec<u8>>>>,
    /// Last step each rank completed (the heartbeat).
    heartbeats: Vec<u64>,
    stalls: Vec<u64>,
    dead: Vec<bool>,
    dead_reason: Vec<&'static str>,
    /// Rank is stalled through this step (0 = running).
    hung_until: Vec<u64>,
    recoveries: u32,
    rollbacks: u64,
    issues: Vec<HealthIssue>,
}

impl ResilientSlabLattice {
    /// Split `global` into `tasks` supervised z-slabs.
    pub fn split(global: &Lattice, tasks: usize, cfg: ResilienceConfig) -> Self {
        let slabs = SlabLattice::split(global, tasks);
        let templates = slabs.locals.clone();
        let mut links = Vec::new();
        for dst in 0..tasks {
            let prev = (dst + tasks - 1) % tasks;
            let next = (dst + 1) % tasks;
            if slabs.ghost_lo(dst) == 1 {
                let (tx, rx) = unbounded();
                links.push(PlaneLink {
                    src: prev,
                    dst,
                    tag: 0,
                    tx,
                    rx,
                    retained: None,
                    delayed: None,
                });
            }
            if slabs.ghost_hi(dst) == 1 {
                let (tx, rx) = unbounded();
                links.push(PlaneLink {
                    src: next,
                    dst,
                    tag: 1,
                    tx,
                    rx,
                    retained: None,
                    delayed: None,
                });
            }
        }
        Self {
            slabs,
            templates,
            cfg,
            chaos: ChaosPlan::new(),
            links,
            dirs_up: crossing_dirs(1),
            dirs_down: crossing_dirs(-1),
            step: 0,
            rounds: 0,
            epoch: 0,
            own_ckpt: vec![None; tasks],
            buddy_ckpt: vec![None; tasks],
            heartbeats: vec![0; tasks],
            stalls: vec![0; tasks],
            dead: vec![false; tasks],
            dead_reason: vec![""; tasks],
            hung_until: vec![0; tasks],
            recoveries: 0,
            rollbacks: 0,
            issues: Vec::new(),
        }
    }

    /// Attach a chaos schedule (tests / chaos CI only).
    pub fn set_chaos(&mut self, plan: ChaosPlan) {
        self.chaos = plan;
    }

    /// The chaos schedule, for post-run assertions.
    pub fn chaos(&self) -> &ChaosPlan {
        &self.chaos
    }

    /// Number of ranks.
    pub fn task_count(&self) -> usize {
        self.slabs.task_count()
    }

    /// Steps completed (external count, unaffected by internal replay).
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Step of the newest buddy checkpoint (0 = initial state).
    pub fn checkpoint_epoch(&self) -> u64 {
        self.epoch
    }

    /// Rollback-and-replay recoveries performed.
    pub fn rollback_count(&self) -> u64 {
        self.rollbacks
    }

    /// Last completed step per rank (the heartbeat vector).
    pub fn heartbeats(&self) -> &[u64] {
        &self.heartbeats
    }

    /// Is `rank` currently dead (lost but not yet recovered)?
    pub fn is_rank_dead(&self, rank: usize) -> bool {
        self.dead[rank]
    }

    /// Every degradation recorded so far, as a sentinel-style report.
    pub fn health_report(&self) -> HealthReport {
        HealthReport {
            step: self.step,
            issues: self.issues.clone(),
        }
    }

    /// Gather the distributed state into a global-shaped lattice.
    pub fn gather(&self, template: &Lattice) -> Lattice {
        self.slabs.gather(template)
    }

    /// Advance one supervised global step.
    ///
    /// Order of operations: chaos arrivals (kill/hang) land first, then
    /// the supervisor recovers any dead rank (restore from buddy, roll
    /// every rank back to the checkpoint epoch, replay), then the step
    /// itself runs — collide, sealed plane exchange, stream — with every
    /// rank under `catch_unwind`. Heartbeats update last; a clean step on
    /// the checkpoint cadence refreshes the buddy checkpoints.
    pub fn step(&mut self) -> Result<StepOutcome, ResilienceError> {
        let target = self.step + 1;
        for rank in self.chaos.take_kills_due(target) {
            self.declare_dead(rank, "killed", target);
        }
        for (rank, lasts) in self.chaos.take_hangs_due(target) {
            self.hung_until[rank] = target + lasts.max(1) - 1;
        }
        let recovered = self.supervise(target)?;
        let mut outcome = StepOutcome {
            step: target,
            clean: true,
            recovered,
            ..StepOutcome::default()
        };
        self.advance_once(Some(&mut outcome));
        // Heartbeats + hung-rank detection. A hung rank's heartbeat
        // stays flat; past the patience it is declared dead and the next
        // step's supervision pass recovers it.
        for r in 0..self.task_count() {
            if self.dead[r] {
                outcome.clean = false;
            } else if self.is_hung(r, target) {
                outcome.clean = false;
                self.stalls[r] += 1;
                if self.stalls[r] >= self.cfg.hang_patience {
                    self.declare_dead(r, "hung", target);
                }
            } else {
                self.heartbeats[r] = target;
                self.stalls[r] = 0;
            }
        }
        if outcome.frozen_faces > 0 {
            outcome.clean = false;
        }
        if outcome.clean && target.is_multiple_of(self.cfg.checkpoint_interval) {
            self.take_checkpoints(target);
        }
        Ok(outcome)
    }

    fn is_hung(&self, rank: usize, step: u64) -> bool {
        self.hung_until[rank] >= step
    }

    fn declare_dead(&mut self, rank: usize, reason: &'static str, step: u64) {
        if self.dead[rank] {
            return;
        }
        self.dead[rank] = true;
        self.dead_reason[rank] = reason;
        // A killed process's hang is over; the respawn starts clean.
        self.hung_until[rank] = 0;
        self.stalls[rank] = 0;
        self.issues.push(HealthIssue::RankLost { rank });
        apr_telemetry::counter_add("resilience.rank_down", 1);
        apr_telemetry::emit(apr_telemetry::TelemetryEvent::RankDown {
            step,
            rank: rank as u32,
            reason,
        });
    }

    /// Bring every rank back alive and the global state to `target - 1`.
    /// Loops because a replayed step could in principle lose another rank.
    fn supervise(&mut self, target: u64) -> Result<Vec<usize>, ResilienceError> {
        if !self.dead.iter().any(|&d| d) {
            return Ok(Vec::new());
        }
        let mut recovered = Vec::new();
        loop {
            let lost: Vec<usize> = (0..self.task_count()).filter(|&r| self.dead[r]).collect();
            if lost.is_empty() {
                if self.step >= target - 1 {
                    return Ok(recovered);
                }
                // Replay toward the failure point; chaos already consumed
                // its one-shot entries, so these steps run clean.
                self.advance_once(None);
                let step = self.step;
                for r in 0..self.task_count() {
                    if !self.dead[r] && !self.is_hung(r, step) {
                        self.heartbeats[r] = step;
                    }
                }
                continue;
            }
            self.recoveries += 1;
            if self.recoveries > self.cfg.max_recoveries {
                return Err(ResilienceError::RecoveryExhausted {
                    step: target,
                    recoveries: self.recoveries,
                });
            }
            self.restore_all_to_epoch(&lost, target)?;
            recovered.extend(lost);
        }
    }

    /// Respawn every lost rank from its buddy replica and roll all ranks
    /// back to the common checkpoint epoch.
    fn restore_all_to_epoch(
        &mut self,
        lost: &[usize],
        detect_step: u64,
    ) -> Result<(), ResilienceError> {
        let n = self.task_count();
        for &r in lost {
            // The buddy of rank r is (r+1) % n; it holds r's replica in
            // its memory. If the buddy died in the same incident the
            // replica is gone — degrade to the pristine initial state
            // (epoch 0) for everyone rather than aborting.
            let holder = (r + 1) % n;
            let replica_lost = self.dead[holder] && self.buddy_ckpt[holder].is_none();
            if replica_lost {
                self.epoch = 0;
                self.own_ckpt = vec![None; n];
                self.buddy_ckpt = vec![None; n];
                apr_telemetry::counter_add("resilience.full_restarts", 1);
                break;
            }
        }
        for r in 0..n {
            let blob = if self.dead[r] {
                self.buddy_ckpt[(r + 1) % n].clone()
            } else {
                self.own_ckpt[r].clone()
            };
            self.restore_rank(r, blob.as_ref().map(|b| b.as_slice()))?;
            if self.dead[r] {
                apr_telemetry::emit(apr_telemetry::TelemetryEvent::RankRestored {
                    step: detect_step,
                    rank: r as u32,
                    restored_epoch: self.epoch,
                });
            }
            self.dead[r] = false;
            self.dead_reason[r] = "";
            self.hung_until[r] = 0;
            self.stalls[r] = 0;
            self.heartbeats[r] = self.epoch;
        }
        // Drain any in-flight slabs from the abandoned timeline so the
        // replay's exchanges cannot observe stale messages.
        for link in &mut self.links {
            while link.rx.try_recv().is_ok() {}
            link.retained = None;
            link.delayed = None;
        }
        self.step = self.epoch;
        self.rollbacks += 1;
        apr_telemetry::counter_add("resilience.rollbacks", 1);
        Ok(())
    }

    /// Rebuild rank `r` from its pristine template, then overlay the
    /// checkpointed state (when a checkpoint exists).
    fn restore_rank(&mut self, r: usize, blob: Option<&[u8]>) -> Result<(), ResilienceError> {
        let mut fresh = self.templates[r].clone();
        if let Some(blob) = blob {
            let wrap = |source: GuardError| ResilienceError::ReplicaCorrupt { rank: r, source };
            let reader = CheckpointReader::parse(blob).map_err(wrap)?;
            let mut section = reader.require("lattice").map_err(wrap)?;
            read_lattice(&mut fresh, &mut section).map_err(wrap)?;
        }
        self.slabs.locals[r] = fresh;
        Ok(())
    }

    /// Serialize every rank into a guard checkpoint container and
    /// replicate each blob to the rank's buddy.
    fn take_checkpoints(&mut self, step: u64) {
        let n = self.task_count();
        // Each rank serializes its own state concurrently — exactly what a
        // per-process runtime does — and the per-rank blobs are
        // independent, so parallelism cannot perturb their contents.
        let locals = &self.slabs.locals;
        let blobs = apr_exec::current()
            .par_map_reduce(
                n,
                1,
                |r, _| {
                    let mut meta = apr_guard::ByteWriter::new();
                    meta.usize(r);
                    meta.u64(step);
                    let mut w = CheckpointWriter::new();
                    w.section("meta", meta.into_bytes());
                    w.section("lattice", write_lattice(&locals[r]));
                    vec![Arc::new(w.finish())]
                },
                |mut a, b| {
                    a.extend(b);
                    a
                },
            )
            .expect("at least one rank");
        let mut total = 0u64;
        for (r, blob) in blobs.into_iter().enumerate() {
            total += blob.len() as u64;
            // The blob is immutable from birth, so the buddy replica can
            // share it — in a networked runtime this would be the transfer
            // to the neighbour's memory.
            self.own_ckpt[r] = Some(Arc::clone(&blob));
            self.buddy_ckpt[(r + 1) % n] = Some(blob);
        }
        self.epoch = step;
        apr_telemetry::counter_add("resilience.buddy_checkpoints", n as u64);
        apr_telemetry::emit(apr_telemetry::TelemetryEvent::CheckpointSaved { step, bytes: total });
    }

    /// Run one collide → exchange → stream cycle over the current rank
    /// population. Dead and hung ranks are skipped; panics are contained
    /// per rank. Counters land in `outcome` when provided (supervision
    /// replays pass `None`).
    fn advance_once(&mut self, outcome: Option<&mut StepOutcome>) {
        let target = self.step + 1;
        let n = self.task_count();
        let panics = self.chaos.take_panics_due(target);
        let mut participating = vec![false; n];
        for (r, part) in participating.iter_mut().enumerate() {
            if self.dead[r] || self.is_hung(r, target) {
                continue;
            }
            let inject = panics.contains(&r);
            let local = &mut self.slabs.locals[r];
            let result = catch_unwind(AssertUnwindSafe(|| {
                if inject {
                    panic!("injected chaos panic");
                }
                local.advance(SubStep::Collide);
            }));
            match result {
                Ok(()) => *part = true,
                Err(_) => self.declare_dead(r, "panicked", target),
            }
        }
        let (frozen, resends) = self.exchange_planes(&participating);
        if let Some(out) = outcome {
            out.frozen_faces += frozen;
            out.resends += resends;
        }
        for (r, &part) in participating.iter().enumerate() {
            if !part {
                continue;
            }
            let local = &mut self.slabs.locals[r];
            let result = catch_unwind(AssertUnwindSafe(|| {
                local.advance(SubStep::Stream);
            }));
            if result.is_err() {
                self.declare_dead(r, "panicked", target);
            }
        }
        self.step = target;
    }

    /// Sealed, NACK-healing exchange of the crossing populations of every
    /// cut plane. `participating[r]` is false for ranks that did not
    /// collide this step (dead/hung): their outgoing planes are not sent
    /// and their neighbours' ghosts freeze.
    fn exchange_planes(&mut self, participating: &[bool]) -> (u32, u32) {
        let n = self.task_count();
        if n == 1 {
            return (0, 0);
        }
        let round = self.rounds;
        self.rounds += 1;
        let faults = self.chaos.take_message_faults_due(round);
        let mut frozen = 0u32;
        let mut resends = 0u32;
        // Send phase: seal and post every plane whose sender is alive.
        let mut bytes = 0u64;
        for li in 0..self.links.len() {
            let (src, dst, tag) = {
                let l = &self.links[li];
                (l.src, l.dst, l.tag)
            };
            if !participating[src] || !participating[dst] {
                continue;
            }
            let payload = self.extract_crossing(src, tag);
            let link_id = LinkId {
                src: src as u32,
                dst: dst as u32,
                tag,
            };
            let slab = SealedSlab::seal(link_id, round, round, payload);
            bytes += slab.byte_len() as u64;
            let link = &mut self.links[li];
            link.retained = Some(slab.clone());
            match faults
                .iter()
                .find(|&&(rank, _)| rank == src)
                .map(|&(_, f)| f)
            {
                Some(crate::chaos::MsgFault::Drop) => {}
                Some(crate::chaos::MsgFault::Delay) => link.delayed = Some(slab),
                Some(crate::chaos::MsgFault::Corrupt) => {
                    let mut bad = slab;
                    bad.corrupt_in_place();
                    let _ = link.tx.send(bad);
                }
                None => {
                    let _ = link.tx.send(slab);
                }
            }
        }
        apr_telemetry::counter_add("halo.bytes", bytes);
        // Receive + heal phase, per link.
        for li in 0..self.links.len() {
            let (src, dst, tag) = {
                let l = &self.links[li];
                (l.src, l.dst, l.tag)
            };
            if !participating[dst] {
                continue;
            }
            if !participating[src] {
                // Peer dead or stalled: no message will ever come. Freeze
                // the ghost at its previous contents and flag it.
                frozen += 1;
                self.record_degraded(dst, tag, HaloError::PeerDead { rank: src });
                continue;
            }
            let expected_len = self.slabs.locals[dst].nx * self.slabs.locals[dst].ny * 5;
            let mut attempt = 0u32;
            let healed = loop {
                let received = {
                    let link = &self.links[li];
                    match link.rx.try_recv() {
                        Ok(slab) => Some(slab),
                        Err(_) => link.rx.recv_timeout(self.cfg.halo.recv_timeout).ok(),
                    }
                };
                let verdict = match received {
                    Some(slab) => match slab.verify(round, expected_len) {
                        Ok(()) => {
                            self.insert_crossing(dst, tag, &slab.payload);
                            break true;
                        }
                        // Stale epoch from the abandoned timeline or a
                        // duplicate resend: discard and re-receive.
                        Err(HaloError::Reordered { got_epoch, .. }) if got_epoch < round => {
                            continue;
                        }
                        Err(err) => err,
                    },
                    None => HaloError::Timeout {
                        link: LinkId {
                            src: src as u32,
                            dst: dst as u32,
                            tag,
                        },
                    },
                };
                if attempt >= self.cfg.halo.max_resends {
                    self.record_degraded(dst, tag, verdict);
                    break false;
                }
                attempt += 1;
                // NACK: re-request from the sender's retained buffer. A
                // delayed slab finally leaves its stash here.
                let link = &mut self.links[li];
                let resend = link.delayed.take().or_else(|| link.retained.clone());
                if let Some(slab) = resend {
                    let _ = link.tx.send(slab);
                    resends += 1;
                    apr_telemetry::counter_add("halo.resends", 1);
                    apr_telemetry::emit(apr_telemetry::TelemetryEvent::HaloResend {
                        round,
                        attempt,
                        messages: 1,
                    });
                }
                std::thread::sleep(self.cfg.halo.backoff_base * (1 << (attempt - 1).min(10)));
            };
            if !healed {
                frozen += 1;
            }
        }
        if frozen > 0 {
            apr_telemetry::counter_add("halo.frozen_ghosts", frozen as u64);
        }
        (frozen, resends)
    }

    fn record_degraded(&mut self, rank: usize, tag: u8, err: HaloError) {
        apr_telemetry::emit(apr_telemetry::TelemetryEvent::SentinelTrip {
            step: self.step + 1,
            issues: 1,
            first_kind: "halo_degraded",
        });
        let _ = err;
        self.issues.push(HealthIssue::HaloDegraded {
            rank,
            frozen_faces: 1 << tag,
        });
    }

    /// Extract the crossing populations of the boundary plane that feeds
    /// the link's ghost. `tag` 0 fills the receiver's low ghost, so the
    /// sender contributes its *high* boundary and the `c_z = +1` set.
    fn extract_crossing(&self, src: usize, tag: u8) -> Vec<f64> {
        let local = &self.slabs.locals[src];
        let (z, dirs) = if tag == 0 {
            (local.nz - 1 - self.slabs.ghost_hi(src), self.dirs_up)
        } else {
            (self.slabs.ghost_lo(src), self.dirs_down)
        };
        let mut out = Vec::with_capacity(local.nx * local.ny * 5);
        for y in 0..local.ny {
            for x in 0..local.nx {
                let node = local.idx(x, y, z);
                for &i in &dirs {
                    out.push(local.distribution(node, i));
                }
            }
        }
        out
    }

    /// Write a validated crossing payload into the receiver's ghost plane.
    fn insert_crossing(&mut self, dst: usize, tag: u8, payload: &[f64]) {
        let local = &mut self.slabs.locals[dst];
        let (z, dirs) = if tag == 0 {
            (0, self.dirs_up)
        } else {
            (local.nz - 1, self.dirs_down)
        };
        let mut it = payload.iter();
        for y in 0..local.ny {
            for x in 0..local.nx {
                let node = local.idx(x, y, z);
                for &i in &dirs {
                    local.set_distribution(node, i, *it.next().unwrap());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_lattice::{Boundary, NodeClass, Q};

    fn poiseuille_global() -> Lattice {
        let mut lat = Lattice::new(5, 8, 12, 0.9);
        lat.periodic = [true, false, true];
        lat.body_force = [0.0, 0.0, 2e-6];
        for z in 0..lat.nz {
            for x in 0..lat.nx {
                let bottom = lat.idx(x, 0, z);
                lat.set_boundary(bottom, Boundary::Wall);
                let top = lat.idx(x, lat.ny - 1, z);
                lat.set_boundary(top, Boundary::Wall);
            }
        }
        lat
    }

    fn assert_bit_identical(a: &Lattice, b: &Lattice) {
        for node in 0..a.node_count() {
            if a.flag(node) != NodeClass::Fluid {
                continue;
            }
            let fa = a.distributions(node);
            let fb = b.distributions(node);
            for i in 0..Q {
                assert!(
                    fa[i].to_bits() == fb[i].to_bits(),
                    "node {node} dir {i}: {} vs {}",
                    fa[i],
                    fb[i]
                );
            }
        }
    }

    #[test]
    fn sealed_compact_exchange_matches_single_lattice() {
        // The 5-population sealed exchange must carry the physics exactly
        // like the full 19-population reference path.
        let mut reference = poiseuille_global();
        let mut res = ResilientSlabLattice::split(&reference, 3, ResilienceConfig::default());
        for _ in 0..40 {
            reference.step();
            let out = res.step().unwrap();
            assert!(out.clean, "{out:?}");
        }
        let gathered = res.gather(&reference);
        for node in 0..reference.node_count() {
            if reference.flag(node) != NodeClass::Fluid {
                continue;
            }
            let fa = reference.distributions(node);
            let fb = gathered.distributions(node);
            for i in 0..Q {
                assert!(
                    (fa[i] - fb[i]).abs() < 1e-13,
                    "node {node} dir {i}: {} vs {}",
                    fa[i],
                    fb[i]
                );
            }
        }
    }

    #[test]
    fn checkpoints_follow_the_clean_cadence() {
        let global = poiseuille_global();
        let mut res = ResilientSlabLattice::split(&global, 2, ResilienceConfig::default());
        for _ in 0..17 {
            res.step().unwrap();
        }
        assert_eq!(res.checkpoint_epoch(), 16);
        assert_eq!(res.rollback_count(), 0);
        assert!(res.health_report().is_healthy());
    }

    #[test]
    fn killed_rank_recovers_bit_identically() {
        let global = poiseuille_global();
        let steps = 30;
        // Failure-free reference run.
        let mut clean = ResilientSlabLattice::split(&global, 3, ResilienceConfig::default());
        for _ in 0..steps {
            clean.step().unwrap();
        }
        // Chaos run: rank 1 dies at step 13 (mid-interval, so rollback
        // really has to replay).
        let mut chaotic = ResilientSlabLattice::split(&global, 3, ResilienceConfig::default());
        let mut plan = ChaosPlan::new();
        plan.kill_rank(13, 1);
        chaotic.set_chaos(plan);
        let mut recovered_ranks = Vec::new();
        for _ in 0..steps {
            let out = chaotic.step().unwrap();
            recovered_ranks.extend(out.recovered);
        }
        assert_eq!(recovered_ranks, [1]);
        assert_eq!(chaotic.rollback_count(), 1);
        assert_bit_identical(&clean.gather(&global), &chaotic.gather(&global));
    }

    #[test]
    fn panicking_rank_is_contained_and_recovered() {
        let global = poiseuille_global();
        let steps = 24;
        let mut clean = ResilientSlabLattice::split(&global, 2, ResilienceConfig::default());
        for _ in 0..steps {
            clean.step().unwrap();
        }
        let mut chaotic = ResilientSlabLattice::split(&global, 2, ResilienceConfig::default());
        let mut plan = ChaosPlan::new();
        plan.panic_rank(11, 0);
        chaotic.set_chaos(plan);
        for _ in 0..steps {
            chaotic.step().unwrap();
        }
        assert_eq!(chaotic.rollback_count(), 1);
        assert_bit_identical(&clean.gather(&global), &chaotic.gather(&global));
    }

    #[test]
    fn hung_rank_is_detected_by_heartbeat_and_recovered() {
        let global = poiseuille_global();
        let steps = 28;
        let mut clean = ResilientSlabLattice::split(&global, 2, ResilienceConfig::default());
        for _ in 0..steps {
            clean.step().unwrap();
        }
        let mut chaotic = ResilientSlabLattice::split(&global, 2, ResilienceConfig::default());
        let mut plan = ChaosPlan::new();
        plan.hang_rank(10, 1, 5);
        chaotic.set_chaos(plan);
        let mut saw_unclean = false;
        for _ in 0..steps {
            let out = chaotic.step().unwrap();
            saw_unclean |= !out.clean;
        }
        assert!(saw_unclean, "the stall period must be visible");
        assert_eq!(chaotic.rollback_count(), 1);
        // The degradation was recorded, then healed by rollback.
        assert!(!chaotic.health_report().is_healthy());
        assert_bit_identical(&clean.gather(&global), &chaotic.gather(&global));
    }

    #[test]
    fn message_faults_heal_in_round_and_stay_bit_identical() {
        let global = poiseuille_global();
        let steps = 20;
        let mut clean = ResilientSlabLattice::split(&global, 2, ResilienceConfig::default());
        for _ in 0..steps {
            clean.step().unwrap();
        }
        let mut chaotic = ResilientSlabLattice::split(&global, 2, ResilienceConfig::default());
        let mut plan = ChaosPlan::new();
        plan.message_fault(3, 0, crate::chaos::MsgFault::Drop);
        plan.message_fault(5, 1, crate::chaos::MsgFault::Corrupt);
        plan.message_fault(8, 0, crate::chaos::MsgFault::Delay);
        chaotic.set_chaos(plan);
        let mut resends = 0;
        for _ in 0..steps {
            resends += chaotic.step().unwrap().resends;
        }
        assert!(resends >= 3, "each fault needs at least one resend");
        assert_eq!(chaotic.rollback_count(), 0, "message faults heal in-round");
        assert_bit_identical(&clean.gather(&global), &chaotic.gather(&global));
    }

    #[test]
    fn recovery_budget_exhaustion_is_a_typed_error() {
        let global = poiseuille_global();
        let cfg = ResilienceConfig {
            max_recoveries: 1,
            ..Default::default()
        };
        let mut res = ResilientSlabLattice::split(&global, 2, cfg);
        let mut plan = ChaosPlan::new();
        plan.kill_rank(3, 0).kill_rank(6, 1);
        res.set_chaos(plan);
        let mut err = None;
        for _ in 0..12 {
            match res.step() {
                Ok(_) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(
            err,
            Some(ResilienceError::RecoveryExhausted { .. })
        ));
    }

    #[test]
    fn seeded_chaos_plan_runs_to_completion() {
        let global = poiseuille_global();
        for seed in [7u64, 99, 1234] {
            let steps = 32;
            let mut clean = ResilientSlabLattice::split(&global, 3, ResilienceConfig::default());
            for _ in 0..steps {
                clean.step().unwrap();
            }
            let mut chaotic = ResilientSlabLattice::split(&global, 3, ResilienceConfig::default());
            chaotic.set_chaos(ChaosPlan::from_seed(seed, steps, 3));
            for _ in 0..steps {
                chaotic.step().unwrap();
            }
            assert!(
                chaotic.rollback_count() >= 1,
                "seed {seed} must kill a rank"
            );
            assert_bit_identical(&clean.gather(&global), &chaotic.gather(&global));
        }
    }
}
