//! Task scheduling across nodes (paper §2.4.4).
//!
//! Builds the full rank layout for a run: bulk blocks onto CPU tasks and
//! window blocks onto GPU tasks, each task pinned to a node in round-robin
//! node order so every node carries its 36:6 share of both domains.

use crate::decomp::BlockDecomposition;
use crate::device::{Device, NodeConfig, Task};

/// Complete task schedule for a coupled bulk/window run.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Node hardware shape.
    pub config: NodeConfig,
    /// Number of nodes.
    pub nodes: usize,
    /// Bulk-domain (CPU) tasks.
    pub bulk_tasks: Vec<Task>,
    /// Window-domain (GPU) tasks.
    pub window_tasks: Vec<Task>,
    /// Bulk decomposition used.
    pub bulk_decomp: BlockDecomposition,
    /// Window decomposition used.
    pub window_decomp: BlockDecomposition,
}

impl Schedule {
    /// Schedule a run over `nodes` nodes: the bulk lattice `bulk_dims` on
    /// `nodes·cpu_tasks` CPU ranks and the window lattice `window_dims` on
    /// `nodes·gpu_tasks` GPU ranks.
    pub fn build(
        config: NodeConfig,
        nodes: usize,
        bulk_dims: [usize; 3],
        window_dims: [usize; 3],
    ) -> Self {
        assert!(nodes > 0, "need at least one node");
        let bulk_decomp = BlockDecomposition::new(bulk_dims, nodes * config.cpu_tasks);
        let window_decomp = BlockDecomposition::new(window_dims, nodes * config.gpu_tasks);
        let bulk_tasks = bulk_decomp
            .blocks
            .iter()
            .enumerate()
            .map(|(i, &block)| Task {
                id: i,
                node: i % nodes,
                device: Device::Cpu,
                block,
            })
            .collect();
        let offset = bulk_decomp.task_count();
        let window_tasks = window_decomp
            .blocks
            .iter()
            .enumerate()
            .map(|(i, &block)| Task {
                id: offset + i,
                node: i % nodes,
                device: Device::Gpu,
                block,
            })
            .collect();
        Self {
            config,
            nodes,
            bulk_tasks,
            window_tasks,
            bulk_decomp,
            window_decomp,
        }
    }

    /// Total task count.
    pub fn task_count(&self) -> usize {
        self.bulk_tasks.len() + self.window_tasks.len()
    }

    /// Tasks hosted on a given node.
    pub fn tasks_on_node(&self, node: usize) -> Vec<&Task> {
        self.bulk_tasks
            .iter()
            .chain(&self.window_tasks)
            .filter(|t| t.node == node)
            .collect()
    }

    /// Maximum bulk nodes owned by any single CPU task (load bound).
    pub fn max_bulk_load(&self) -> usize {
        self.bulk_decomp.max_block_volume()
    }

    /// Maximum window nodes owned by any single GPU task.
    pub fn max_window_load(&self) -> usize {
        self.window_decomp.max_block_volume()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_schedule_has_paper_rank_counts() {
        // Paper §3.5: 256 nodes → "1536 v100 GPUs and 10752 Power9 CPUs".
        // 10752 counts CPU *cores* (42/node); ranks split 36 bulk + 6 GPU.
        let s = Schedule::build(NodeConfig::SUMMIT, 256, [512, 512, 512], [128, 128, 128]);
        assert_eq!(s.bulk_tasks.len(), 256 * 36);
        assert_eq!(s.window_tasks.len(), 1_536);
        assert_eq!(s.task_count(), 10_752);
    }

    #[test]
    fn every_node_hosts_its_share() {
        let s = Schedule::build(NodeConfig::SUMMIT, 4, [64, 64, 64], [32, 32, 32]);
        for node in 0..4 {
            let tasks = s.tasks_on_node(node);
            let cpus = tasks.iter().filter(|t| t.device == Device::Cpu).count();
            let gpus = tasks.iter().filter(|t| t.device == Device::Gpu).count();
            assert_eq!(cpus, 36, "node {node}");
            assert_eq!(gpus, 6, "node {node}");
        }
    }

    #[test]
    fn task_ids_are_globally_unique() {
        let s = Schedule::build(NodeConfig::SUMMIT, 2, [48, 48, 48], [24, 24, 24]);
        let mut ids: Vec<usize> = s
            .bulk_tasks
            .iter()
            .chain(&s.window_tasks)
            .map(|t| t.id)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), s.task_count());
    }

    #[test]
    fn blocks_cover_domains() {
        let s = Schedule::build(NodeConfig::SUMMIT, 1, [40, 40, 40], [20, 20, 20]);
        let bulk: usize = s.bulk_tasks.iter().map(|t| t.block.volume()).sum();
        let window: usize = s.window_tasks.iter().map(|t| t.block.volume()).sum();
        assert_eq!(bulk, 40 * 40 * 40);
        assert_eq!(window, 20 * 20 * 20);
    }
}
