//! Distributed LBM: the bulk solver running over multiple task-local
//! lattices with ghost-layer exchange — the shared-memory equivalent of
//! HARVEY's MPI decomposition (paper §2.4.4).
//!
//! Each task owns a slab of the global domain plus a one-node ghost layer
//! on each cut face. Per step: **collide** locally, **exchange**
//! post-collision distributions into neighbours' ghosts, **stream** locally
//! (pull reaches into the ghosts). The result is bit-identical to a single
//! global lattice — the equivalence test at the bottom is the proof the
//! halo protocol carries the physics.

use crate::envelope::HaloError;
use apr_lattice::{Lattice, SubStep, Q};

/// A z-slab decomposition of a global lattice into task-local lattices.
///
/// Slabs are cut along z (the long axis of tube/channel flows); each local
/// lattice is the owned slab plus one ghost plane on each cut face. The
/// global domain may be periodic in z (slab 0 neighbours the last slab).
pub struct SlabLattice {
    /// Task-local lattices (owned slab + ghost planes).
    pub locals: Vec<Lattice>,
    /// Owned z-range (global coordinates) per task: `[lo, hi)`.
    pub ranges: Vec<(usize, usize)>,
    /// Global z extent.
    pub global_nz: usize,
    /// Is the global domain periodic in z?
    pub periodic_z: bool,
}

impl SlabLattice {
    /// Split `global` into `tasks` z-slabs. The global lattice provides the
    /// initial state, flags and parameters. Slabs must be at least 2 nodes
    /// thick. Global x/y periodicity carries over; z cuts are replaced by
    /// ghost exchange.
    ///
    /// # Panics
    /// Panics if any slab would be thinner than 2 nodes.
    pub fn split(global: &Lattice, tasks: usize) -> Self {
        assert!(tasks >= 1);
        let nz = global.nz;
        let mut locals = Vec::with_capacity(tasks);
        let mut ranges = Vec::with_capacity(tasks);
        for t in 0..tasks {
            let lo = nz * t / tasks;
            let hi = nz * (t + 1) / tasks;
            assert!(hi - lo >= 2, "slab {t} too thin: {}", hi - lo);
            ranges.push((lo, hi));
            // Local extent: owned + ghost planes on faces that have a
            // neighbouring slab (domain edges keep their bounce-back role).
            let ghost_lo = usize::from(tasks > 1 && (t > 0 || global.periodic[2]));
            let ghost_hi = usize::from(tasks > 1 && (t + 1 < tasks || global.periodic[2]));
            let local_nz = (hi - lo) + ghost_lo + ghost_hi;
            let mut local = Lattice::new(global.nx, global.ny, local_nz, global.tau);
            // Halo exchange reads/writes distribution planes between the
            // collide and stream halves, which requires naturally-ordered
            // storage — pin the reference kernel regardless of APR_KERNEL.
            local.set_kernel(Some(apr_lattice::KernelKind::Reference));
            local.periodic = [
                global.periodic[0],
                global.periodic[1],
                global.periodic[2] && tasks == 1,
            ];
            local.body_force = global.body_force;
            // Copy flags + state for owned and ghost planes (wrapping z).
            for lz in 0..local_nz {
                let gz_signed = lo as i64 + lz as i64 - ghost_lo as i64;
                let gz = ((gz_signed % nz as i64) + nz as i64) % nz as i64;
                for y in 0..global.ny {
                    for x in 0..global.nx {
                        let g = global.idx(x, y, gz as usize);
                        let l = local.idx(x, y, lz);
                        local.set_flag(l, global.flag(g));
                        let mut fs = [0.0; Q];
                        fs.copy_from_slice(global.distributions(g));
                        local.set_distributions(l, &fs);
                        local.set_tau_at(l, global.tau_at(g));
                    }
                }
            }
            locals.push(local);
        }
        Self {
            locals,
            ranges,
            global_nz: nz,
            periodic_z: global.periodic[2],
        }
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.locals.len()
    }

    /// Does task `t` carry a low-side (plane 0) ghost layer?
    pub(crate) fn ghost_lo(&self, t: usize) -> usize {
        usize::from(self.task_count() > 1 && (t > 0 || self.periodic_z))
    }

    /// Does task `t` carry a high-side (plane `nz-1`) ghost layer?
    pub(crate) fn ghost_hi(&self, t: usize) -> usize {
        let tasks = self.task_count();
        usize::from(tasks > 1 && (t + 1 < tasks || self.periodic_z))
    }

    fn exchange_ghosts(&mut self) -> Result<(), HaloError> {
        let tasks = self.task_count();
        if tasks == 1 {
            return Ok(());
        }
        // Gather owned boundary planes (post-collision).
        let mut low_planes = Vec::with_capacity(tasks);
        let mut high_planes = Vec::with_capacity(tasks);
        for (t, local) in self.locals.iter().enumerate() {
            low_planes.push(extract_plane(local, self.ghost_lo(t)));
            high_planes.push(extract_plane(local, local.nz - 1 - self.ghost_hi(t)));
        }
        for t in 0..tasks {
            // Fill my low ghost (plane 0) from the previous task's high
            // boundary, my high ghost from the next task's low boundary.
            let prev = (t + tasks - 1) % tasks;
            let next = (t + 1) % tasks;
            if self.ghost_lo(t) == 1 {
                let plane = high_planes[prev].clone();
                insert_plane(&mut self.locals[t], 0, &plane)?;
            }
            if self.ghost_hi(t) == 1 {
                let plane = low_planes[next].clone();
                let z = self.locals[t].nz - 1;
                insert_plane(&mut self.locals[t], z, &plane)?;
            }
        }
        Ok(())
    }

    /// Advance one global step: collide everywhere, exchange ghosts, stream.
    ///
    /// An `Err` indicates a malformed ghost plane (wrong size for the
    /// slab geometry) — a protocol bug surfaced as a typed error rather
    /// than a panic mid-step.
    pub fn step(&mut self) -> Result<(), HaloError> {
        // Rank scopes tag any telemetry recorded inside the per-rank work
        // (kernel spans, exec regions) with the owning rank, which is what
        // lets the critical-path analyzer attribute imbalance.
        for (rank, local) in self.locals.iter_mut().enumerate() {
            let _rank = apr_telemetry::rank_scope(rank as u32);
            local.advance(SubStep::Collide);
        }
        self.exchange_ghosts()?;
        for (rank, local) in self.locals.iter_mut().enumerate() {
            let _rank = apr_telemetry::rank_scope(rank as u32);
            local.advance(SubStep::Stream);
        }
        Ok(())
    }

    /// Gather the distributed state back into a global-shaped lattice
    /// (flags copied from owned planes; ghosts dropped).
    pub fn gather(&self, template: &Lattice) -> Lattice {
        let mut out = template.clone();
        let tasks = self.task_count();
        for (t, local) in self.locals.iter().enumerate() {
            let ghost = usize::from(tasks > 1 && (t > 0 || self.periodic_z));
            let (lo, hi) = self.ranges[t];
            for gz in lo..hi {
                let lz = gz - lo + ghost;
                for y in 0..local.ny {
                    for x in 0..local.nx {
                        let l = local.idx(x, y, lz);
                        let g = out.idx(x, y, gz);
                        let mut fs = [0.0; Q];
                        fs.copy_from_slice(local.distributions(l));
                        out.set_distributions(g, &fs);
                        out.rho[g] = local.rho[l];
                        for a in 0..3 {
                            out.vel[g * 3 + a] = local.vel[l * 3 + a];
                        }
                    }
                }
            }
        }
        out
    }
}

pub(crate) fn extract_plane(lat: &Lattice, z: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(lat.nx * lat.ny * Q);
    for y in 0..lat.ny {
        for x in 0..lat.nx {
            out.extend_from_slice(lat.distributions(lat.idx(x, y, z)));
        }
    }
    out
}

pub(crate) fn insert_plane(lat: &mut Lattice, z: usize, plane: &[f64]) -> Result<(), HaloError> {
    let expected = lat.nx * lat.ny * Q;
    if plane.len() != expected {
        return Err(HaloError::SizeMismatch {
            link: crate::envelope::LinkId {
                src: u32::MAX,
                dst: u32::MAX,
                tag: z.min(u8::MAX as usize) as u8,
            },
            expected,
            got: plane.len(),
        });
    }
    let mut it = plane.chunks_exact(Q);
    for y in 0..lat.ny {
        for x in 0..lat.nx {
            let mut fs = [0.0; Q];
            // Length was validated above; chunks_exact cannot run short.
            fs.copy_from_slice(it.next().unwrap());
            let node = lat.idx(x, y, z);
            lat.set_distributions(node, &fs);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_lattice::{Boundary, NodeClass};

    fn poiseuille_global() -> Lattice {
        // Walls in y, periodic x and z, force along z.
        let mut lat = Lattice::new(5, 10, 12, 0.9);
        lat.periodic = [true, false, true];
        lat.body_force = [0.0, 0.0, 2e-6];
        for z in 0..lat.nz {
            for x in 0..lat.nx {
                let bottom = lat.idx(x, 0, z);
                lat.set_boundary(bottom, Boundary::Wall);
                let top = lat.idx(x, lat.ny - 1, z);
                lat.set_boundary(top, Boundary::Wall);
            }
        }
        lat
    }

    fn assert_states_match(a: &Lattice, b: &Lattice, tol: f64) {
        for node in 0..a.node_count() {
            if a.flag(node) != NodeClass::Fluid {
                continue;
            }
            let fa = a.distributions(node);
            let fb = b.distributions(node);
            for i in 0..Q {
                assert!(
                    (fa[i] - fb[i]).abs() < tol,
                    "node {node} dir {i}: {} vs {}",
                    fa[i],
                    fb[i]
                );
            }
        }
    }

    #[test]
    fn two_slabs_match_single_lattice_exactly() {
        let mut reference = poiseuille_global();
        let mut slabs = SlabLattice::split(&reference, 2);
        for _ in 0..60 {
            reference.step();
            slabs.step().unwrap();
        }
        let gathered = slabs.gather(&reference);
        assert_states_match(&reference, &gathered, 1e-13);
    }

    #[test]
    fn four_slabs_match_single_lattice_exactly() {
        let mut reference = poiseuille_global();
        let mut slabs = SlabLattice::split(&reference, 4);
        for _ in 0..60 {
            reference.step();
            slabs.step().unwrap();
        }
        let gathered = slabs.gather(&reference);
        assert_states_match(&reference, &gathered, 1e-13);
    }

    #[test]
    fn single_task_degenerates_to_plain_lattice() {
        let mut reference = poiseuille_global();
        let mut slabs = SlabLattice::split(&reference, 1);
        for _ in 0..30 {
            reference.step();
            slabs.step().unwrap();
        }
        let gathered = slabs.gather(&reference);
        assert_states_match(&reference, &gathered, 1e-14);
    }

    #[test]
    fn nonperiodic_z_with_walls_matches() {
        // Duct closed in y and z (walls all around except x), force in x.
        let mut lat = Lattice::new(6, 8, 12, 0.9);
        lat.periodic = [true, false, false];
        lat.body_force = [2e-6, 0.0, 0.0];
        for z in 0..lat.nz {
            for x in 0..lat.nx {
                let b = lat.idx(x, 0, z);
                lat.set_boundary(b, Boundary::Wall);
                let t = lat.idx(x, lat.ny - 1, z);
                lat.set_boundary(t, Boundary::Wall);
            }
        }
        for y in 0..lat.ny {
            for x in 0..lat.nx {
                let b = lat.idx(x, y, 0);
                lat.set_boundary(b, Boundary::Wall);
                let t = lat.idx(x, y, lat.nz - 1);
                lat.set_boundary(t, Boundary::Wall);
            }
        }
        let mut reference = lat;
        let mut slabs = SlabLattice::split(&reference, 3);
        for _ in 0..40 {
            reference.step();
            slabs.step().unwrap();
        }
        let gathered = slabs.gather(&reference);
        assert_states_match(&reference, &gathered, 1e-13);
    }

    #[test]
    #[should_panic(expected = "too thin")]
    fn oversplitting_is_rejected() {
        let lat = poiseuille_global();
        let _ = SlabLattice::split(&lat, 11);
    }
}
