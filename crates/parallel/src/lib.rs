//! Parallel execution substrate standing in for Summit's MPI ranks
//! (paper §2.4.4–2.4.5).
//!
//! The paper's algorithms care about the *topology* of parallelism — which
//! task owns which block, what halo traffic each step generates, how cells
//! migrate between tasks, and how bulk (CPU) and window (GPU) work share a
//! node 36:6 — not about the transport. This crate reproduces that topology
//! in shared memory: block decompositions ([`decomp`]), device-tagged task
//! schedules ([`device`], [`schedule`]), channel-based halo exchange
//! ([`halo`]), and centroid-ownership cell migration ([`migrate`]). The
//! performance model in `apr-perfmodel` consumes the same geometry to
//! regenerate the paper's scaling figures.

pub mod chaos;
pub mod decomp;
pub mod device;
pub mod distributed_lbm;
pub mod envelope;
pub mod halo;
pub mod migrate;
pub mod schedule;
pub mod supervisor;
pub mod timeline;

pub use chaos::{ChaosEvent, ChaosPlan, MsgFault};
pub use decomp::{Block, BlockDecomposition};
pub use device::{Device, NodeConfig, Task};
pub use distributed_lbm::SlabLattice;
pub use envelope::{HaloError, LinkId, Nack, SealedSlab};
pub use halo::{ExchangeReport, GhostField, HaloConfig, HaloExchanger};
pub use migrate::{churn_stats, plan_migrations, ChurnStats, Migration};
pub use schedule::Schedule;
pub use supervisor::{ResilienceConfig, ResilienceError, ResilientSlabLattice, StepOutcome};
pub use timeline::{simulate_step, Timeline, WorkRates};
