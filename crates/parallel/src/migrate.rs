//! Cell migration between tasks.
//!
//! As cells move, ownership follows the centroid (paper §2.4.5: "cells
//! continuously enter and exit neighboring computational tasks"). This
//! module computes migration plans — which cells leave which task for which
//! neighbour — and tracks the traffic the memory-pool design avoids paying
//! allocation costs for.

use crate::decomp::BlockDecomposition;

/// A planned cell transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// Global cell ID.
    pub cell_id: u64,
    /// Current owner task.
    pub from: usize,
    /// New owner task.
    pub to: usize,
}

/// Compute the migration plan for a set of `(cell_id, owner, centroid)`
/// entries against a decomposition. Centroids are in global lattice
/// coordinates; cells outside the domain are clamped to it (the window
/// logic removes true leavers before migration runs).
pub fn plan_migrations(
    decomp: &BlockDecomposition,
    cells: &[(u64, usize, [f64; 3])],
) -> Vec<Migration> {
    let mut out = Vec::new();
    for &(cell_id, from, c) in cells {
        let p = [
            (c[0].max(0.0) as usize).min(decomp.dims[0] - 1),
            (c[1].max(0.0) as usize).min(decomp.dims[1] - 1),
            (c[2].max(0.0) as usize).min(decomp.dims[2] - 1),
        ];
        let to = decomp.owner_of(p);
        if to != from {
            out.push(Migration { cell_id, from, to });
        }
    }
    out
}

/// Per-task churn statistics from a migration plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChurnStats {
    /// Cells leaving each task.
    pub outgoing: Vec<usize>,
    /// Cells arriving at each task.
    pub incoming: Vec<usize>,
}

/// Summarize a migration plan over `tasks` tasks.
pub fn churn_stats(tasks: usize, plan: &[Migration]) -> ChurnStats {
    let mut s = ChurnStats {
        outgoing: vec![0; tasks],
        incoming: vec![0; tasks],
    };
    for m in plan {
        s.outgoing[m.from] += 1;
        s.incoming[m.to] += 1;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_cells_do_not_migrate() {
        let d = BlockDecomposition::new([16, 16, 16], 8);
        let cells = vec![(1u64, d.owner_of([2, 2, 2]), [2.0, 2.0, 2.0])];
        assert!(plan_migrations(&d, &cells).is_empty());
    }

    #[test]
    fn crossing_cells_migrate_to_new_owner() {
        let d = BlockDecomposition::new([16, 16, 16], 8);
        let from = d.owner_of([2, 2, 2]);
        let to = d.owner_of([12, 2, 2]);
        assert_ne!(from, to);
        let cells = vec![(7u64, from, [12.0, 2.0, 2.0])];
        let plan = plan_migrations(&d, &cells);
        assert_eq!(
            plan,
            vec![Migration {
                cell_id: 7,
                from,
                to
            }]
        );
    }

    #[test]
    fn out_of_domain_centroids_are_clamped() {
        let d = BlockDecomposition::new([16, 16, 16], 8);
        let from = d.owner_of([2, 2, 2]);
        let cells = vec![(1u64, from, [-3.0, 2.0, 2.0])];
        // Clamps to x = 0, same owner: no migration.
        assert!(plan_migrations(&d, &cells).is_empty());
    }

    #[test]
    fn churn_stats_balance() {
        let d = BlockDecomposition::new([16, 16, 16], 8);
        let from = d.owner_of([2, 2, 2]);
        let cells: Vec<(u64, usize, [f64; 3])> = (0..10)
            .map(|i| (i as u64, from, [12.0, 12.0, 12.0]))
            .collect();
        let plan = plan_migrations(&d, &cells);
        let stats = churn_stats(d.task_count(), &plan);
        assert_eq!(stats.outgoing.iter().sum::<usize>(), 10);
        assert_eq!(stats.incoming.iter().sum::<usize>(), 10);
        assert_eq!(stats.outgoing[from], 10);
    }
}
