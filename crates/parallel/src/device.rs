//! Task and device model standing in for Summit's heterogeneous ranks.
//!
//! Paper §2.4.4: "all 42 cores across the dual sockets of POWER9 CPUs on
//! Summit were used, with 42 tasks per node, 36 assigned to the bulk fluid
//! and 6 to the window region" (one per V100 GPU). Here a [`Task`] is a
//! worker with an assigned device class and sub-block; execution happens on
//! host threads, but the *assignment topology* — what the paper's algorithms
//! actually depend on — is identical.

use crate::decomp::Block;

/// Compute device class a task is pinned to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Device {
    /// POWER9-style CPU core group handling bulk fluid.
    Cpu,
    /// V100-style GPU handling the cell-resolved window.
    Gpu,
}

/// Hardware shape of one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeConfig {
    /// Bulk-fluid (CPU) tasks per node.
    pub cpu_tasks: usize,
    /// Window (GPU) tasks per node.
    pub gpu_tasks: usize,
}

impl NodeConfig {
    /// Summit's layout from the paper: 36 CPU + 6 GPU tasks per node.
    pub const SUMMIT: NodeConfig = NodeConfig {
        cpu_tasks: 36,
        gpu_tasks: 6,
    };

    /// The paper's AWS p3-style instance (§3.6): 48 CPUs + 8 V100s, tasks
    /// "distributed in a 6:1 ratio among the CPUs and GPUs".
    pub const AWS_P3: NodeConfig = NodeConfig {
        cpu_tasks: 48,
        gpu_tasks: 8,
    };

    /// Total tasks per node.
    pub fn tasks_per_node(&self) -> usize {
        self.cpu_tasks + self.gpu_tasks
    }

    /// Bulk:window task ratio.
    pub fn ratio(&self) -> f64 {
        self.cpu_tasks as f64 / self.gpu_tasks as f64
    }
}

/// One simulated rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Task {
    /// Global task id.
    pub id: usize,
    /// Node index hosting this task.
    pub node: usize,
    /// Device class.
    pub device: Device,
    /// Owned sub-block of the relevant domain (bulk or window).
    pub block: Block,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_layout_matches_paper() {
        let n = NodeConfig::SUMMIT;
        assert_eq!(n.tasks_per_node(), 42);
        assert_eq!(n.ratio(), 6.0);
    }

    #[test]
    fn aws_layout_matches_paper() {
        let n = NodeConfig::AWS_P3;
        assert_eq!(n.tasks_per_node(), 56);
        assert_eq!(n.ratio(), 6.0);
    }
}
