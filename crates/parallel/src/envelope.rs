//! Sealed halo messages: the envelope every slab travels in, and the typed
//! errors a receiver reports instead of panicking.
//!
//! The paper's production runs are multi-day MPI campaigns where message
//! corruption and peer loss are operational facts, not exceptional ones.
//! Every halo payload is therefore wrapped in a [`SealedSlab`] carrying
//! the exchange epoch, a per-link sequence number, and a CRC32 over the
//! payload bytes (the same IEEE checksum `apr-guard` uses for checkpoint
//! sections, so a slab can be cross-checked against a checkpoint with the
//! same tooling). Receivers validate with [`SealedSlab::verify`] and get a
//! [`HaloError`] value — Timeout / Corrupt / Reordered / PeerDead — that
//! the exchange protocol turns into a NACK-driven resend, and only after
//! the resend budget is exhausted into a frozen ghost plus a
//! `HealthReport` issue. No validation path panics.

use apr_guard::crc32;
use std::fmt;

/// A directed communication link, named for error messages and NACK
/// routing: `src → dst` with a small tag distinguishing parallel links
/// between the same pair (face axis/direction, or low/high plane).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId {
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// Link discriminator (face index or plane side).
    pub tag: u8,
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}→{}#{}", self.src, self.dst, self.tag)
    }
}

/// Everything that can go wrong receiving a halo slab. Values, never
/// panics: the exchange layer heals what it can (resend) and degrades
/// gracefully (freeze + report) for the rest.
#[derive(Debug, Clone, PartialEq)]
pub enum HaloError {
    /// No message arrived within the receive deadline.
    Timeout {
        /// Link that went silent.
        link: LinkId,
    },
    /// Payload failed its CRC32 integrity check.
    Corrupt {
        /// Link the damaged slab arrived on.
        link: LinkId,
        /// Checksum sealed at send time.
        expected: u32,
        /// Checksum of the received payload.
        actual: u32,
    },
    /// A slab arrived with the wrong exchange epoch or a stale sequence
    /// number (duplicate or out-of-order delivery).
    Reordered {
        /// Link the stale slab arrived on.
        link: LinkId,
        /// Epoch the receiver is exchanging.
        expected_epoch: u64,
        /// Epoch stamped on the message.
        got_epoch: u64,
    },
    /// Payload length does not match the face geometry.
    SizeMismatch {
        /// Link the malformed slab arrived on.
        link: LinkId,
        /// Values the face requires.
        expected: usize,
        /// Values received.
        got: usize,
    },
    /// The sending rank is known dead (channel closed or supervisor
    /// marked it down); no resend can heal this.
    PeerDead {
        /// The dead rank.
        rank: usize,
    },
    /// Resend budget exhausted without a valid slab; the ghost layer was
    /// frozen at its previous contents.
    ResendsExhausted {
        /// Link that never produced a valid slab.
        link: LinkId,
        /// Resend attempts made.
        attempts: u32,
    },
    /// Task/field bookkeeping mismatch (caller error, reported typed so a
    /// service layer can reject the request instead of dying).
    Protocol(String),
}

impl fmt::Display for HaloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HaloError::Timeout { link } => write!(f, "halo link {link}: receive timed out"),
            HaloError::Corrupt {
                link,
                expected,
                actual,
            } => write!(
                f,
                "halo link {link}: payload corrupt (crc {actual:#010x} != sealed {expected:#010x})"
            ),
            HaloError::Reordered {
                link,
                expected_epoch,
                got_epoch,
            } => write!(
                f,
                "halo link {link}: epoch {got_epoch} arrived during exchange {expected_epoch}"
            ),
            HaloError::SizeMismatch {
                link,
                expected,
                got,
            } => write!(
                f,
                "halo link {link}: payload holds {got} values, face needs {expected}"
            ),
            HaloError::PeerDead { rank } => write!(f, "halo peer rank {rank} is dead"),
            HaloError::ResendsExhausted { link, attempts } => write!(
                f,
                "halo link {link}: no valid slab after {attempts} resend attempts"
            ),
            HaloError::Protocol(m) => write!(f, "halo protocol error: {m}"),
        }
    }
}

impl std::error::Error for HaloError {}

/// View an `f64` payload as bytes for checksumming (bit patterns, so NaN
/// payloads checksum deterministically too).
pub fn payload_bytes(payload: &[f64]) -> &[u8] {
    // SAFETY: f64 has no invalid bit patterns and &[f64] is always
    // aligned/sized for a byte view of the same memory.
    unsafe { std::slice::from_raw_parts(payload.as_ptr().cast::<u8>(), payload.len() * 8) }
}

/// One halo slab sealed for transport.
#[derive(Debug, Clone, PartialEq)]
pub struct SealedSlab {
    /// Link the slab travels on.
    pub link: LinkId,
    /// Exchange round the slab belongs to.
    pub epoch: u64,
    /// Per-link sequence number (resends reuse the original's).
    pub seq: u64,
    /// CRC32 over the payload bytes, computed at seal time.
    pub crc: u32,
    /// Correlation: serve session the sender was working for at seal time
    /// (0 = unscoped). Lets the critical-path analyzer tie a halo message
    /// on the wire back to the session and step that produced it.
    pub session: u64,
    /// Correlation: simulation step the sender was in at seal time
    /// (0 = unscoped).
    pub step: u64,
    /// The face values.
    pub payload: Vec<f64>,
}

impl SealedSlab {
    /// Seal a payload: stamp epoch/sequence and checksum the bytes. The
    /// correlation ids (session, step) are captured automatically from
    /// the sealing thread's telemetry scopes, so the many existing call
    /// sites stay unchanged; the sending rank is already in `link.src`.
    pub fn seal(link: LinkId, epoch: u64, seq: u64, payload: Vec<f64>) -> Self {
        let crc = crc32(payload_bytes(&payload));
        Self {
            link,
            epoch,
            seq,
            crc,
            session: apr_telemetry::current_session(),
            step: apr_telemetry::current_step(),
            payload,
        }
    }

    /// Validate a received slab against the receiver's expectations.
    /// Checks epoch, then size, then the payload CRC.
    pub fn verify(&self, expected_epoch: u64, expected_len: usize) -> Result<(), HaloError> {
        if self.epoch != expected_epoch {
            return Err(HaloError::Reordered {
                link: self.link,
                expected_epoch,
                got_epoch: self.epoch,
            });
        }
        if self.payload.len() != expected_len {
            return Err(HaloError::SizeMismatch {
                link: self.link,
                expected: expected_len,
                got: self.payload.len(),
            });
        }
        let actual = crc32(payload_bytes(&self.payload));
        if actual != self.crc {
            return Err(HaloError::Corrupt {
                link: self.link,
                expected: self.crc,
                actual,
            });
        }
        Ok(())
    }

    /// Flip one payload bit *without* resealing — models in-flight
    /// corruption for the chaos harness. (Kept unconditionally compiled so
    /// the envelope's own tests cover it; the exchangers only call it
    /// under `fault-injection`.)
    pub fn corrupt_in_place(&mut self) {
        if self.payload.is_empty() {
            // Damage the seal instead so the corruption is still visible.
            self.crc ^= 0x8000_0001;
            return;
        }
        let idx = self.payload.len() / 2;
        let bits = self.payload[idx].to_bits() ^ (1 << 17);
        self.payload[idx] = f64::from_bits(bits);
    }

    /// Payload size in transported bytes (diagnostics).
    pub fn byte_len(&self) -> usize {
        self.payload.len() * std::mem::size_of::<f64>()
    }
}

/// A negative acknowledgement: "link `link`, epoch `epoch` never arrived
/// intact — resend from your retained buffer".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Nack {
    /// Link whose slab is being re-requested.
    pub link: LinkId,
    /// Exchange round of the missing slab.
    pub epoch: u64,
    /// Short machine-readable reason (`"timeout"`, `"corrupt"`, ...).
    pub reason: &'static str,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkId {
        LinkId {
            src: 0,
            dst: 1,
            tag: 2,
        }
    }

    #[test]
    fn seal_verify_round_trip() {
        let slab = SealedSlab::seal(link(), 7, 7, vec![1.0, -2.5, f64::NAN]);
        assert!(slab.verify(7, 3).is_ok(), "NaN payloads must seal fine");
    }

    #[test]
    fn seal_captures_correlation_scopes() {
        let unscoped = SealedSlab::seal(link(), 1, 1, vec![1.0]);
        assert_eq!((unscoped.session, unscoped.step), (0, 0));
        let _session = apr_telemetry::session_scope(9);
        let _step = apr_telemetry::step_scope(42);
        let scoped = SealedSlab::seal(link(), 1, 2, vec![1.0]);
        assert_eq!((scoped.session, scoped.step), (9, 42));
        assert!(
            scoped.verify(1, 1).is_ok(),
            "correlation must not break the seal"
        );
    }

    #[test]
    fn corruption_is_detected() {
        let mut slab = SealedSlab::seal(link(), 1, 1, vec![0.25; 16]);
        slab.corrupt_in_place();
        assert!(matches!(slab.verify(1, 16), Err(HaloError::Corrupt { .. })));
    }

    #[test]
    fn epoch_and_size_checks_precede_crc() {
        let slab = SealedSlab::seal(link(), 3, 3, vec![1.0; 4]);
        assert!(matches!(
            slab.verify(4, 4),
            Err(HaloError::Reordered {
                expected_epoch: 4,
                got_epoch: 3,
                ..
            })
        ));
        assert!(matches!(
            slab.verify(3, 5),
            Err(HaloError::SizeMismatch {
                expected: 5,
                got: 4,
                ..
            })
        ));
    }

    #[test]
    fn empty_payload_corruption_damages_the_seal() {
        let mut slab = SealedSlab::seal(link(), 0, 0, Vec::new());
        slab.corrupt_in_place();
        assert!(matches!(slab.verify(0, 0), Err(HaloError::Corrupt { .. })));
    }

    #[test]
    fn errors_render_with_link_identity() {
        let e = HaloError::Timeout { link: link() };
        assert!(e.to_string().contains("0→1#2"), "{e}");
    }
}
