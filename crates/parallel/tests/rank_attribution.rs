//! Per-rank halo attribution: `HaloExchanger::exchange` must surface
//! per-task busy times into the `halo.pack_send` / `halo.recv_unpack`
//! phase stats. Single test function — it owns the process-global
//! telemetry recorder's enable state for this binary.

use apr_parallel::decomp::BlockDecomposition;
use apr_parallel::halo::{GhostField, HaloExchanger};

#[test]
fn exchange_attributes_rank_times_to_halo_spans() {
    let rec = apr_telemetry::global();
    rec.reset();
    rec.enable();

    let decomp = BlockDecomposition::new([8, 8, 8], 8);
    let mut fields: Vec<GhostField> = decomp
        .blocks
        .iter()
        .map(|b| GhostField::new(b.extent()))
        .collect();
    let mut ex = HaloExchanger::new(&decomp);
    ex.exchange(&mut fields).unwrap();
    ex.exchange(&mut fields).unwrap();
    rec.disable();

    for phase in ["halo.pack_send", "halo.recv_unpack"] {
        let stat = rec
            .phase_stats()
            .into_iter()
            .find(|s| s.name == phase)
            .unwrap_or_else(|| panic!("phase {phase} missing"));
        assert_eq!(stat.count, 2);
        assert_eq!(stat.ranks.regions, 2, "{phase}");
        assert_eq!(stat.ranks.samples, 16, "8 tasks x 2 exchanges ({phase})");
        assert!(stat.ranks.imbalance() >= 1.0, "{phase}");
        assert!(stat.ranks.max_ns >= stat.ranks.min_ns, "{phase}");
    }
    rec.reset();
}
