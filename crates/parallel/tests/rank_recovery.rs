//! Headline resilience test: kill a rank at a seeded mid-run step and
//! require the supervised run to end **bit-identical** to a failure-free
//! run — at multiple executor thread counts, with the RankDown /
//! RankRestored telemetry trail and rollback counters intact.
//!
//! Single test function: this binary owns the process-global telemetry
//! recorder's enable state and the executor thread-count knob.

use apr_lattice::{Boundary, Lattice, NodeClass, Q};
use apr_parallel::{ChaosPlan, ResilienceConfig, ResilientSlabLattice};
use apr_telemetry::{MetricValue, TelemetryEvent};

const TASKS: usize = 4;
const STEPS: u64 = 40;
const SEED: u64 = 0xC0FFEE;

fn poiseuille_global() -> Lattice {
    let mut lat = Lattice::new(5, 8, 16, 0.9);
    lat.periodic = [true, false, true];
    lat.body_force = [0.0, 0.0, 2e-6];
    for z in 0..lat.nz {
        for x in 0..lat.nx {
            let bottom = lat.idx(x, 0, z);
            lat.set_boundary(bottom, Boundary::Wall);
            let top = lat.idx(x, lat.ny - 1, z);
            lat.set_boundary(top, Boundary::Wall);
        }
    }
    lat
}

/// Seeded kill step in the middle half of the run — derived exactly like
/// `ChaosPlan::from_seed` so the schedule is reproducible from the seed
/// alone, but pinned to a single kill so the assertions stay sharp.
fn seeded_kill(seed: u64) -> (u64, usize) {
    let mut state = seed;
    let step = STEPS / 4 + 1 + apr_guard::splitmix64(&mut state) % (STEPS / 2);
    let rank = (apr_guard::splitmix64(&mut state) % TASKS as u64) as usize;
    (step, rank)
}

fn run_clean(global: &Lattice) -> Lattice {
    let mut res = ResilientSlabLattice::split(global, TASKS, ResilienceConfig::default());
    for _ in 0..STEPS {
        let out = res.step().expect("clean run must not exhaust recovery");
        assert!(out.clean, "failure-free run degraded: {out:?}");
    }
    assert_eq!(res.rollback_count(), 0);
    res.gather(global)
}

fn run_with_kill(global: &Lattice, kill_step: u64, victim: usize) -> Lattice {
    let mut res = ResilientSlabLattice::split(global, TASKS, ResilienceConfig::default());
    let mut plan = ChaosPlan::new();
    plan.kill_rank(kill_step, victim);
    res.set_chaos(plan);
    let mut recovered = Vec::new();
    for _ in 0..STEPS {
        let out = res.step().expect("recovery budget is ample");
        recovered.extend(out.recovered.iter().copied());
    }
    assert_eq!(recovered, [victim], "exactly the killed rank recovers");
    assert_eq!(res.rollback_count(), 1, "one rollback heals one kill");
    assert!(!res.is_rank_dead(victim));
    assert!(
        res.chaos().pending().is_empty(),
        "the kill must actually have fired"
    );
    res.gather(global)
}

fn assert_bit_identical(a: &Lattice, b: &Lattice, ctx: &str) {
    for node in 0..a.node_count() {
        if a.flag(node) != NodeClass::Fluid {
            continue;
        }
        let fa = a.distributions(node);
        let fb = b.distributions(node);
        for i in 0..Q {
            assert!(
                fa[i].to_bits() == fb[i].to_bits(),
                "{ctx}: node {node} dir {i}: {} vs {} (bitwise)",
                fa[i],
                fb[i]
            );
        }
    }
}

fn counter(rec: &apr_telemetry::Recorder, name: &str) -> u64 {
    match rec.metric(name) {
        Some(MetricValue::Counter(v)) => v,
        other => panic!("counter {name} missing or wrong type: {other:?}"),
    }
}

#[test]
fn seeded_rank_kill_recovers_bit_identically_across_thread_counts() {
    let global = poiseuille_global();
    let (kill_step, victim) = seeded_kill(SEED);
    assert!(
        (STEPS / 4..3 * STEPS / 4).contains(&kill_step),
        "mid-run kill"
    );

    for threads in [2usize, 4] {
        apr_exec::set_threads(threads);
        let ctx = format!("threads={threads}");

        let reference = run_clean(&global);

        let rec = apr_telemetry::global();
        rec.reset();
        rec.enable();
        let recovered = run_with_kill(&global, kill_step, victim);
        rec.disable();

        assert_bit_identical(&reference, &recovered, &ctx);

        // Telemetry trail: the loss and the recovery are both on record.
        let events: Vec<TelemetryEvent> = rec.events().into_iter().map(|t| t.event).collect();
        let downs: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::RankDown { step, rank, reason } => Some((*step, *rank, *reason)),
                _ => None,
            })
            .collect();
        assert_eq!(downs, [(kill_step, victim as u32, "killed")], "{ctx}");
        let restores: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::RankRestored {
                    step,
                    rank,
                    restored_epoch,
                } => Some((*step, *rank, *restored_epoch)),
                _ => None,
            })
            .collect();
        assert_eq!(restores.len(), 1, "{ctx}");
        let (at, rank, epoch) = restores[0];
        assert_eq!(at, kill_step, "{ctx}");
        assert_eq!(rank, victim as u32, "{ctx}");
        assert!(epoch < kill_step, "{ctx}: rollback goes strictly backwards");
        assert_eq!(epoch % 8, 0, "{ctx}: epochs sit on the checkpoint cadence");

        assert_eq!(counter(rec, "resilience.rollbacks"), 1, "{ctx}");
        assert_eq!(counter(rec, "resilience.rank_down"), 1, "{ctx}");
        assert!(
            counter(rec, "resilience.buddy_checkpoints") >= TASKS as u64,
            "{ctx}"
        );
        rec.reset();
    }
    apr_exec::set_threads(0);
}
