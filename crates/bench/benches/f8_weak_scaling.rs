//! Figure 8 bench: weak scaling.
//!
//! Prints the Summit-model series (≥90% efficiency above 8 nodes, faster
//! 1–4 node cases) and measures the host's apr-exec weak scaling.

use apr_bench::report::render_figure8;
use apr_bench::scaling_meas::measure_weak_scaling;
use criterion::{criterion_group, criterion_main, Criterion};

fn benches(c: &mut Criterion) {
    println!("\n{}", render_figure8());

    let cores = std::thread::available_parallelism()
        .map(|x| x.get())
        .unwrap_or(1);
    let mut threads = vec![1usize];
    while *threads.last().unwrap() * 2 <= cores.min(16) {
        threads.push(threads.last().unwrap() * 2);
    }
    println!("Measured apr-exec weak scaling (32³ per thread) on this host:");
    for p in measure_weak_scaling(32, 6, &threads) {
        println!(
            "  {:>2} threads: {:>7.1} MLUPS  efficiency {:.2}",
            p.threads, p.mlups, p.speedup
        );
    }
    println!();

    c.bench_function("f8_lbm_step_32cubed", |b| {
        let mut lat = apr_lattice::Lattice::new(32, 32, 32, 0.9);
        lat.periodic = [true, true, true];
        b.iter(|| lat.step());
    });
}

criterion_group! {
    name = f8;
    config = Criterion::default().sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}
criterion_main!(f8);
