//! Figure 7 bench: strong scaling.
//!
//! Prints the Summit-model series at the paper's node counts and measures
//! the host's apr-exec strong scaling of the LBM kernel as the
//! shared-memory analogue.

use apr_bench::report::render_figure7;
use apr_bench::scaling_meas::measure_strong_scaling;
use criterion::{criterion_group, criterion_main, Criterion};

fn benches(c: &mut Criterion) {
    println!("\n{}", render_figure7());

    let cores = std::thread::available_parallelism()
        .map(|x| x.get())
        .unwrap_or(1);
    let mut threads = vec![1usize];
    while *threads.last().unwrap() * 2 <= cores.min(16) {
        threads.push(threads.last().unwrap() * 2);
    }
    println!("Measured apr-exec strong scaling (48³ box) on this host:");
    for p in measure_strong_scaling(48, 10, &threads) {
        println!(
            "  {:>2} threads: {:>7.1} MLUPS  speedup {:.2}",
            p.threads, p.mlups, p.speedup
        );
    }
    println!();

    c.bench_function("f7_lbm_step_64cubed", |b| {
        let mut lat = apr_lattice::Lattice::new(64, 64, 64, 0.9);
        lat.periodic = [true, true, true];
        b.iter(|| lat.step());
    });
}

criterion_group! {
    name = f7;
    config = Criterion::default().sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}
criterion_main!(f7);
