//! Figure 6 bench: CTC trajectory, APR vs eFSI in the expanding channel.
//!
//! Times one step of each model and regenerates a single-seed trajectory
//! comparison (ensemble runs via `exp_figure6`).

use apr_bench::trajectory::{run_apr_channel, run_efsi_channel, trajectory_deviation};
use criterion::{criterion_group, criterion_main, Criterion};

fn print_single_seed_comparison() {
    let (efsi, efsi_sites) = run_efsi_channel(1, 900);
    let (apr, apr_sites, moves) = run_apr_channel(1, 900, 3);
    let dev = trajectory_deviation(&efsi, &apr);
    println!("\nFigure 6 (single seed, reduced scale):");
    if let (Some(&(ze, re)), Some(&(za, ra))) = (efsi.last(), apr.last()) {
        println!("  eFSI final: z = {ze:.1}, r = {re:.2}   ({efsi_sites} site updates)");
        println!("  APR  final: z = {za:.1}, r = {ra:.2}   ({apr_sites} site updates, {moves} window moves)");
    }
    println!("  radial deviation: {dev:.3} of inlet radius");
    println!(
        "  compute saving: {:.1}× fewer site updates for APR\n",
        efsi_sites as f64 / apr_sites.max(1) as f64
    );
}

fn benches(c: &mut Criterion) {
    c.bench_function("f6_efsi_step", |b| {
        let (mut traj, _) = (Vec::<(f64, f64)>::new(), 0);
        let _ = &mut traj;
        // Build once, time steps.
        let mut engine_holder = None;
        b.iter_with_setup(
            || {
                if engine_holder.is_none() {
                    engine_holder = Some(());
                }
            },
            |_| {
                // One short eFSI segment as the measured unit.
                let (t, _) = run_efsi_channel(9, 2);
                criterion::black_box(t.len())
            },
        );
    });
    c.bench_function("f6_apr_step", |b| {
        b.iter(|| {
            let (t, _, _) = run_apr_channel(9, 1, 3);
            criterion::black_box(t.len())
        });
    });
    print_single_seed_comparison();
}

criterion_group! {
    name = f6;
    config = Criterion::default().sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}
criterion_main!(f6);
