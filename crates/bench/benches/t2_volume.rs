//! Table 2 bench: fluid volume vs resources (upper body, APR vs eFSI).

use apr_bench::report::render_table2;
use apr_perfmodel::volume_capacity_ml;
use criterion::{criterion_group, criterion_main, Criterion};

fn benches(c: &mut Criterion) {
    println!("\n{}", render_table2());
    c.bench_function("t2_volume_capacity", |b| {
        b.iter(|| {
            criterion::black_box(volume_capacity_ml(
                criterion::black_box(1536.0 * 16.0e9),
                0.5,
                0.40,
            ))
        });
    });
}

criterion_group! {
    name = t2;
    config = Criterion::default().sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}
criterion_main!(t2);
