//! Table 3 bench: estimated memory for the cerebral geometry.

use apr_bench::report::render_table3;
use apr_perfmodel::MemoryEstimate;
use criterion::{criterion_group, criterion_main, Criterion};

fn benches(c: &mut Criterion) {
    println!("\n{}", render_table3());
    c.bench_function("t3_memory_estimate", |b| {
        b.iter(|| {
            let e = MemoryEstimate::from_volume(
                criterion::black_box(0.75),
                criterion::black_box(6.2e12),
                0.35,
            );
            criterion::black_box(e.total_bytes())
        });
    });
}

criterion_group! {
    name = t3;
    config = Criterion::default().sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}
criterion_main!(t3);
