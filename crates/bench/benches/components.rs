//! Component microbenchmarks and the ablations of DESIGN.md §6:
//! LBM kernel throughput, IBM transfer, membrane FEM, RCM locality,
//! memory-pool churn, delta-kernel support widths, overlap detection.

use apr_cells::{CellKind, CellPool, RbcTile, UniformSubgrid};
use apr_ibm::{interpolate_velocities, spread_forces, DeltaKernel};
use apr_lattice::Lattice;
use apr_membrane::{Membrane, MembraneMaterial, ReferenceState};
use apr_mesh::rcm::{rcm_reorder, reorder_vertices};
use apr_mesh::{biconcave_rbc_mesh, icosphere, Vec3};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;

fn bench_lbm_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("lbm_step");
    for edge in [32usize, 64] {
        let mut lat = Lattice::new(edge, edge, edge, 0.9);
        lat.periodic = [true, true, true];
        group.throughput(criterion::Throughput::Elements((edge * edge * edge) as u64));
        group.bench_function(format!("{edge}cubed"), |b| b.iter(|| lat.step()));
    }
    group.finish();
}

fn bench_ibm_transfer(c: &mut Criterion) {
    let mut lat = Lattice::new(48, 48, 48, 0.9);
    lat.periodic = [true, true, true];
    let mesh = biconcave_rbc_mesh(3, 8.0); // 642 vertices — the paper's mesh
    let positions: Vec<Vec3> = mesh
        .vertices
        .iter()
        .map(|&v| v + Vec3::splat(24.0))
        .collect();
    let forces = vec![Vec3::new(1e-6, 0.0, 0.0); positions.len()];

    let mut group = c.benchmark_group("ibm_642_vertices");
    for kernel in [
        DeltaKernel::Cosine4,
        DeltaKernel::Peskin3,
        DeltaKernel::Linear2,
    ] {
        group.bench_function(format!("interpolate_{kernel:?}"), |b| {
            b.iter(|| criterion::black_box(interpolate_velocities(&lat, &positions, kernel)))
        });
        group.bench_function(format!("spread_{kernel:?}"), |b| {
            b.iter(|| {
                lat.clear_forces();
                spread_forces(&mut lat, &positions, &forces, kernel)
            })
        });
    }
    group.finish();
}

fn bench_membrane_fem(c: &mut Criterion) {
    let mesh = biconcave_rbc_mesh(3, 8.0);
    let re = Arc::new(ReferenceState::build(&mesh));
    let membrane = Membrane::new(re, MembraneMaterial::rbc(1e-3, 1e-5));
    let deformed: Vec<Vec3> = mesh
        .vertices
        .iter()
        .map(|&v| Vec3::new(v.x * 1.1, v.y * 0.95, v.z))
        .collect();
    let mut forces = vec![Vec3::ZERO; deformed.len()];
    c.bench_function("membrane_forces_642v", |b| {
        b.iter(|| {
            forces.iter_mut().for_each(|f| *f = Vec3::ZERO);
            criterion::black_box(membrane.compute_forces(&deformed, &mut forces))
        })
    });
}

/// RCM ablation (§2.4.5): FEM gather over RCM-ordered vs shuffled
/// connectivity. The workload reads all 3 vertex slots per triangle — the
/// memory-access pattern RCM optimizes.
fn bench_rcm_ablation(c: &mut Criterion) {
    let base = biconcave_rbc_mesh(4, 8.0); // 2562 vertices
    let mut rng = StdRng::seed_from_u64(3);
    let mut perm: Vec<u32> = (0..base.vertex_count() as u32).collect();
    perm.shuffle(&mut rng);
    let shuffled = reorder_vertices(&base, &perm);
    let (rcm, _) = rcm_reorder(&shuffled);

    let gather = |mesh: &apr_mesh::TriMesh| -> f64 {
        let mut acc = 0.0;
        for &[a, b, c] in &mesh.triangles {
            let (pa, pb, pc) = (
                mesh.vertices[a as usize],
                mesh.vertices[b as usize],
                mesh.vertices[c as usize],
            );
            acc += (pb - pa).cross(pc - pa).norm_sq();
        }
        acc
    };
    let mut group = c.benchmark_group("rcm_fem_gather");
    group.bench_function("shuffled_order", |b| {
        b.iter(|| criterion::black_box(gather(&shuffled)))
    });
    group.bench_function("rcm_order", |b| {
        b.iter(|| criterion::black_box(gather(&rcm)))
    });
    group.finish();
}

/// Memory-pool ablation (§2.4.5): slot-reusing churn vs fresh allocation.
fn bench_pool_churn(c: &mut Criterion) {
    let mesh = icosphere(2, 3.0);
    let re = Arc::new(ReferenceState::build(&mesh));
    let membrane = Arc::new(Membrane::new(re, MembraneMaterial::rbc(1e-3, 1e-5)));

    let mut group = c.benchmark_group("cell_churn_100");
    group.bench_function("pooled", |b| {
        let mut pool = CellPool::with_capacity(128);
        b.iter(|| {
            let mut slots = Vec::new();
            for _ in 0..100 {
                let (s, _) =
                    pool.insert_shape(CellKind::Rbc, Arc::clone(&membrane), mesh.vertices.clone());
                slots.push(s);
            }
            for s in slots {
                pool.remove(s);
            }
        })
    });
    group.bench_function("fresh_vec", |b| {
        b.iter(|| {
            let mut cells = Vec::new();
            for i in 0..100u64 {
                cells.push(apr_cells::Cell::with_shape(
                    i,
                    CellKind::Rbc,
                    Arc::clone(&membrane),
                    mesh.vertices.clone(),
                ));
            }
            criterion::black_box(cells.len())
        })
    });
    group.finish();
}

fn bench_overlap_detection(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let tile = RbcTile::build(60.0, 0.25, 3.91, 2.4, 94.0, &mut rng);
    let mesh = biconcave_rbc_mesh(1, 3.91);
    let mut grid = UniformSubgrid::new(4.0);
    for (i, p) in tile.placements.iter().enumerate() {
        grid.insert_cell(i as u64, &p.realize(&mesh));
    }
    let candidate = tile.placements[tile.placements.len() / 2].realize(&mesh);
    c.bench_function("overlap_test_dense_tile", |b| {
        b.iter(|| criterion::black_box(apr_cells::test_overlap(&grid, &candidate, 0.5)))
    });
}

criterion_group! {
    name = comp;
    config = Criterion::default().sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_lbm_kernel, bench_ibm_transfer, bench_membrane_fem,
              bench_rcm_ablation, bench_pool_churn, bench_overlap_detection
}
criterion_main!(comp);
