//! Table 1 / Figure 4 bench: variable-viscosity shear-flow coupling.
//!
//! Times one coupled coarse step per (λ, n) case and regenerates a
//! reduced-scale Table 1 (n = 2 rows; run `exp_table1 --full` for all nine
//! cases), including the non-equilibrium-transfer ablation of DESIGN.md §6.

use apr_bench::report::render_table1;
use apr_bench::shear::{build_shear, run_shear, ShearCase};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_coupled_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("t1_coupled_step");
    for (n, lambda) in [(2usize, 0.5f64), (5, 0.25)] {
        let mut p = build_shear(ShearCase { n, lambda });
        group.bench_function(format!("n{n}_lambda{lambda:.2}"), |b| {
            b.iter(|| p.step());
        });
    }
    group.finish();
}

fn print_reduced_table1() {
    let mut results = Vec::new();
    for &lambda in &[0.5, 1.0 / 3.0, 0.25] {
        let case = ShearCase { n: 2, lambda };
        results.push((case, run_shear(case, 4000)));
    }
    println!("\n{}", render_table1(&results));
    println!("(reduced scale: n = 2 rows; `exp_table1 --full` regenerates all nine)\n");

    // Ablation: equilibrium-only interface transfer.
    let mut p = build_shear(ShearCase { n: 2, lambda: 0.5 });
    p.map.neq_transfer = false;
    for _ in 0..4000 {
        p.step();
    }
    let ablated = p.score();
    let full = run_shear(ShearCase { n: 2, lambda: 0.5 }, 4000);
    println!(
        "Ablation (λ=1/2, n=2): window L2 with neq transfer {:.4}, without {:.4}",
        full.window_l2, ablated.window_l2
    );
}

fn benches(c: &mut Criterion) {
    bench_coupled_step(c);
    print_reduced_table1();
}

criterion_group! {
    name = t1;
    config = Criterion::default().sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}
criterion_main!(t1);
