//! Figure 5 bench: hematocrit maintenance + effective viscosity.
//!
//! Times one APR engine step with a cell-laden window and regenerates the
//! Figure 5 summary at reduced scale (shorter runs; `exp_figure5` for the
//! full series).

use apr_bench::hct::{build_hct_engine, run_hct_case};
use apr_bench::report::render_figure5;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_engine_step(c: &mut Criterion) {
    let mut engine = build_hct_engine(0.15, 3, 7);
    c.bench_function("f5_apr_step_with_cells", |b| {
        b.iter(|| engine.step());
    });
}

fn print_reduced_figure5() {
    let results: Vec<_> = [0.10, 0.20]
        .iter()
        .map(|&t| run_hct_case(t, 400, 42))
        .collect();
    println!("\n{}", render_figure5(&results));
    println!("(reduced scale: 500 coarse steps, two targets; `exp_figure5` for the full run)\n");
}

fn benches(c: &mut Criterion) {
    bench_engine_step(c);
    print_reduced_figure5();
}

criterion_group! {
    name = f5;
    config = Criterion::default().sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = benches
}
criterion_main!(f5);
