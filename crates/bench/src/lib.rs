//! Benchmark and experiment harness regenerating every table and figure of
//! the paper's evaluation (see DESIGN.md §5 for the experiment index).
//!
//! * [`shear`] — Table 1 / Figure 4 (variable-viscosity shear flow).
//! * [`hct`] — Figure 5 (hematocrit maintenance + effective viscosity).
//! * [`trajectory`] — Figure 6 (CTC trajectory, APR vs eFSI).
//! * [`scaling_meas`] — measured thread-scaling analogue of Figures 7–8
//!   (the analytic Summit model lives in `apr-perfmodel`).
//! * [`observatory`] — pinned bench scenarios, `BENCH_*.json` artifacts and
//!   the `bench_suite` regression diff (DESIGN.md §10).
//! * [`report`] — paper-style table/figure printers.
//!
//! Long-running, full-size regenerations are the `exp_*` binaries; the
//! criterion benches under `benches/` time the kernels and print
//! reduced-scale versions of each table.

pub mod hct;
pub mod observatory;
pub mod report;
pub mod scaling_meas;
pub mod shear;
pub mod trajectory;
