//! Figure 6 harness: CTC trajectory in an expanding channel, APR vs eFSI.
//!
//! Both models run the same physical problem — a stiff CTC carried through
//! a 2× radial expansion with a handful of RBC neighbours — at reproduction
//! scale. eFSI resolves the whole channel on one lattice; APR couples a
//! moving fine window to a coarse bulk. The observable is the radial
//! distance from the centreline versus axial position (Figure 6C/D).

use apr_cells::{CellKind, ContactParams};
use apr_core::{AprEngine, EfsiEngine};
use apr_coupling::fine_tau;
use apr_geom::{voxelize, ExpandingChannel};
use apr_lattice::{Lattice, NodeClass};
use apr_membrane::{Membrane, MembraneMaterial, ReferenceState};
use apr_mesh::{biconcave_rbc_mesh, icosphere, Vec3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Channel geometry shared by both models (coarse lattice units).
pub fn channel() -> ExpandingChannel {
    ExpandingChannel {
        r0: 6.0,
        r1: 11.0,
        z_expand: 30.0,
        taper: 12.0,
        origin: Vec3::new(13.0, 13.0, 0.0),
    }
}

/// Channel domain extents (coarse lattice units).
pub const CHANNEL_DIMS: (usize, usize, usize) = (27, 27, 96);

/// Driving body force (lattice units).
pub const CHANNEL_FORCE: f64 = 1.5e-4;

const TAU: f64 = 0.9;
const CTC_RADIUS: f64 = 3.0; // coarse units
const CTC_OFFSET: f64 = 2.0; // initial radial offset, coarse units

fn ctc_membrane(scale: f64) -> (Arc<Membrane>, apr_mesh::TriMesh) {
    let mesh = icosphere(2, CTC_RADIUS * scale);
    let re = Arc::new(ReferenceState::build(&mesh));
    (
        Arc::new(Membrane::new(re, MembraneMaterial::ctc(4e-3, 2e-4))),
        mesh,
    )
}

fn rbc_membrane(scale: f64) -> (Arc<Membrane>, apr_mesh::TriMesh) {
    let mesh = biconcave_rbc_mesh(1, 2.2 * scale);
    let re = Arc::new(ReferenceState::build(&mesh));
    (
        Arc::new(Membrane::new(re, MembraneMaterial::rbc(2e-4, 1e-5))),
        mesh,
    )
}

/// Scatter a few RBCs around a centre, seeded deterministically — the
/// "varying RBC positions" of the paper's 8-run ensembles.
fn rbc_positions(seed: u64, center: Vec3, spread: f64, count: usize) -> Vec<Vec3> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            center
                + Vec3::new(
                    rng.gen_range(-spread..spread),
                    rng.gen_range(-spread..spread),
                    rng.gen_range(-spread..spread),
                )
        })
        .collect()
}

/// Trajectory sample: `(axial z, radial r)` in coarse lattice units.
pub type Trajectory = Vec<(f64, f64)>;

/// Run the eFSI model: whole channel on one lattice at coarse resolution.
pub fn run_efsi_channel(seed: u64, steps: u64) -> (Trajectory, u64) {
    let (nx, ny, nz) = CHANNEL_DIMS;
    let mut lat = Lattice::new(nx, ny, nz, TAU);
    lat.periodic = [false, false, true];
    lat.body_force = [0.0, 0.0, CHANNEL_FORCE];
    voxelize(&mut lat, &channel(), Vec3::ZERO, 1.0);
    let mut engine = EfsiEngine::new(
        lat,
        32,
        ContactParams {
            cutoff: 1.0,
            strength: 5e-4,
        },
    );

    let (ctc_mem, ctc_mesh) = ctc_membrane(1.0);
    let start = Vec3::new(13.0 + CTC_OFFSET, 13.0, 12.0);
    let verts: Vec<Vec3> = ctc_mesh.vertices.iter().map(|&v| v + start).collect();
    engine.add_cell(CellKind::Ctc, ctc_mem, verts);
    let (rbc_mem, rbc_mesh) = rbc_membrane(1.0);
    for p in rbc_positions(seed, start, 4.5, 6) {
        let verts: Vec<Vec3> = rbc_mesh.vertices.iter().map(|&v| v + p).collect();
        engine.add_cell(CellKind::Rbc, Arc::clone(&rbc_mem), verts);
    }

    let axis = Vec3::new(13.0, 13.0, 0.0);
    let mut out = Vec::new();
    for step in 0..steps {
        engine.step();
        if step % 20 == 0 {
            if let Some(c) = engine.centroid_of_first(CellKind::Ctc) {
                let rel = c - axis;
                out.push((rel.z, (rel.x * rel.x + rel.y * rel.y).sqrt()));
            }
        }
    }
    (out, engine.site_updates())
}

/// Run the APR model: coarse bulk + moving fine window around the CTC.
pub fn run_apr_channel(seed: u64, steps: u64, n: usize) -> (Trajectory, u64, u64) {
    let (nx, ny, nz) = CHANNEL_DIMS;
    let lambda = 0.3;
    let mut coarse = Lattice::new(nx, ny, nz, TAU);
    coarse.periodic = [false, false, true];
    coarse.body_force = [0.0, 0.0, CHANNEL_FORCE];
    let ch = channel();
    voxelize(&mut coarse, &ch, Vec3::ZERO, 1.0);

    let span = 8usize;
    let dim = span * n + 1;
    let mut fine = Lattice::new(dim, dim, dim, fine_tau(TAU, n, lambda));
    fine.body_force = [0.0, 0.0, CHANNEL_FORCE / n as f64];
    let origin = [11.0, 9.0, 8.0];
    let mut engine = AprEngine::builder(coarse, fine, origin, n, lambda)
        .window(
            span as f64 * n as f64 * 0.22,
            span as f64 * n as f64 * 0.12,
            span as f64 * n as f64 * 0.14,
        )
        .contact(ContactParams {
            cutoff: 1.2,
            strength: 5e-4,
        })
        .build();
    engine.reseed_rng(seed);
    engine.set_fine_geometry(Box::new(move |fine, origin| {
        for node in 0..fine.node_count() {
            fine.set_flag(node, NodeClass::Fluid);
        }
        let o = Vec3::new(origin[0], origin[1], origin[2]);
        voxelize(fine, &ch, o, 1.0 / n as f64);
    }));

    let (ctc_mem, ctc_mesh) = ctc_membrane(n as f64);
    // CTC world start (13 + offset, 13, 12) mapped to fine coordinates.
    let start_world = Vec3::new(13.0 + CTC_OFFSET, 13.0, 12.0);
    let start_fine = engine.world_to_fine(start_world);
    let verts: Vec<Vec3> = ctc_mesh.vertices.iter().map(|&v| v + start_fine).collect();
    engine.add_ctc(ctc_mem, verts);
    let (rbc_mem, rbc_mesh) = rbc_membrane(n as f64);
    for p in rbc_positions(seed, start_fine, 4.5 * n as f64, 6) {
        let verts: Vec<Vec3> = rbc_mesh.vertices.iter().map(|&v| v + p).collect();
        engine.add_rbc(Arc::clone(&rbc_mem), verts);
    }

    let axis = Vec3::new(13.0, 13.0, 0.0);
    for _ in 0..steps {
        engine.step();
        if engine
            .tracker
            .current()
            .is_some_and(|w| w.z > (nz - 20) as f64)
        {
            break;
        }
    }
    let traj = engine
        .tracker
        .radial_profile(axis, Vec3::Z)
        .into_iter()
        .collect();
    (traj, engine.site_updates(), engine.window_moves())
}

/// Maximum radial deviation between two trajectories over their common
/// axial range, normalized by the channel inlet radius.
pub fn trajectory_deviation(a: &Trajectory, b: &Trajectory) -> f64 {
    let z_min = a
        .first()
        .map(|&(z, _)| z)
        .unwrap_or(0.0)
        .max(b.first().map(|&(z, _)| z).unwrap_or(0.0));
    let z_max = a
        .last()
        .map(|&(z, _)| z)
        .unwrap_or(0.0)
        .min(b.last().map(|&(z, _)| z).unwrap_or(0.0));
    if z_max <= z_min {
        return f64::MAX;
    }
    let sample = |t: &Trajectory, z: f64| -> f64 {
        // Linear interpolation in z.
        for w in t.windows(2) {
            if w[0].0 <= z && z <= w[1].0 {
                let f = (z - w[0].0) / (w[1].0 - w[0].0).max(1e-12);
                return w[0].1 + f * (w[1].1 - w[0].1);
            }
        }
        t.last().map(|&(_, r)| r).unwrap_or(0.0)
    };
    let mut worst = 0.0f64;
    for i in 0..=20 {
        let z = z_min + (z_max - z_min) * i as f64 / 20.0;
        worst = worst.max((sample(a, z) - sample(b, z)).abs());
    }
    worst / 6.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efsi_ctc_advects_downstream() {
        let (traj, sites) = run_efsi_channel(3, 600);
        assert!(traj.len() > 10);
        let (z0, _) = traj[0];
        let (z1, _) = *traj.last().unwrap();
        assert!(z1 > z0, "no downstream motion: {z0} -> {z1}");
        assert!(sites > 0);
    }

    #[test]
    fn deviation_metric_is_zero_for_identical() {
        let t: Trajectory = (0..10).map(|i| (i as f64, 1.0)).collect();
        assert_eq!(trajectory_deviation(&t, &t.clone()), 0.0);
    }
}
