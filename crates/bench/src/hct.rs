//! Figure 5 harness: hematocrit maintenance and effective viscosity in a
//! cell-resolved tube window.

use apr_cells::{ContactParams, RbcTile};
use apr_core::{tube_effective_viscosity, AprEngine, HematocritSeries};
use apr_coupling::fine_tau;
use apr_hemo::pries::{discharge_from_tube_hematocrit, relative_apparent_viscosity};
use apr_lattice::{force_driven_tube, setup::effective_tube_radius, Lattice};
use apr_membrane::{Membrane, MembraneMaterial, ReferenceState};
use apr_mesh::biconcave_rbc_mesh;
use apr_window::{HematocritController, InsertionContext};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Result of one Figure 5 case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HctResult {
    /// Target (tube) hematocrit.
    pub target: f64,
    /// Steady window hematocrit (Figure 5B's plateau).
    pub steady_ht: f64,
    /// Repopulation ripple (peak-to-peak).
    pub fluctuation: f64,
    /// Effective tube viscosity relative to the cell-free tube (paper
    /// Eq. 12 over the same discrete domain).
    pub mu_rel_sim: f64,
    /// Pries Eq. 9 relative viscosity for the same tube hematocrit in the
    /// paper's 200 µm tube (the Figure 5C reference curve).
    pub mu_rel_pries: f64,
}

/// Tube body force used by all cases (lattice units).
pub const TUBE_FORCE: f64 = 6e-5;

/// Build the Figure 5 engine: coarse force-driven tube with a centred
/// window refined ×`n`, populated toward `target` hematocrit.
pub fn build_hct_engine(target: f64, n: usize, seed: u64) -> AprEngine {
    let tau_c = 0.9;
    let lambda = 0.3;
    let (nx, ny, nz) = (21usize, 21usize, 48usize);
    let coarse = force_driven_tube(nx, ny, nz, tau_c, 9.0, TUBE_FORCE);
    let span = 8usize;
    let dim = span * n + 1;
    let mut fine = Lattice::new(dim, dim, dim, fine_tau(tau_c, n, lambda));
    fine.body_force = [0.0, 0.0, TUBE_FORCE / n as f64];
    let origin = [6.0, 6.0, 16.0];
    let mut engine = AprEngine::builder(coarse, fine, origin, n, lambda)
        .window(
            span as f64 * n as f64 * 0.22,
            span as f64 * n as f64 * 0.12,
            span as f64 * n as f64 * 0.14,
        )
        .contact(ContactParams {
            cutoff: 1.2,
            strength: 5e-4,
        })
        .build();
    engine.reseed_rng(seed);

    let rbc_mesh = biconcave_rbc_mesh(1, 3.0);
    let volume = rbc_mesh.enclosed_volume();
    let reference = Arc::new(ReferenceState::build(&rbc_mesh));
    let membrane = Arc::new(Membrane::new(reference, MembraneMaterial::rbc(6e-4, 2e-5)));
    let mut rng = StdRng::seed_from_u64(seed);
    let tile = RbcTile::build(40.0, target.min(0.3), 3.0, 1.8, volume, &mut rng);
    engine.insertion = Some(InsertionContext {
        rbc_mesh,
        rbc_membrane: membrane,
        tile,
        min_gap: 0.8,
    });
    engine.controller = Some(HematocritController::new(target, 0.85, volume));
    engine.maintenance_interval = 10;
    engine.populate_window();
    engine
}

/// Run one Figure 5 case for `steps` coarse steps.
pub fn run_hct_case(target: f64, steps: u64, seed: u64) -> HctResult {
    // Cell-free reference flow for the μ_rel baseline.
    let mut reference = force_driven_tube(21, 21, 48, 0.9, 9.0, TUBE_FORCE);
    for _ in 0..steps.min(4000) {
        reference.step();
    }
    let r_eff = effective_tube_radius(&reference);
    let mu_ref = tube_effective_viscosity(&reference, r_eff, TUBE_FORCE);

    let mut engine = build_hct_engine(target, 3, seed);
    let mut series = HematocritSeries::default();
    for step in 0..steps {
        engine.step();
        if step % 10 == 0 {
            series.record(step, engine.window_hematocrit().unwrap());
        }
    }
    let mu_cells = tube_effective_viscosity(&engine.coarse, r_eff, TUBE_FORCE);
    let steady_ht = series.steady_mean(0.4).expect("series has samples");
    HctResult {
        target,
        steady_ht,
        fluctuation: series.steady_fluctuation(0.4).expect("series has samples"),
        mu_rel_sim: mu_cells / mu_ref,
        mu_rel_pries: relative_apparent_viscosity(
            200.0,
            discharge_from_tube_hematocrit(200.0, steady_ht),
        ),
    }
}

/// The paper's three Figure 5 hematocrit targets.
pub fn figure5_targets() -> [f64; 3] {
    [0.10, 0.20, 0.30]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_builds_and_packs_cells() {
        let engine = build_hct_engine(0.15, 3, 1);
        assert!(engine.pool.live_count() > 3);
        assert!(engine.window_hematocrit().unwrap() > 0.02);
    }
}
