//! Paper-style report printers: every table and figure of the evaluation,
//! regenerated from this reproduction's harnesses.

use crate::hct::HctResult;
use crate::shear::{ShearCase, ShearResult};
use apr_core::render_table;
use apr_perfmodel::{
    strong_scaling, table3_rows, volume_capacity_ml, weak_scaling, MachineSpec, ProblemSpec,
    ScalingPoint,
};

/// Render Table 1 from computed shear cases.
pub fn render_table1(results: &[(ShearCase, ShearResult)]) -> String {
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(c, r)| {
            vec![
                format!("{}", c.n),
                format!("{:.3}", c.lambda),
                format!("{:.4}", r.bulk_l2),
                format!("{:.4}", r.window_l2),
            ]
        })
        .collect();
    format!(
        "Table 1 — L2 error norms, variable-viscosity shear flow\n{}",
        render_table(&["n", "lambda", "bulk", "window"], &rows)
    )
}

/// Render the Figure 5 summary (hematocrit maintenance + viscosity).
pub fn render_figure5(results: &[HctResult]) -> String {
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}%", r.target * 100.0),
                format!("{:.3}", r.steady_ht),
                format!("{:.4}", r.fluctuation),
                format!("{:.3}", r.mu_rel_sim),
                format!("{:.3}", r.mu_rel_pries),
            ]
        })
        .collect();
    format!(
        "Figure 5 — hematocrit maintenance and effective viscosity\n{}",
        render_table(
            &[
                "target",
                "steady_Ht",
                "ripple",
                "mu_rel(sim)",
                "mu_rel(Pries)"
            ],
            &rows
        )
    )
}

/// Render Figure 7's strong-scaling series from the machine model.
pub fn render_figure7() -> String {
    let pts = strong_scaling(
        &MachineSpec::SUMMIT,
        &ProblemSpec::figure7(),
        &[32, 64, 128, 256, 512],
    );
    render_scaling("Figure 7 — strong scaling (Summit model)", &pts, "speedup")
}

/// Render Figure 8's weak-scaling series from the machine model.
pub fn render_figure8() -> String {
    let pts = weak_scaling(
        &MachineSpec::SUMMIT,
        ProblemSpec::figure8,
        &[1, 2, 4, 8, 16, 32, 64, 128, 256],
        8,
    );
    render_scaling("Figure 8 — weak scaling (Summit model)", &pts, "efficiency")
}

fn render_scaling(title: &str, pts: &[ScalingPoint], metric: &str) -> String {
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.nodes),
                format!("{:.4}", p.step_time),
                format!("{:.3}", p.relative),
            ]
        })
        .collect();
    format!(
        "{title}\n{}",
        render_table(&["nodes", "s/step", metric], &rows)
    )
}

/// Render Table 2: fluid volume vs resources for the upper-body run.
pub fn render_table2() -> String {
    let m = MachineSpec::SUMMIT;
    let nodes = 256usize;
    let gpus = nodes * m.gpu_tasks_per_node;
    let cpus = nodes * m.cpu_tasks_per_node;
    let efsi_ml = volume_capacity_ml(gpus as f64 * m.gpu_memory as f64, 0.5, 0.40);
    let rows = vec![
        vec![
            "APR (window)".into(),
            "0.5".into(),
            format!("{gpus} GPUs"),
            format!("{efsi_ml:.2e} mL"),
        ],
        vec![
            "APR (bulk)".into(),
            "15".into(),
            format!("{cpus} CPUs"),
            "41.0 mL (full geometry)".into(),
        ],
        vec![
            "eFSI".into(),
            "0.5".into(),
            format!("{nodes} nodes"),
            format!("{efsi_ml:.2e} mL"),
        ],
    ];
    format!(
        "Table 2 — fluid volume vs resources (upper body)\n{}",
        render_table(&["Model", "dx (um)", "Resources", "Fluid volume"], &rows)
    )
}

/// Render Table 3: cerebral memory requirements.
pub fn render_table3() -> String {
    let rows: Vec<Vec<String>> = table3_rows()
        .iter()
        .map(|(name, e)| {
            vec![
                name.to_string(),
                format!("{}", e.dx_um),
                format!("{:.2e}", e.fluid_points),
                format_bytes(e.fluid_bytes),
                format!("{:.1e}", e.rbc_count),
                format_bytes(e.rbc_bytes),
            ]
        })
        .collect();
    format!(
        "Table 3 — estimated memory, cerebral geometry\n{}",
        render_table(
            &[
                "Model",
                "dx (um)",
                "Fluid Pts",
                "Fluid Mem",
                "Num RBCs",
                "RBC Mem"
            ],
            &rows
        )
    )
}

/// Human-readable decimal byte size.
pub fn format_bytes(b: f64) -> String {
    if b == 0.0 {
        "0".into()
    } else if b >= 1e15 {
        format!("{:.1} PB", b / 1e15)
    } else if b >= 1e12 {
        format!("{:.1} TB", b / 1e12)
    } else if b >= 1e9 {
        format!("{:.1} GB", b / 1e9)
    } else {
        format!("{:.1} MB", b / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_without_panicking() {
        let t2 = render_table2();
        assert!(t2.contains("APR (bulk)"));
        let t3 = render_table3();
        assert!(t3.contains("eFSI"));
        assert!(t3.contains("PB"), "eFSI row must be petabytes:\n{t3}");
        let f7 = render_figure7();
        assert!(f7.contains("512"));
        let f8 = render_figure8();
        assert!(f8.contains("256"));
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(7.2e9), "7.2 GB");
        assert_eq!(format_bytes(6.0e15), "6.0 PB");
        assert_eq!(format_bytes(0.0), "0");
    }
}
