//! The performance observatory: pinned benchmark scenarios, the
//! schema-versioned `BENCH_<scenario>.json` artifact, and the noise-aware
//! regression diff behind `bench_suite diff`.
//!
//! The artifact is the repo's machine-readable analogue of the paper's
//! Figs. 7–8 / Table 1 evidence: per-phase p50/p95 wall times (from
//! telemetry duration histograms), MLUPS, per-worker load imbalance, RSS,
//! thread count and git revision, committed as `BENCH_*.json` baselines so
//! every PR is measured against a recorded trajectory. JSON is written and
//! parsed with `apr_telemetry::json` — no serde, per the workspace's
//! offline-shim policy.

use apr_telemetry::json::{escape, number, parse, Value};
use apr_telemetry::{LaneStats, Recorder};
use std::fmt::Write as _;

/// Schema tag of the artifact format; bump on breaking layout changes.
pub const BENCH_SCHEMA: &str = "apr.bench.v1";

/// Histogram buckets used for the per-phase percentile estimates.
const PERCENTILE_BUCKETS: usize = 48;

/// Serializable summary of a [`LaneStats`] (workers or ranks).
#[derive(Debug, Clone, PartialEq)]
pub struct LaneSummary {
    /// Parallel regions recorded under the phase.
    pub regions: u64,
    /// Per-lane samples over all regions.
    pub samples: u64,
    /// Total lane busy nanoseconds.
    pub busy_ns: u64,
    /// Fastest single lane sample.
    pub min_ns: u64,
    /// Slowest single lane sample.
    pub max_ns: u64,
    /// Total barrier-wait nanoseconds over all lanes (region span minus
    /// each lane's busy time) — idle time is reported, not blended into
    /// busy, so imbalance reflects work distribution alone.
    pub wait_ns: u64,
    /// Mean busy nanoseconds per lane sample.
    pub mean_ns: f64,
    /// Mean per-region load-imbalance factor (1.0 = perfectly balanced).
    pub imbalance: f64,
}

impl LaneSummary {
    fn from_stats(s: &LaneStats) -> Option<Self> {
        if s.regions == 0 {
            return None;
        }
        Some(Self {
            regions: s.regions,
            samples: s.samples,
            busy_ns: s.busy_ns,
            min_ns: s.min_ns,
            max_ns: s.max_ns,
            wait_ns: s.wait_ns,
            mean_ns: s.mean_ns(),
            imbalance: s.imbalance(),
        })
    }
}

/// One phase row of a bench run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPhase {
    /// Span name from the DESIGN.md §8 taxonomy.
    pub name: String,
    /// Completed occurrences.
    pub count: u64,
    /// Total inclusive nanoseconds.
    pub total_ns: u64,
    /// Total exclusive (main-thread) nanoseconds.
    pub self_ns: u64,
    /// Nanoseconds blocked on the exec-pool barrier.
    pub barrier_ns: u64,
    /// Mean inclusive nanoseconds per occurrence.
    pub mean_ns: f64,
    /// Median occurrence duration (telemetry histogram estimate).
    pub p50_ns: f64,
    /// 95th-percentile occurrence duration.
    pub p95_ns: f64,
    /// Per-worker attribution, when the phase dispatched pool regions.
    pub workers: Option<LaneSummary>,
    /// Per-rank halo attribution, when recorded.
    pub ranks: Option<LaneSummary>,
}

/// One (scenario, thread-count) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRun {
    /// apr-exec lanes the run used.
    pub threads: usize,
    /// Engine steps (or LBM steps for the scaling scenario) timed.
    pub steps: u64,
    /// Wall seconds of the timed region.
    pub wall_seconds: f64,
    /// Million lattice-site updates per second.
    pub mlups: f64,
    /// Lattice site updates performed in the timed region.
    pub site_updates: u64,
    /// Resident set size after the run (0 where unavailable).
    pub rss_bytes: u64,
    /// Physical cores the host exposed when the run was recorded (0 in
    /// artifacts that predate the field). Scaling gates read this: a 4-lane
    /// run on a 1-core host cannot speed up and must not be failed for it.
    pub cores: usize,
    /// Resilience tax, percent: extra wall time per step with sealed
    /// halos, heartbeats, and buddy checkpoints on versus the raw
    /// distributed path — recovery idle in both. Only scenarios that
    /// measure it (currently `scaling`) set this.
    pub overhead_pct: Option<f64>,
    /// Multi-tenant service-level metrics; only the `serve` scenario
    /// sets this.
    pub service: Option<ServiceSummary>,
    /// Per-phase breakdown, sorted by total wall time descending.
    pub phases: Vec<BenchPhase>,
}

/// Service-level metrics of the `serve` scenario: 16 oversubscribed
/// sessions scheduled by checkpoint-preempt-resume on a worker budget of
/// `threads` lanes (the multi-tenant analogue of the paper's many-window
/// parameter sweeps).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSummary {
    /// Sessions admitted and completed in the timed region.
    pub sessions: u64,
    /// Completed sessions per wall-clock second.
    pub sessions_per_sec: f64,
    /// Median admission → first-engine-step latency, milliseconds.
    pub p50_ttfs_ms: f64,
    /// 95th-percentile admission → first-engine-step latency, ms.
    pub p95_ttfs_ms: f64,
    /// Suspend+restore time as a percentage of total slice time.
    pub preempt_overhead_pct: f64,
    /// Warm-cache hit rate over all session setups.
    pub cache_hit_rate: f64,
    /// Total preemptions across all sessions.
    pub preempts: u64,
}

/// A full `BENCH_<scenario>.json` artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArtifact {
    /// Scenario name (`tube`, `window_move`, `scaling`).
    pub scenario: String,
    /// Git revision the artifact was produced at.
    pub git_rev: String,
    /// One entry per thread count.
    pub runs: Vec<BenchRun>,
}

/// Snapshot the recorder's phase stats into a [`BenchRun`]. Call after the
/// timed region with the recorder still holding its spans.
pub fn collect_run(
    rec: &Recorder,
    threads: usize,
    steps: u64,
    wall_seconds: f64,
    mlups: f64,
    site_updates: u64,
) -> BenchRun {
    let phases = rec
        .phase_stats()
        .into_iter()
        .map(|s| {
            let (p50_ns, p95_ns) = rec
                .phase_duration_histogram(&s.name, PERCENTILE_BUCKETS)
                .map_or((s.mean_ns(), s.max_ns as f64), |h| {
                    (h.percentile(0.50), h.percentile(0.95))
                });
            BenchPhase {
                name: s.name.clone(),
                count: s.count,
                total_ns: s.total_ns,
                self_ns: s.self_ns,
                barrier_ns: s.barrier_ns,
                mean_ns: s.mean_ns(),
                p50_ns,
                p95_ns,
                workers: LaneSummary::from_stats(&s.workers),
                ranks: LaneSummary::from_stats(&s.ranks),
            }
        })
        .collect();
    BenchRun {
        threads,
        steps,
        wall_seconds,
        mlups,
        site_updates,
        rss_bytes: read_rss_bytes(),
        cores: apr_exec::available_cores(),
        overhead_pct: None,
        service: None,
        phases,
    }
}

fn lane_summary_json(out: &mut String, s: &Option<LaneSummary>) {
    match s {
        None => out.push_str("null"),
        Some(s) => {
            let _ = write!(
                out,
                "{{\"regions\":{},\"samples\":{},\"busy_ns\":{},\"min_ns\":{},\"max_ns\":{},\"wait_ns\":{},\"mean_ns\":{},\"imbalance\":{}}}",
                s.regions,
                s.samples,
                s.busy_ns,
                s.min_ns,
                s.max_ns,
                s.wait_ns,
                number(s.mean_ns),
                number(s.imbalance),
            );
        }
    }
}

/// Serialize an artifact to its canonical JSON form.
pub fn to_json(artifact: &BenchArtifact) -> String {
    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        "{{\"schema\":{},\"scenario\":{},\"git_rev\":{},\"runs\":[",
        escape(BENCH_SCHEMA),
        escape(&artifact.scenario),
        escape(&artifact.git_rev),
    );
    for (i, run) in artifact.runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n{{\"threads\":{},\"steps\":{},\"wall_seconds\":{},\"mlups\":{},\"site_updates\":{},\"rss_bytes\":{}",
            run.threads,
            run.steps,
            number(run.wall_seconds),
            number(run.mlups),
            run.site_updates,
            run.rss_bytes,
        );
        // Emitted only when measured, so older artifacts stay diffable.
        if run.cores > 0 {
            let _ = write!(out, ",\"cores\":{}", run.cores);
        }
        if let Some(pct) = run.overhead_pct {
            let _ = write!(out, ",\"overhead_pct\":{}", number(pct));
        }
        if let Some(s) = &run.service {
            let _ = write!(
                out,
                ",\"service\":{{\"sessions\":{},\"sessions_per_sec\":{},\"p50_ttfs_ms\":{},\"p95_ttfs_ms\":{},\"preempt_overhead_pct\":{},\"cache_hit_rate\":{},\"preempts\":{}}}",
                s.sessions,
                number(s.sessions_per_sec),
                number(s.p50_ttfs_ms),
                number(s.p95_ttfs_ms),
                number(s.preempt_overhead_pct),
                number(s.cache_hit_rate),
                s.preempts,
            );
        }
        out.push_str(",\"phases\":[");
        for (j, p) in run.phases.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n {{\"name\":{},\"count\":{},\"total_ns\":{},\"self_ns\":{},\"barrier_ns\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"workers\":",
                escape(&p.name),
                p.count,
                p.total_ns,
                p.self_ns,
                p.barrier_ns,
                number(p.mean_ns),
                number(p.p50_ns),
                number(p.p95_ns),
            );
            lane_summary_json(&mut out, &p.workers);
            out.push_str(",\"ranks\":");
            lane_summary_json(&mut out, &p.ranks);
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

/// Render an artifact as a Prometheus text-format exposition, one sample
/// per `(scenario, threads)` run — the scrape-friendly mirror of the
/// `BENCH_*.json` baseline. Per-phase p50/p95 wall times carry a `phase`
/// label; the serve scenario's service block maps to its own families.
/// `bench_suite run` writes this next to the JSON and CI validates it
/// with `apr_observe::validate_exposition`.
pub fn prometheus_exposition(artifact: &BenchArtifact) -> String {
    let mut w = apr_observe::PromWriter::new();
    for run in &artifact.runs {
        let base: Vec<(&str, String)> = vec![
            ("scenario", artifact.scenario.clone()),
            ("threads", run.threads.to_string()),
        ];
        w.gauge(
            "apr_bench_wall_seconds",
            "Wall seconds of the timed region",
            &base,
            run.wall_seconds,
        );
        w.gauge(
            "apr_bench_mlups",
            "Million lattice-site updates per second",
            &base,
            run.mlups,
        );
        w.counter(
            "apr_bench_site_updates_total",
            "Lattice site updates performed in the timed region",
            &base,
            run.site_updates as f64,
        );
        w.gauge(
            "apr_bench_rss_bytes",
            "Resident set size after the run",
            &base,
            run.rss_bytes as f64,
        );
        if let Some(pct) = run.overhead_pct {
            w.gauge(
                "apr_bench_resilience_overhead_pct",
                "Resilience tax of the distributed runtime, percent",
                &base,
                pct,
            );
        }
        if let Some(s) = &run.service {
            w.gauge(
                "apr_serve_sessions_per_sec",
                "Completed sessions per wall-clock second",
                &base,
                s.sessions_per_sec,
            );
            w.gauge(
                "apr_serve_p95_ttfs_ms",
                "95th-percentile admission to first-engine-step latency",
                &base,
                s.p95_ttfs_ms,
            );
            w.gauge(
                "apr_serve_cache_hit_rate",
                "Warm-cache hit rate over all session setups",
                &base,
                s.cache_hit_rate,
            );
            w.counter(
                "apr_serve_preempts_total",
                "Total preemptions across all sessions",
                &base,
                s.preempts as f64,
            );
        }
        for p in &run.phases {
            let mut labels = base.clone();
            labels.push(("phase", p.name.clone()));
            w.gauge(
                "apr_bench_phase_p50_ns",
                "Median phase wall time, nanoseconds",
                &labels,
                p.p50_ns,
            );
            w.gauge(
                "apr_bench_phase_p95_ns",
                "95th-percentile phase wall time, nanoseconds",
                &labels,
                p.p95_ns,
            );
        }
    }
    w.finish()
}

fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .map(|f| f as u64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn req_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn req_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn parse_lane_summary(v: Option<&Value>) -> Result<Option<LaneSummary>, String> {
    match v {
        None | Some(Value::Null) => Ok(None),
        Some(v) => Ok(Some(LaneSummary {
            regions: req_u64(v, "regions")?,
            samples: req_u64(v, "samples")?,
            busy_ns: req_u64(v, "busy_ns")?,
            min_ns: req_u64(v, "min_ns")?,
            max_ns: req_u64(v, "max_ns")?,
            // Absent in pre-v0.2 artifacts; 0 keeps them diffable.
            wait_ns: v
                .get("wait_ns")
                .and_then(Value::as_f64)
                .map_or(0, |f| f as u64),
            mean_ns: req_f64(v, "mean_ns")?,
            imbalance: req_f64(v, "imbalance")?,
        })),
    }
}

/// Parse an artifact produced by [`to_json`], verifying the schema tag.
pub fn parse_artifact(text: &str) -> Result<BenchArtifact, String> {
    let doc = parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let schema = req_str(&doc, "schema")?;
    if schema != BENCH_SCHEMA {
        return Err(format!(
            "unsupported schema {schema:?} (expected {BENCH_SCHEMA:?})"
        ));
    }
    let mut runs = Vec::new();
    for run in doc
        .get("runs")
        .and_then(Value::as_arr)
        .ok_or("missing runs array")?
    {
        let mut phases = Vec::new();
        for p in run
            .get("phases")
            .and_then(Value::as_arr)
            .ok_or("missing phases array")?
        {
            phases.push(BenchPhase {
                name: req_str(p, "name")?,
                count: req_u64(p, "count")?,
                total_ns: req_u64(p, "total_ns")?,
                self_ns: req_u64(p, "self_ns")?,
                barrier_ns: req_u64(p, "barrier_ns")?,
                mean_ns: req_f64(p, "mean_ns")?,
                p50_ns: req_f64(p, "p50_ns")?,
                p95_ns: req_f64(p, "p95_ns")?,
                workers: parse_lane_summary(p.get("workers"))?,
                ranks: parse_lane_summary(p.get("ranks"))?,
            });
        }
        runs.push(BenchRun {
            threads: req_u64(run, "threads")? as usize,
            steps: req_u64(run, "steps")?,
            wall_seconds: req_f64(run, "wall_seconds")?,
            mlups: req_f64(run, "mlups")?,
            site_updates: req_u64(run, "site_updates")?,
            rss_bytes: req_u64(run, "rss_bytes")?,
            cores: run
                .get("cores")
                .and_then(Value::as_f64)
                .map_or(0, |f| f as usize),
            overhead_pct: run.get("overhead_pct").and_then(Value::as_f64),
            service: match run.get("service") {
                None | Some(Value::Null) => None,
                Some(s) => Some(ServiceSummary {
                    sessions: req_u64(s, "sessions")?,
                    sessions_per_sec: req_f64(s, "sessions_per_sec")?,
                    p50_ttfs_ms: req_f64(s, "p50_ttfs_ms")?,
                    p95_ttfs_ms: req_f64(s, "p95_ttfs_ms")?,
                    preempt_overhead_pct: req_f64(s, "preempt_overhead_pct")?,
                    cache_hit_rate: req_f64(s, "cache_hit_rate")?,
                    preempts: req_u64(s, "preempts")?,
                }),
            },
            phases,
        });
    }
    Ok(BenchArtifact {
        scenario: req_str(&doc, "scenario")?,
        git_rev: req_str(&doc, "git_rev")?,
        runs,
    })
}

/// Tuning knobs for [`diff_artifacts`].
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Relative change tolerated before a delta counts as a regression
    /// (0.15 = 15%).
    pub threshold: f64,
    /// Phases whose baseline total is below this many nanoseconds are
    /// skipped — sub-millisecond phases are timer noise.
    pub min_phase_ns: u64,
    /// Phases with fewer baseline occurrences than this are skipped — a
    /// percentile over a handful of samples is not evidence.
    pub min_phase_count: u64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self {
            threshold: 0.15,
            min_phase_ns: 1_000_000,
            min_phase_count: 8,
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffFinding {
    /// Thread count of the affected run.
    pub threads: usize,
    /// Metric label, e.g. `mlups` or `p50:apr.step`.
    pub metric: String,
    /// Baseline value.
    pub old: f64,
    /// Candidate value.
    pub new: f64,
    /// `new / old` (candidate over baseline).
    pub ratio: f64,
    /// True when the delta exceeds the threshold in the bad direction.
    pub regression: bool,
}

/// Outcome of comparing two artifacts.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Scenario both artifacts measure.
    pub scenario: String,
    /// Every out-of-tolerance delta (regressions and improvements).
    pub findings: Vec<DiffFinding>,
}

impl DiffReport {
    /// Number of findings in the regression direction.
    pub fn regressions(&self) -> usize {
        self.findings.iter().filter(|f| f.regression).count()
    }

    /// Human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = format!("bench_diff: scenario {}\n", self.scenario);
        if self.findings.is_empty() {
            out.push_str("  all metrics within tolerance\n");
            return out;
        }
        for f in &self.findings {
            let _ = writeln!(
                out,
                "  [{}] threads={} {:<28} {:>12.3} -> {:>12.3}  ({:+.1}%)",
                if f.regression {
                    "REGRESSION"
                } else {
                    "improved"
                },
                f.threads,
                f.metric,
                f.old,
                f.new,
                (f.ratio - 1.0) * 100.0,
            );
        }
        out
    }
}

/// Compare `new` against the `old` baseline with noise-aware thresholds.
/// Lower MLUPS, higher wall time, or higher per-phase p50 beyond
/// `opts.threshold` is a regression; deltas the other way are reported as
/// improvements. Runs are matched by thread count; phases by name, skipping
/// phases below the noise floor.
pub fn diff_artifacts(
    old: &BenchArtifact,
    new: &BenchArtifact,
    opts: DiffOptions,
) -> Result<DiffReport, String> {
    if old.scenario != new.scenario {
        return Err(format!(
            "scenario mismatch: {} vs {}",
            old.scenario, new.scenario
        ));
    }
    let mut findings = Vec::new();
    let mut flag = |threads: usize, metric: String, old_v: f64, new_v: f64, bad_if_above: bool| {
        if old_v <= 0.0 || new_v <= 0.0 {
            return;
        }
        let ratio = new_v / old_v;
        let (regression, out_of_band) = if bad_if_above {
            (ratio > 1.0 + opts.threshold, ratio < 1.0 - opts.threshold)
        } else {
            (ratio < 1.0 - opts.threshold, ratio > 1.0 + opts.threshold)
        };
        if regression || out_of_band {
            findings.push(DiffFinding {
                threads,
                metric,
                old: old_v,
                new: new_v,
                ratio,
                regression,
            });
        }
    };
    for old_run in &old.runs {
        let Some(new_run) = new.runs.iter().find(|r| r.threads == old_run.threads) else {
            return Err(format!(
                "candidate artifact lost the threads={} run",
                old_run.threads
            ));
        };
        let t = old_run.threads;
        flag(t, "mlups".into(), old_run.mlups, new_run.mlups, false);
        flag(
            t,
            "wall_seconds".into(),
            old_run.wall_seconds,
            new_run.wall_seconds,
            true,
        );
        if let (Some(old_s), Some(new_s)) = (&old_run.service, &new_run.service) {
            flag(
                t,
                "serve:sessions_per_sec".into(),
                old_s.sessions_per_sec,
                new_s.sessions_per_sec,
                false,
            );
            flag(
                t,
                "serve:p95_ttfs_ms".into(),
                old_s.p95_ttfs_ms,
                new_s.p95_ttfs_ms,
                true,
            );
            flag(
                t,
                "serve:preempt_overhead_pct".into(),
                old_s.preempt_overhead_pct,
                new_s.preempt_overhead_pct,
                true,
            );
        }
        for old_phase in &old_run.phases {
            if old_phase.total_ns < opts.min_phase_ns || old_phase.count < opts.min_phase_count {
                continue;
            }
            let Some(new_phase) = new_run.phases.iter().find(|p| p.name == old_phase.name) else {
                continue;
            };
            flag(
                t,
                format!("p50:{}", old_phase.name),
                old_phase.p50_ns,
                new_phase.p50_ns,
                true,
            );
        }
    }
    Ok(DiffReport {
        scenario: old.scenario.clone(),
        findings,
    })
}

/// Short git revision of the repository containing the working directory,
/// read straight from `.git` (no subprocess): `HEAD` → symbolic ref →
/// loose ref or `packed-refs`. Falls back to the `GIT_REV` environment
/// variable, then `"unknown"`.
pub fn read_git_rev() -> String {
    fn from_repo(mut dir: std::path::PathBuf) -> Option<String> {
        loop {
            let git = dir.join(".git");
            if git.is_dir() {
                let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
                let head = head.trim();
                if let Some(refname) = head.strip_prefix("ref: ") {
                    if let Ok(hash) = std::fs::read_to_string(git.join(refname)) {
                        return Some(hash.trim().to_string());
                    }
                    let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
                    return packed.lines().find_map(|l| {
                        l.strip_suffix(refname)
                            .map(|h| h.trim().to_string())
                            .filter(|h| !h.is_empty() && !h.starts_with('#'))
                    });
                }
                return Some(head.to_string());
            }
            if !dir.pop() {
                return None;
            }
        }
    }
    let rev = std::env::current_dir()
        .ok()
        .and_then(from_repo)
        .or_else(|| std::env::var("GIT_REV").ok())
        .unwrap_or_else(|| "unknown".to_string());
    rev.chars().take(12).collect()
}

/// Resident set size in bytes from `/proc/self/status` (0 elsewhere).
pub fn read_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmRSS:") {
                    let kb: u64 = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
    }
    0
}

/// Verdict of [`gate_scaling`].
#[derive(Debug, Clone, PartialEq)]
pub enum GateVerdict {
    /// The artifact was recorded on a host with fewer than 4 cores
    /// (`cores` as recorded; 0 = field absent in a pre-v0.2 artifact).
    /// Parallel speedup is physically impossible there, so the gate
    /// abstains rather than failing honest hardware.
    Skipped {
        /// Core count the artifact recorded.
        cores: usize,
    },
    /// Best multi-threaded MLUPS divided by single-thread MLUPS.
    Measured {
        /// Thread count of the best multi-threaded run.
        threads: usize,
        /// Single-thread MLUPS baseline.
        base_mlups: f64,
        /// Best multi-threaded MLUPS.
        best_mlups: f64,
        /// `best_mlups / base_mlups`.
        speedup: f64,
    },
}

/// Thread-scaling floor on a `scaling` artifact: measures the best
/// multi-threaded run against the single-thread MLUPS. Returns the
/// verdict; comparing the measured speedup to a floor is the caller's
/// policy (the CLI exits 1 below `--min-speedup`). Errors on artifacts
/// that cannot be gated at all (wrong scenario, missing runs).
pub fn gate_scaling(artifact: &BenchArtifact) -> Result<GateVerdict, String> {
    if artifact.scenario != "scaling" {
        return Err(format!(
            "gate wants a scaling artifact, got {:?}",
            artifact.scenario
        ));
    }
    let base = artifact
        .runs
        .iter()
        .find(|r| r.threads == 1)
        .ok_or("no single-thread run in artifact")?;
    let best = artifact
        .runs
        .iter()
        .filter(|r| r.threads > 1)
        .max_by(|a, b| a.mlups.total_cmp(&b.mlups))
        .ok_or("no multi-threaded run in artifact")?;
    let cores = artifact.runs.iter().map(|r| r.cores).max().unwrap_or(0);
    if cores < 4 {
        return Ok(GateVerdict::Skipped { cores });
    }
    if base.mlups <= 0.0 {
        return Err("single-thread MLUPS is zero".into());
    }
    Ok(GateVerdict::Measured {
        threads: best.threads,
        base_mlups: base.mlups,
        best_mlups: best.mlups,
        speedup: best.mlups / base.mlups,
    })
}

// ---------------------------------------------------------------------------
// Pinned scenarios
// ---------------------------------------------------------------------------

/// Scenario names `bench_suite run` accepts, in artifact order.
pub const SCENARIOS: &[&str] = &[
    "tube",
    "window_move",
    "scaling",
    "kernels",
    "serve",
    "network",
];

/// Default timed step count per scenario (all ≥ the diff noise floor's
/// minimum occurrence count, so per-phase percentiles are diffable). For
/// `serve` this is the per-session step target.
pub fn default_steps(scenario: &str) -> u64 {
    match scenario {
        "scaling" | "kernels" => 12,
        "serve" => 24,
        "network" => 20,
        _ => 30,
    }
}

/// Small APR tube problem — the same recipe as the engine/guardian tests:
/// 21×21×`nz` coarse force-driven tube along z, cubic window of coarse span
/// 8, refinement `n`, λ = 0.3.
fn tube_engine(n: usize, nz_coarse: usize, g: f64) -> apr_core::AprEngine {
    use apr_coupling::fine_tau;
    use apr_lattice::{force_driven_tube, Lattice};
    let (nx, ny) = (21usize, 21usize);
    let tau_c = 0.9;
    let lambda = 0.3;
    let coarse = force_driven_tube(nx, ny, nz_coarse, tau_c, 9.0, g);
    let span = 8usize;
    let fine_dim = span * n + 1;
    let mut fine = Lattice::new(fine_dim, fine_dim, fine_dim, fine_tau(tau_c, n, lambda));
    fine.body_force = [0.0, 0.0, g / n as f64];
    let origin = [
        (nx as f64 - 1.0) / 2.0 - span as f64 / 2.0,
        (ny as f64 - 1.0) / 2.0 - span as f64 / 2.0,
        4.0,
    ];
    let side = span as f64 * n as f64;
    apr_core::AprEngine::builder(coarse, fine, origin, n, lambda)
        .window(side * 0.22, side * 0.12, side * 0.14)
        .contact(apr_cells::ContactParams {
            cutoff: 1.2,
            strength: 5e-4,
        })
        .build()
}

/// `tube` scenario: the paper's core workload — APR window in a tube with
/// live hematocrit maintenance (RNG-driven insertion churn).
fn run_tube(steps: u64) -> Result<(u64, u64), String> {
    use apr_membrane::{Membrane, MembraneMaterial, ReferenceState};
    use apr_window::{HematocritController, InsertionContext};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    let mut eng = tube_engine(3, 48, 4e-6);
    let radius = 3.0;
    let gs = 2e-4;
    let rbc_mesh = apr_mesh::biconcave_rbc_mesh(1, radius);
    let re = Arc::new(ReferenceState::build(&rbc_mesh));
    let membrane = Arc::new(Membrane::new(re, MembraneMaterial::rbc(gs, gs * 0.05)));
    let mut rng = StdRng::seed_from_u64(99);
    let volume = rbc_mesh.enclosed_volume();
    let tile = apr_cells::RbcTile::build(
        40.0_f64.max(radius * 10.0),
        0.15,
        radius,
        radius * 0.6,
        volume,
        &mut rng,
    );
    eng.insertion = Some(InsertionContext {
        rbc_mesh,
        rbc_membrane: membrane,
        tile,
        min_gap: 0.8,
    });
    eng.controller = Some(HematocritController::new(0.12, 0.85, volume));
    eng.maintenance_interval = 10;
    let placed = eng.populate_window();
    if placed == 0 {
        return Err("tube scenario placed no RBCs".into());
    }
    time_engine("bench.tube", &mut eng, steps)
}

/// `window_move` scenario: a CTC placed off-centre with an always-armed
/// trigger so the window actually relocates (the shift must round to at
/// least one coarse cell — a CTC exactly at centre never moves).
fn run_window_move(steps: u64) -> Result<(u64, u64), String> {
    use apr_membrane::{Membrane, MembraneMaterial, ReferenceState};
    use std::sync::Arc;

    let mut eng = tube_engine(3, 48, 4e-6);
    let mesh = apr_mesh::icosphere(2, 3.5);
    let re = Arc::new(ReferenceState::build(&mesh));
    let membrane = Arc::new(Membrane::new(re, MembraneMaterial::ctc(2e-3, 1e-4)));
    let offset = apr_mesh::Vec3::new(0.0, 0.0, 4.0);
    let center = eng.anatomy.center + offset;
    let verts: Vec<apr_mesh::Vec3> = mesh.vertices.iter().map(|&v| v + center).collect();
    eng.add_ctc(membrane, verts);
    eng.trigger.trigger_distance = f64::INFINITY;
    let out = time_engine("bench.window_move", &mut eng, steps)?;
    if eng.window_moves() == 0 {
        return Err("window_move scenario never moved the window".into());
    }
    Ok(out)
}

/// Time `steps` engine steps; returns (site updates, wall ns) of the timed
/// region only. Enables the global recorder *after* setup so packing and
/// mesh generation stay out of the phase table.
fn time_engine(
    span: &'static str,
    eng: &mut apr_core::AprEngine,
    steps: u64,
) -> Result<(u64, u64), String> {
    let before = eng.site_updates();
    apr_telemetry::global().enable();
    let (_, wall_ns) = apr_telemetry::time(span, || {
        for _ in 0..steps {
            eng.step();
        }
    });
    Ok((eng.site_updates() - before, wall_ns))
}

/// `scaling` scenario: the bare LBM kernel on a 32³ periodic box — the
/// shared-memory analogue of the paper's Figs. 7–8 scaling study.
fn run_scaling(steps: u64) -> Result<(u64, u64), String> {
    let edge = 32usize;
    let mut lat = apr_lattice::Lattice::new(edge, edge, edge, 0.9);
    lat.periodic = [true, true, true];
    lat.body_force = [1e-7, 0.0, 0.0];
    for _ in 0..3 {
        lat.step(); // warm-up, untimed
    }
    apr_telemetry::global().enable();
    let (_, wall_ns) = apr_telemetry::time("bench.lbm_box", || {
        for _ in 0..steps {
            lat.step();
        }
    });
    Ok(((edge * edge * edge) as u64 * steps, wall_ns))
}

/// Resilience tax on the distributed path: the same periodic box stepped
/// through the raw [`SlabLattice`] (plain channel halos, no supervision)
/// and through [`ResilientSlabLattice`] with its full production config —
/// sealed CRC envelopes, heartbeats, buddy checkpoints — but a quiet
/// chaos plan, so recovery machinery is armed yet idle. Returns the
/// percent extra wall time per step of the resilient path.
fn measure_resilience_overhead(steps: u64) -> Result<f64, String> {
    use apr_parallel::{ResilienceConfig, ResilientSlabLattice, SlabLattice};
    use std::time::Instant;
    let edge = 32usize;
    let tasks = 4usize;
    let mut global = apr_lattice::Lattice::new(edge, edge, edge, 0.9);
    global.periodic = [true, true, true];
    global.body_force = [1e-7, 0.0, 0.0];
    let steps = steps.max(8);

    let mut raw = SlabLattice::split(&global, tasks);
    let mut resilient = ResilientSlabLattice::split(&global, tasks, ResilienceConfig::default());
    // Warm both paths (allocations, channel setup, first checkpoints).
    for _ in 0..3 {
        raw.step().map_err(|e| e.to_string())?;
        resilient.step().map_err(|e| e.to_string())?;
    }

    let t0 = Instant::now();
    for _ in 0..steps {
        raw.step().map_err(|e| e.to_string())?;
    }
    let raw_ns = t0.elapsed().as_nanos().max(1) as f64;

    let t1 = Instant::now();
    for _ in 0..steps {
        let out = resilient.step().map_err(|e| e.to_string())?;
        if !out.clean {
            return Err(format!("resilient path degraded while idle: {out:?}"));
        }
    }
    let resilient_ns = t1.elapsed().as_nanos() as f64;

    Ok((resilient_ns / raw_ns - 1.0) * 100.0)
}

/// `kernels` scenario: the SIMD fused kernel on the scaling box (paper
/// Table 1's per-node update cost). Before timing, runs a short
/// three-way bit-comparison (reference vs fused vs SIMD) and checks both
/// fused backends hold less auxiliary memory than a second distribution
/// array — so the headline MLUPS can never come from a diverged or
/// memory-cheating kernel. The timed region covers the two fused kernels
/// back to back; the reported wall is their sum, keeping the headline
/// comparable to earlier fused-only artifacts while the per-phase rows
/// (`bench.kernels.fused` / `bench.kernels.simd`) split them.
fn run_kernels(steps: u64) -> Result<(u64, u64), String> {
    use apr_lattice::KernelKind;
    let edge = 32usize;
    let make = |kind: KernelKind| {
        let mut lat = apr_lattice::Lattice::new(edge, edge, edge, 0.9);
        lat.periodic = [true, true, true];
        lat.body_force = [1e-7, 0.0, 0.0];
        lat.set_kernel(Some(kind));
        lat
    };
    let mut reference = make(KernelKind::Reference);
    let mut fused = make(KernelKind::FusedSwap);
    let mut simd = make(KernelKind::FusedSimd);
    for _ in 0..3 {
        reference.step();
        fused.step();
        simd.step();
    }
    for node in 0..reference.node_count() {
        if reference.distributions(node) != fused.distributions(node) {
            return Err(format!(
                "fused kernel diverged from reference at node {node}"
            ));
        }
        if reference.distributions(node) != simd.distributions(node) {
            return Err(format!(
                "simd kernel diverged from reference at node {node}"
            ));
        }
    }
    let second_array_bytes = reference.node_count() * apr_lattice::Q * 8;
    for (name, lat) in [("fused", &fused), ("simd", &simd)] {
        if lat.kernel_scratch_bytes() >= second_array_bytes {
            return Err(format!(
                "{name} kernel scratch ({} B) is not smaller than the second \
                 distribution array it is supposed to eliminate ({} B)",
                lat.kernel_scratch_bytes(),
                second_array_bytes
            ));
        }
    }
    apr_telemetry::global().enable();
    let (_, fused_ns) = apr_telemetry::time("bench.kernels.fused", || {
        for _ in 0..steps {
            fused.step();
        }
    });
    let (_, simd_ns) = apr_telemetry::time("bench.kernels.simd", || {
        for _ in 0..steps {
            simd.step();
        }
    });
    Ok(((edge * edge * edge) as u64 * steps * 2, fused_ns + simd_ns))
}

/// `serve` scenario: 16 sessions over 2 scenario specs oversubscribed onto
/// a `threads`-lane worker budget, scheduled by checkpoint-preempt-resume
/// with the warm-state cache live (the paper's parameter-sweep shape:
/// many window simulations, few cores, shared recipes). Returns
/// (site updates, wall ns, service summary).
fn run_serve(steps: u64, threads: usize) -> Result<(u64, u64, ServiceSummary), String> {
    use apr_serve::{JobSpec, ScenarioSpec, ServeConfig, SimService};
    let sessions = 16u64;
    let config = ServeConfig {
        workers: threads.max(1),
        lanes_per_worker: 1,
        slice_steps: (steps / 4).max(1), // ≥ 3 preemptions per session
        max_sessions: sessions as usize,
        cache_capacity: 4,
        park_bytes_cap: usize::MAX,
    };
    apr_telemetry::global().enable();
    let service = SimService::start(config);
    let specs = [ScenarioSpec::tube_small(1), ScenarioSpec::tube_small(2)];
    let (_, wall_ns) = apr_telemetry::time("bench.serve", || {
        for i in 0..sessions {
            service
                .submit(JobSpec {
                    scenario: specs[(i % 2) as usize].clone(),
                    target_steps: steps,
                })
                .expect("admission under the session cap");
        }
        let results = service.wait_all();
        assert_eq!(results.len() as u64, sessions);
    });
    let m = service.metrics();
    if m.sessions_failed > 0 {
        return Err(format!("{} serve sessions failed", m.sessions_failed));
    }
    Ok((
        m.total_site_updates,
        wall_ns,
        ServiceSummary {
            sessions: m.sessions_completed,
            sessions_per_sec: m.sessions_completed as f64 / (wall_ns as f64 / 1.0e9).max(1e-12),
            p50_ttfs_ms: m.p50_ttfs_ms,
            p95_ttfs_ms: m.p95_ttfs_ms,
            preempt_overhead_pct: m.preempt_overhead_pct,
            cache_hit_rate: m.cache_hit_rate,
            preempts: m.total_preempts,
        },
    ))
}

/// `network` scenario: the full vascular scenario zoo. Every registered
/// [`apr_scenarios`] spec — tube, pulsatile tube, stenosis, aneurysm,
/// side-branch transit, open bifurcating tree, twin-window — is cold-built
/// (geometry voxelization + window packing + warmup) and stepped `steps`
/// session steps. Setup stays untimed (it is the warm cache's job to
/// amortize it); the timed region is pure zoo stepping, so the artifact
/// tracks the cost of the paper's heterogeneous-geometry workloads.
fn run_network(steps: u64) -> Result<(u64, u64), String> {
    let mut engines = Vec::new();
    for spec in apr_scenarios::registry() {
        let eng = spec
            .build_cold()
            .map_err(|e| format!("scenario {:?} failed to build: {e}", spec.name))?;
        engines.push((spec.name, eng));
    }
    let before: Vec<u64> = engines.iter().map(|(_, e)| e.site_updates()).collect();
    apr_telemetry::global().enable();
    let (_, wall_ns) = apr_telemetry::time("bench.network", || {
        for (_, eng) in engines.iter_mut() {
            eng.step_n(steps);
        }
    });
    let mut site_updates = 0u64;
    for ((name, eng), b) in engines.iter().zip(before) {
        let delta = eng.site_updates() - b;
        if delta == 0 {
            return Err(format!("scenario {name:?} performed no site updates"));
        }
        site_updates += delta;
    }
    Ok((site_updates, wall_ns))
}

/// Run one scenario at one thread count and collect the [`BenchRun`].
/// Swaps the process-global exec pool, owns the global recorder's enable
/// state for the duration, and leaves the recorder disabled and reset.
pub fn run_scenario(scenario: &str, threads: usize, steps: u64) -> Result<BenchRun, String> {
    apr_exec::set_threads(threads);
    let rec = apr_telemetry::global();
    rec.reset();
    let mut service_summary = None;
    let result = match scenario {
        "tube" => run_tube(steps),
        "window_move" => run_window_move(steps),
        "scaling" => run_scaling(steps),
        "kernels" => run_kernels(steps),
        "serve" => run_serve(steps, threads).map(|(site_updates, wall_ns, summary)| {
            service_summary = Some(summary);
            (site_updates, wall_ns)
        }),
        "network" => run_network(steps),
        other => Err(format!(
            "unknown scenario {other:?} (expected one of {SCENARIOS:?})"
        )),
    };
    rec.disable();
    let (site_updates, wall_ns) = match result {
        Ok(v) => v,
        Err(e) => {
            rec.reset();
            return Err(e);
        }
    };
    let wall_seconds = wall_ns as f64 / 1.0e9;
    let mlups = site_updates as f64 / wall_seconds.max(1e-12) / 1.0e6;
    let mut run = collect_run(rec, threads, steps, wall_seconds, mlups, site_updates);
    rec.reset();
    if scenario == "scaling" {
        // Resilience tax rides on the scaling artifact: same box, same
        // thread count, sealed halos + supervision on vs. off.
        run.overhead_pct = Some(measure_resilience_overhead(steps)?);
        rec.reset();
    }
    run.service = service_summary;
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_artifact() -> BenchArtifact {
        BenchArtifact {
            scenario: "tube".into(),
            git_rev: "deadbeef1234".into(),
            runs: vec![BenchRun {
                threads: 2,
                steps: 40,
                wall_seconds: 1.5,
                mlups: 20.0,
                site_updates: 30_000_000,
                rss_bytes: 12_345_678,
                cores: 4,
                overhead_pct: Some(3.25),
                service: None,
                phases: vec![
                    BenchPhase {
                        name: "apr.step".into(),
                        count: 40,
                        total_ns: 1_400_000_000,
                        self_ns: 100_000_000,
                        barrier_ns: 40_000_000,
                        mean_ns: 35_000_000.0,
                        p50_ns: 34_000_000.0,
                        p95_ns: 39_000_000.0,
                        workers: Some(LaneSummary {
                            regions: 400,
                            samples: 800,
                            busy_ns: 900_000_000,
                            min_ns: 100_000,
                            max_ns: 4_000_000,
                            wait_ns: 120_000_000,
                            mean_ns: 1_125_000.0,
                            imbalance: 1.2,
                        }),
                        ranks: None,
                    },
                    BenchPhase {
                        name: "guard.inspect".into(),
                        count: 8,
                        total_ns: 900_000,
                        self_ns: 900_000,
                        barrier_ns: 0,
                        mean_ns: 112_500.0,
                        p50_ns: 110_000.0,
                        p95_ns: 118_000.0,
                        workers: None,
                        ranks: None,
                    },
                ],
            }],
        }
    }

    fn scaling_artifact(cores: usize, mlups: &[(usize, f64)]) -> BenchArtifact {
        BenchArtifact {
            scenario: "scaling".into(),
            git_rev: "deadbeef1234".into(),
            runs: mlups
                .iter()
                .map(|&(threads, mlups)| BenchRun {
                    threads,
                    steps: 10,
                    wall_seconds: 1.0,
                    mlups,
                    site_updates: 1_000_000,
                    rss_bytes: 0,
                    cores,
                    overhead_pct: None,
                    service: None,
                    phases: Vec::new(),
                })
                .collect(),
        }
    }

    #[test]
    fn gate_measures_speedup_on_multicore_artifacts() {
        let good = scaling_artifact(8, &[(1, 10.0), (4, 32.0)]);
        match gate_scaling(&good).unwrap() {
            GateVerdict::Measured {
                threads, speedup, ..
            } => {
                assert_eq!(threads, 4);
                assert!((speedup - 3.2).abs() < 1e-12);
            }
            v => panic!("expected Measured, got {v:?}"),
        }
    }

    #[test]
    fn gate_abstains_below_four_cores_and_errors_on_bad_artifacts() {
        // A 1-core host (this container, for instance) cannot show
        // parallel speedup: the gate must skip, not fail.
        let starved = scaling_artifact(1, &[(1, 10.0), (4, 9.0)]);
        assert_eq!(
            gate_scaling(&starved).unwrap(),
            GateVerdict::Skipped { cores: 1 }
        );
        // Pre-cores artifacts (field absent → 0) also skip.
        let legacy = scaling_artifact(0, &[(1, 10.0), (4, 9.0)]);
        assert_eq!(
            gate_scaling(&legacy).unwrap(),
            GateVerdict::Skipped { cores: 0 }
        );
        let wrong = BenchArtifact {
            scenario: "tube".into(),
            ..scaling_artifact(8, &[(1, 1.0), (2, 2.0)])
        };
        assert!(gate_scaling(&wrong).is_err());
        let no_base = scaling_artifact(8, &[(4, 9.0)]);
        assert!(gate_scaling(&no_base).is_err());
        let no_mt = scaling_artifact(8, &[(1, 9.0)]);
        assert!(gate_scaling(&no_mt).is_err());
    }

    #[test]
    fn artifact_round_trips_through_json() {
        let artifact = sample_artifact();
        let text = to_json(&artifact);
        let parsed = parse_artifact(&text).unwrap();
        assert_eq!(parsed, artifact);
    }

    #[test]
    fn exposition_validates_and_carries_the_key_families() {
        let mut artifact = sample_artifact();
        artifact.runs[0].service = Some(ServiceSummary {
            sessions: 16,
            sessions_per_sec: 4.0,
            p50_ttfs_ms: 12.0,
            p95_ttfs_ms: 45.0,
            preempt_overhead_pct: 2.5,
            cache_hit_rate: 0.75,
            preempts: 48,
        });
        let prom = prometheus_exposition(&artifact);
        let summary = apr_observe::validate_exposition(&prom).expect("exposition must validate");
        assert!(summary.families >= 8, "only {} families", summary.families);
        for family in [
            "apr_bench_mlups",
            "apr_bench_resilience_overhead_pct",
            "apr_serve_sessions_per_sec",
            "apr_bench_phase_p95_ns",
        ] {
            assert!(
                prom.contains(&format!("# TYPE {family} ")),
                "{family} missing"
            );
        }
        assert!(
            prom.contains("phase=\"apr.step\""),
            "phase label lost: {prom}"
        );
    }

    #[test]
    fn overhead_pct_is_optional_in_the_artifact() {
        // Pre-resilience baselines have no overhead_pct key; the writer
        // must omit it when unmeasured and the parser must accept both.
        let mut artifact = sample_artifact();
        artifact.runs[0].overhead_pct = None;
        let text = to_json(&artifact);
        assert!(!text.contains("overhead_pct"));
        assert_eq!(parse_artifact(&text).unwrap(), artifact);
    }

    #[test]
    fn service_summary_round_trips_and_diffs() {
        let mut artifact = sample_artifact();
        artifact.scenario = "serve".into();
        artifact.runs[0].service = Some(ServiceSummary {
            sessions: 16,
            sessions_per_sec: 8.0,
            p50_ttfs_ms: 40.0,
            p95_ttfs_ms: 120.0,
            preempt_overhead_pct: 12.5,
            cache_hit_rate: 0.75,
            preempts: 48,
        });
        let parsed = parse_artifact(&to_json(&artifact)).unwrap();
        assert_eq!(parsed, artifact);
        // Halved throughput and doubled tail latency are regressions.
        let mut slow = artifact.clone();
        {
            let s = slow.runs[0].service.as_mut().unwrap();
            s.sessions_per_sec /= 2.0;
            s.p95_ttfs_ms *= 2.0;
        }
        let report = diff_artifacts(&artifact, &slow, DiffOptions::default()).unwrap();
        assert_eq!(report.regressions(), 2, "{}", report.render());
        assert!(report.render().contains("serve:sessions_per_sec"));
        assert!(report.render().contains("serve:p95_ttfs_ms"));
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let text = to_json(&sample_artifact()).replace("apr.bench.v1", "apr.bench.v0");
        assert!(parse_artifact(&text).unwrap_err().contains("schema"));
    }

    #[test]
    fn diff_of_identical_artifacts_is_clean() {
        let a = sample_artifact();
        let report = diff_artifacts(&a, &a, DiffOptions::default()).unwrap();
        assert_eq!(report.regressions(), 0);
        assert!(report.findings.is_empty());
    }

    #[test]
    fn two_x_slowdown_is_flagged_as_regression() {
        let base = sample_artifact();
        let mut slow = base.clone();
        slow.runs[0].mlups /= 2.0;
        slow.runs[0].wall_seconds *= 2.0;
        for p in &mut slow.runs[0].phases {
            p.p50_ns *= 2.0;
        }
        let report = diff_artifacts(&base, &slow, DiffOptions::default()).unwrap();
        // mlups, wall_seconds, and apr.step's p50 — but NOT the sub-ms
        // guard.inspect phase, which sits under the noise floor.
        assert_eq!(report.regressions(), 3, "{}", report.render());
        assert!(report.render().contains("REGRESSION"));
        assert!(!report.render().contains("guard.inspect"));
    }

    #[test]
    fn improvements_are_reported_but_not_regressions() {
        let base = sample_artifact();
        let mut fast = base.clone();
        fast.runs[0].mlups *= 2.0;
        let report = diff_artifacts(&base, &fast, DiffOptions::default()).unwrap();
        assert_eq!(report.regressions(), 0);
        assert_eq!(report.findings.len(), 1);
        assert!(!report.findings[0].regression);
    }

    #[test]
    fn scenario_mismatch_and_missing_run_are_errors() {
        let a = sample_artifact();
        let mut b = a.clone();
        b.scenario = "scaling".into();
        assert!(diff_artifacts(&a, &b, DiffOptions::default()).is_err());
        let mut c = a.clone();
        c.runs.clear();
        assert!(diff_artifacts(&a, &c, DiffOptions::default()).is_err());
    }

    #[test]
    fn git_rev_resolves_inside_this_repo() {
        let rev = read_git_rev();
        assert_ne!(rev, "unknown");
        assert!(
            rev.len() == 12 && rev.chars().all(|c| c.is_ascii_hexdigit()),
            "unexpected rev {rev:?}"
        );
    }

    #[test]
    fn rss_is_positive_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(read_rss_bytes() > 0);
        }
    }

    /// Spin until this thread has accrued `ns` of CPU time. Busy
    /// attribution is CPU-time based, so sleeping would (correctly)
    /// register as idle — tests that want to look "busy" must burn cycles.
    fn burn_cpu(ns: u64) {
        let start = apr_exec::thread_cpu_ns();
        let wall = std::time::Instant::now();
        loop {
            std::hint::black_box((0..512u64).sum::<u64>());
            match (start, apr_exec::thread_cpu_ns()) {
                (Some(s), Some(now)) if now.saturating_sub(s) >= ns => return,
                (Some(_), Some(_)) => {}
                // Fallback if the platform clock is unavailable.
                _ => {
                    if wall.elapsed().as_nanos() as u64 >= ns {
                        return;
                    }
                }
            }
        }
    }

    #[test]
    fn skewed_pool_workload_reports_imbalance_above_one() {
        // An intentionally skewed synthetic workload: lane 0 does all the
        // work, the other lanes idle. The collected BenchRun must report a
        // worker imbalance well above 1.0 for the owning phase, while a
        // balanced workload stays near 1.0.
        let rec = apr_telemetry::global();
        rec.reset();
        rec.enable();
        let pool = apr_exec::ExecPool::new(4);
        {
            let _s = apr_telemetry::span("bench.skewed");
            pool.run(&|lane| {
                if lane == 0 {
                    burn_cpu(8_000_000);
                }
            });
        }
        {
            let _s = apr_telemetry::span("bench.balanced");
            pool.run(&|_| {
                burn_cpu(4_000_000);
            });
        }
        rec.disable();
        let run = collect_run(rec, 4, 1, 0.012, 0.0, 0);
        rec.reset();
        let phase = |name: &str| {
            run.phases
                .iter()
                .find(|p| p.name == name)
                .unwrap_or_else(|| panic!("phase {name} missing"))
                .clone()
        };
        let skewed = phase("bench.skewed").workers.expect("no worker stats");
        assert!(
            skewed.imbalance > 1.5,
            "skewed workload reported imbalance {}",
            skewed.imbalance
        );
        let balanced = phase("bench.balanced").workers.expect("no worker stats");
        assert!(
            balanced.imbalance < 1.5,
            "balanced workload reported imbalance {}",
            balanced.imbalance
        );
    }
}
