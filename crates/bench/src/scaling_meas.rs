//! Measured thread-scaling analogue of Figures 7–8.
//!
//! Summit is not available to this reproduction (DESIGN.md substitutions),
//! so alongside the analytic machine model we *measure* how the actual LBM
//! kernel scales over apr-exec worker counts on the host — the same
//! surface-to-volume story at shared-memory scale.

use apr_lattice::Lattice;

/// One measured scaling point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredPoint {
    /// apr-exec worker threads.
    pub threads: usize,
    /// Million lattice-site updates per second.
    pub mlups: f64,
    /// Speedup vs the 1-thread measurement.
    pub speedup: f64,
}

/// Time `steps` LBM steps of an `edge³` periodic box on `threads` workers.
///
/// Swaps the process-global apr-exec pool for the duration of the call;
/// deterministic chunking means every thread count produces the same
/// physics, so only wall time varies.
fn time_box(threads: usize, edge: usize, steps: usize) -> f64 {
    apr_exec::set_threads(threads);
    let mut lat = Lattice::new(edge, edge, edge, 0.9);
    lat.periodic = [true, true, true];
    lat.body_force = [1e-7, 0.0, 0.0];
    // Warm-up.
    for _ in 0..3 {
        lat.step();
    }
    // One clock path for the whole suite: the telemetry clock times the
    // measurement and, when tracing is enabled, records it as a span.
    let (_, elapsed_ns) = apr_telemetry::time("bench.lbm_box", || {
        for _ in 0..steps {
            lat.step();
        }
    });
    let dt = elapsed_ns as f64 / 1.0e9;
    (edge * edge * edge * steps) as f64 / dt / 1.0e6
}

/// Strong-scaling measurement: fixed `edge³` box over growing thread counts.
pub fn measure_strong_scaling(edge: usize, steps: usize, threads: &[usize]) -> Vec<MeasuredPoint> {
    let base = time_box(threads[0], edge, steps);
    let mut out = vec![MeasuredPoint {
        threads: threads[0],
        mlups: base,
        speedup: 1.0,
    }];
    for &t in &threads[1..] {
        let mlups = time_box(t, edge, steps);
        out.push(MeasuredPoint {
            threads: t,
            mlups,
            speedup: mlups / base,
        });
    }
    out
}

/// Weak-scaling measurement: per-thread volume held constant by growing the
/// box edge as `cbrt(threads)`.
pub fn measure_weak_scaling(
    edge_per_thread: usize,
    steps: usize,
    threads: &[usize],
) -> Vec<MeasuredPoint> {
    let mut out = Vec::new();
    let mut base_per_thread = 0.0;
    for &t in threads {
        let edge = (edge_per_thread as f64 * (t as f64).powf(1.0 / 3.0)).round() as usize;
        let mlups = time_box(t, edge.max(8), steps);
        let per_thread = mlups / t as f64;
        if base_per_thread == 0.0 {
            base_per_thread = per_thread;
        }
        out.push(MeasuredPoint {
            threads: t,
            mlups,
            speedup: per_thread / base_per_thread,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multithreading_speeds_up_the_kernel() {
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        if cores < 4 {
            return; // nothing to measure on tiny CI boxes
        }
        let pts = measure_strong_scaling(48, 6, &[1, 4]);
        assert!(
            pts[1].speedup > 1.5,
            "4 threads only {}× faster",
            pts[1].speedup
        );
    }
}
