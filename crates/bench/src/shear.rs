//! Table 1 / Figure 4 harness: variable-viscosity three-layer shear flow.
//!
//! Reproduces the paper's §3.1 verification at reduced scale: a coarse
//! Couette stack with a fine window spanning the middle (λ-viscosity)
//! layer, scored by relative L2 error against the analytic profile (Eq. 8)
//! in both the bulk and the window.

use apr_coupling::{coupled_step, fine_tau, CouplingMap};
use apr_hemo::analytic::ThreeLayerCouette;
use apr_hemo::error::l2_error_norm;
use apr_lattice::{couette_channel, Lattice};

/// One (λ, n) case of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShearCase {
    /// Refinement ratio.
    pub n: usize,
    /// Viscosity ratio λ = μ₂/μ₁.
    pub lambda: f64,
}

/// L2 errors for one case (the two columns of Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShearResult {
    /// Bulk-region relative L2 error.
    pub bulk_l2: f64,
    /// Window-region relative L2 error.
    pub window_l2: f64,
}

/// The paper's nine Table 1 cases.
pub fn table1_cases() -> Vec<ShearCase> {
    let mut out = Vec::new();
    for &n in &[2usize, 5, 10] {
        for &lambda in &[0.5, 1.0 / 3.0, 0.25] {
            out.push(ShearCase { n, lambda });
        }
    }
    out
}

/// Assembled coupled shear problem (exposed so benches can time single
/// coupled steps).
pub struct ShearProblem {
    /// Coarse Couette lattice.
    pub coarse: Lattice,
    /// Fine window lattice.
    pub fine: Lattice,
    /// Coupling map.
    pub map: CouplingMap,
    analytic: ThreeLayerCouette,
    n: usize,
}

/// Build the coupled shear problem for a case. Layer heights are
/// 7.5/8.0/8.5 coarse cells (window node-aligned on [8, 16]).
pub fn build_shear(case: ShearCase) -> ShearProblem {
    let (nx_c, ny_c, nz_c) = (4usize, 26usize, 4usize);
    let u_lid = 0.02;
    let tau_c = 1.0;
    let mut coarse = couette_channel(nx_c, ny_c, nz_c, tau_c, u_lid);
    let (y_lo, y_hi) = (8usize, 16usize);
    let fine_ny = (y_hi - y_lo) * case.n + 1;
    let mut fine = Lattice::new(
        nx_c * case.n,
        fine_ny,
        nz_c * case.n,
        fine_tau(tau_c, case.n, case.lambda),
    );
    fine.periodic = [true, false, true];
    let map = CouplingMap::new(
        &coarse,
        &fine,
        [0.0, y_lo as f64, 0.0],
        case.n,
        case.lambda,
        1.0,
    );
    map.apply_window_viscosity(&mut coarse, &fine);
    map.seed_fine_from_coarse(&coarse, &mut fine);
    let analytic = ThreeLayerCouette::new([7.5, 8.0, 8.5], [1.0, case.lambda, 1.0], u_lid);
    ShearProblem {
        coarse,
        fine,
        map,
        analytic,
        n: case.n,
    }
}

impl ShearProblem {
    /// Advance one coupled coarse step.
    pub fn step(&mut self) {
        coupled_step(&mut self.coarse, &mut self.fine, &self.map, |_, _| {});
    }

    /// Score the current state against Eq. 8.
    pub fn score(&self) -> ShearResult {
        let mut sim = Vec::new();
        let mut exact = Vec::new();
        for y in 1..self.coarse.ny - 1 {
            if (8..=16).contains(&y) {
                continue;
            }
            let node = self.coarse.idx(2, y, 2);
            sim.push(self.coarse.velocity_at(node)[0]);
            exact.push(self.analytic.velocity(y as f64 - 0.5));
        }
        let bulk_l2 = l2_error_norm(&sim, &exact);
        let mut sim = Vec::new();
        let mut exact = Vec::new();
        for j in 1..self.fine.ny - 1 {
            let node = self.fine.idx(self.fine.nx / 2, j, self.fine.nz / 2);
            sim.push(self.fine.velocity_at(node)[0]);
            exact.push(self.analytic.velocity(7.5 + j as f64 / self.n as f64));
        }
        ShearResult {
            bulk_l2,
            window_l2: l2_error_norm(&sim, &exact),
        }
    }
}

/// Run one case to steady state and score it.
pub fn run_shear(case: ShearCase, steps: usize) -> ShearResult {
    let mut p = build_shear(case);
    for _ in 0..steps {
        p.step();
    }
    p.score()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_list_matches_table1() {
        let cases = table1_cases();
        assert_eq!(cases.len(), 9);
        assert!(cases
            .iter()
            .any(|c| c.n == 10 && (c.lambda - 0.25).abs() < 1e-12));
    }

    #[test]
    fn short_run_already_beats_10_percent() {
        // The full steady-state accuracy is covered by apr-coupling's
        // integration tests; here just check the harness converges.
        let r = run_shear(ShearCase { n: 2, lambda: 0.5 }, 3000);
        assert!(r.bulk_l2 < 0.10, "bulk {}", r.bulk_l2);
        assert!(r.window_l2 < 0.12, "window {}", r.window_l2);
    }
}
