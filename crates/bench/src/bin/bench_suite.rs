//! Performance-observatory CLI: run the pinned bench scenarios and diff
//! `BENCH_*.json` artifacts against a committed baseline.
//!
//! ```text
//! bench_suite run  [--scenario all|tube|window_move|scaling|kernels|serve|network]
//!                  [--threads 1,4] [--steps N] [--out-dir DIR]
//! bench_suite diff <OLD> <NEW> [--threshold 0.15] [--warn-only]
//! bench_suite gate <SCALING.json> [--min-speedup 1.5]
//! ```
//!
//! `gate` enforces the thread-scaling floor on a `scaling` artifact: the
//! best multi-threaded run must reach `--min-speedup` × the single-thread
//! MLUPS. Artifacts recorded on hosts with fewer than 4 cores are skipped
//! with a notice (parallel speedup is physically impossible there), so the
//! gate is safe to run unconditionally in CI.
//!
//! Exit codes: 0 success / within tolerance, 1 regression detected,
//! 2 usage or I/O error. See DESIGN.md §10 and the repo-root `BENCH_*.json`
//! baselines.

use apr_bench::observatory::{
    default_steps, diff_artifacts, gate_scaling, parse_artifact, prometheus_exposition,
    read_git_rev, run_scenario, to_json, BenchArtifact, DiffOptions, GateVerdict, SCENARIOS,
};
use std::path::{Path, PathBuf};

const USAGE: &str = "usage:\n  \
    bench_suite run [--scenario all|tube|window_move|scaling|kernels|serve|network] [--threads 1,4] [--steps N] [--out-dir DIR]\n  \
    bench_suite diff <OLD.json> <NEW.json> [--threshold 0.15] [--warn-only]\n  \
    bench_suite gate <SCALING.json> [--min-speedup 1.5]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("gate") => cmd_gate(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|v| Some(v.as_str()))
            .ok_or_else(|| format!("{flag} needs a value")),
    }
}

fn cmd_run(args: &[String]) -> i32 {
    match try_run(args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("bench_suite run: {e}\n{USAGE}");
            2
        }
    }
}

fn try_run(args: &[String]) -> Result<(), String> {
    let scenario_arg = flag_value(args, "--scenario")?.unwrap_or("all");
    let scenarios: Vec<&str> = if scenario_arg == "all" {
        SCENARIOS.to_vec()
    } else if SCENARIOS.contains(&scenario_arg) {
        vec![scenario_arg]
    } else {
        return Err(format!(
            "unknown scenario {scenario_arg:?} (expected all or one of {SCENARIOS:?})"
        ));
    };
    let threads: Vec<usize> = flag_value(args, "--threads")?
        .unwrap_or("1")
        .split(',')
        .map(|t| {
            t.trim()
                .parse::<usize>()
                .map_err(|_| format!("bad thread count {t:?}"))
        })
        .collect::<Result<_, _>>()?;
    if threads.is_empty() {
        return Err("--threads list is empty".into());
    }
    let steps_override = flag_value(args, "--steps")?
        .map(|s| {
            s.parse::<u64>()
                .map_err(|_| format!("bad step count {s:?}"))
        })
        .transpose()?;
    let out_dir = PathBuf::from(flag_value(args, "--out-dir")?.unwrap_or("."));
    std::fs::create_dir_all(&out_dir).map_err(|e| format!("create {out_dir:?}: {e}"))?;

    let git_rev = read_git_rev();
    for scenario in scenarios {
        let steps = steps_override.unwrap_or_else(|| default_steps(scenario));
        let mut artifact = BenchArtifact {
            scenario: scenario.to_string(),
            git_rev: git_rev.clone(),
            runs: Vec::new(),
        };
        for &t in &threads {
            eprintln!("bench_suite: {scenario} threads={t} steps={steps} ...");
            let run = run_scenario(scenario, t, steps)?;
            eprintln!(
                "bench_suite:   {:.3} s wall, {:.2} MLUPS, {} phases",
                run.wall_seconds,
                run.mlups,
                run.phases.len()
            );
            artifact.runs.push(run);
        }
        let path = out_dir.join(format!("BENCH_{scenario}.json"));
        std::fs::write(&path, to_json(&artifact)).map_err(|e| format!("write {path:?}: {e}"))?;
        eprintln!("bench_suite: wrote {}", path.display());

        // Scrape-friendly mirror of the artifact, validated before it is
        // written: a malformed exposition must fail the run, not the
        // scraper.
        let prom = prometheus_exposition(&artifact);
        apr_observe::validate_exposition(&prom)
            .map_err(|e| format!("BENCH_{scenario} exposition invalid: {e}"))?;
        let prom_path = out_dir.join(format!("BENCH_{scenario}.prom"));
        std::fs::write(&prom_path, prom).map_err(|e| format!("write {prom_path:?}: {e}"))?;
        eprintln!("bench_suite: wrote {}", prom_path.display());
    }
    Ok(())
}

fn load(path: &str) -> Result<BenchArtifact, String> {
    let text = std::fs::read_to_string(Path::new(path)).map_err(|e| format!("read {path}: {e}"))?;
    parse_artifact(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_diff(args: &[String]) -> i32 {
    let positional: Vec<&String> = args.iter().take_while(|a| !a.starts_with("--")).collect();
    let [old_path, new_path] = positional[..] else {
        eprintln!("bench_suite diff: expected exactly two artifact paths\n{USAGE}");
        return 2;
    };
    let warn_only = args.iter().any(|a| a == "--warn-only");
    let mut opts = DiffOptions::default();
    match flag_value(args, "--threshold").map(|v| v.map(str::parse::<f64>)) {
        Ok(None) => {}
        Ok(Some(Ok(t))) if t > 0.0 => opts.threshold = t,
        _ => {
            eprintln!("bench_suite diff: --threshold needs a positive number\n{USAGE}");
            return 2;
        }
    }
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_suite diff: {e}");
            return 2;
        }
    };
    let report = match diff_artifacts(&old, &new, opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_suite diff: {e}");
            return 2;
        }
    };
    print!("{}", report.render());
    if report.regressions() > 0 && !warn_only {
        1
    } else {
        0
    }
}

fn cmd_gate(args: &[String]) -> i32 {
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("bench_suite gate: expected a scaling artifact path\n{USAGE}");
        return 2;
    };
    let min_speedup = match flag_value(args, "--min-speedup").map(|v| v.map(str::parse::<f64>)) {
        Ok(None) => 1.5,
        Ok(Some(Ok(s))) if s > 1.0 => s,
        _ => {
            eprintln!("bench_suite gate: --min-speedup needs a number > 1\n{USAGE}");
            return 2;
        }
    };
    let artifact = match load(path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_suite gate: {e}");
            return 2;
        }
    };
    match gate_scaling(&artifact) {
        Err(e) => {
            eprintln!("bench_suite gate: {e}");
            2
        }
        Ok(GateVerdict::Skipped { cores }) => {
            println!(
                "gate: SKIP — artifact recorded on {cores} core(s); \
                 parallel speedup is not measurable below 4"
            );
            0
        }
        Ok(GateVerdict::Measured {
            threads,
            base_mlups,
            best_mlups,
            speedup,
        }) => {
            println!(
                "gate: {threads}T {best_mlups:.2} MLUPS vs 1T {base_mlups:.2} MLUPS \
                 = {speedup:.2}x (floor {min_speedup:.2}x)"
            );
            if speedup >= min_speedup {
                println!("gate: PASS");
                0
            } else {
                println!("gate: FAIL — threading is not paying for itself");
                1
            }
        }
    }
}
