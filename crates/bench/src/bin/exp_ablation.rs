//! Design-choice ablations (DESIGN.md §6): non-equilibrium interface
//! transfer, IBM delta-kernel support width, and on-ramp width.
//!
//! ```sh
//! cargo run --release -p apr-bench --bin exp_ablation
//! ```

use apr_bench::hct::build_hct_engine;
use apr_bench::shear::{build_shear, run_shear, ShearCase};
use apr_ibm::DeltaKernel;

fn ablate_neq_transfer() {
    println!("== Ablation 1: non-equilibrium rescaling across the interface ==");
    println!("(paper §2.4.1's stress-continuity machinery; equilibrium-only");
    println!(" transfer discards the viscous-stress information)\n");
    println!("case            bulk_L2   window_L2");
    for (n, lambda) in [(2usize, 0.5), (2, 0.25), (5, 0.5)] {
        let full = run_shear(ShearCase { n, lambda }, 8000);
        let mut p = build_shear(ShearCase { n, lambda });
        p.map.neq_transfer = false;
        for _ in 0..8000 {
            p.step();
        }
        let ablated = p.score();
        println!(
            "n={n} λ={lambda:<5} full    {:.4}    {:.4}",
            full.bulk_l2, full.window_l2
        );
        println!(
            "n={n} λ={lambda:<5} feq-only {:.4}    {:.4}",
            ablated.bulk_l2, ablated.window_l2
        );
    }
}

fn ablate_delta_kernel() {
    println!("\n== Ablation 2: IBM delta-kernel support width ==");
    println!("(paper uses the 4-point cosine; narrower kernels are cheaper but");
    println!(" couple the membrane to fewer fluid nodes)\n");
    println!("kernel     steps   window_Ht    cells_finite");
    for kernel in [
        DeltaKernel::Cosine4,
        DeltaKernel::Peskin3,
        DeltaKernel::Linear2,
    ] {
        let mut engine = build_hct_engine(0.15, 3, 3);
        engine.kernel = kernel;
        for _ in 0..300 {
            engine.step();
        }
        let ht = engine.window_hematocrit().unwrap();
        let finite = engine.pool.iter().all(|c| c.is_finite());
        println!("{kernel:?}   300     {ht:.4}       {finite}");
    }
}

fn ablate_onramp_width() {
    println!("\n== Ablation 3: on-ramp width ==");
    println!("(paper §2.4.2: the on-ramp lets inserted cells equilibrate before");
    println!(" reaching the CTC; with no on-ramp, raw undeformed cells arrive at");
    println!(" the window proper directly)\n");
    println!("Measured proxy: distance from insertion boundary to window proper.");
    for (label, onramp_frac) in [("none", 0.0f64), ("paper-like", 0.12), ("wide", 0.20)] {
        // Express as fraction of the window half-edge; the hct engine uses
        // 0.22/0.12/0.14 — report the equilibration path length each choice
        // buys at a mean flow speed.
        let span_fine = 24.0; // 8 coarse × n=3
        let path = onramp_frac * span_fine;
        println!("  on-ramp {label:<10}: {path:.1} fine cells of equilibration path");
    }
    println!("\n(Trajectory sensitivity to on-ramp width requires the full Figure 6");
    println!(" ensemble; run `exp_figure6` with modified window anatomy for that.)");
}

fn main() {
    ablate_neq_transfer();
    ablate_delta_kernel();
    ablate_onramp_width();
}
