//! Regenerate Tables 2 and 3: resource capacity and memory estimates.
//!
//! ```sh
//! cargo run --release -p apr-bench --bin exp_tables
//! ```

use apr_bench::report::{render_table2, render_table3};

fn main() {
    println!("{}", render_table2());
    println!("Paper Table 2: APR window 4.91e-3 mL / bulk 41.0 mL / eFSI 4.98e-3 mL.");
    println!("Shape target: 3–4 orders of magnitude more volume accessible to APR.\n");

    println!("{}", render_table3());
    println!("Paper Table 3: window 7.2 GB + 1.48 GB; bulk 64.4 GB; eFSI 6.0 PB + 3.2 PB.");
    println!("Shape target: APR fits a single node; eFSI needs ~9.2 PB (10⁵× more).");
}
