//! Regenerate Figure 5: hematocrit maintenance and effective viscosity for
//! targets of 10%, 20% and 30%.
//!
//! ```sh
//! cargo run --release -p apr-bench --bin exp_figure5 [--steps N]
//! ```

use apr_bench::hct::{figure5_targets, run_hct_case};
use apr_bench::report::render_figure5;

fn main() {
    let steps: u64 = std::env::args()
        .skip_while(|a| a != "--steps")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1200);
    let mut results = Vec::new();
    for target in figure5_targets() {
        eprintln!(
            "running Ht target {:.0}% ({steps} coarse steps)…",
            target * 100.0
        );
        results.push(run_hct_case(target, steps, 42));
    }
    println!("{}", render_figure5(&results));
    println!("Shape targets (paper Figure 5): each steady_Ht holds near its");
    println!("target with a small repopulation ripple, and mu_rel rises with");
    println!("hematocrit, tracking the Pries correlation's trend.");
}
