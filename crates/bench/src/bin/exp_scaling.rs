//! Regenerate Figures 7 and 8: strong and weak scaling.
//!
//! Prints (a) the analytic Summit-model series at the paper's node counts
//! and (b) a measured apr-exec thread-scaling analogue on this host.
//!
//! ```sh
//! cargo run --release -p apr-bench --bin exp_scaling \
//!     [-- --threads N] [-- --trace-out trace.json]
//! ```
//!
//! `--threads N` caps the measured series at `N` workers (default: every
//! power of two up to the core count; equivalent to `APR_THREADS`).
//!
//! With `--trace-out`, every timed kernel box is also recorded as a
//! `bench.lbm_box` telemetry span and the run writes a Chrome-trace JSON
//! viewable in Perfetto / about://tracing.

use apr_bench::report::{render_figure7, render_figure8};
use apr_bench::scaling_meas::{measure_strong_scaling, measure_weak_scaling};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if trace_out.is_some() {
        apr_telemetry::enable();
    }
    println!("{}", render_figure7());
    println!("Paper: >6× speedup from 32 to 512 nodes, rolling off as halo and");
    println!("coupling traffic stop scaling with rank count.\n");

    println!("{}", render_figure8());
    println!("Paper: 1–4 node cases run faster than the 8-node baseline (not yet");
    println!("at full communication volume); ≥90% efficiency at 8+ nodes.\n");

    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let max_threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(cores);
    let mut threads = vec![1usize];
    while *threads.last().unwrap() * 2 <= max_threads {
        threads.push(threads.last().unwrap() * 2);
    }
    println!("Measured analogue on this host ({cores} cores, up to {max_threads} workers):");
    println!("\nStrong scaling, 64³ LBM box:");
    println!("threads   MLUPS   speedup");
    for p in measure_strong_scaling(64, 20, &threads) {
        println!("{:>7}   {:>6.1}   {:>6.2}", p.threads, p.mlups, p.speedup);
    }
    println!("\nWeak scaling, 40³ per thread:");
    println!("threads   MLUPS   efficiency");
    for p in measure_weak_scaling(40, 10, &threads) {
        println!("{:>7}   {:>6.1}   {:>6.2}", p.threads, p.mlups, p.speedup);
    }

    if let Some(path) = trace_out {
        let rec = apr_telemetry::global();
        println!(
            "\n{}",
            apr_telemetry::render_phase_table(&rec.phase_stats())
        );
        rec.write_chrome_trace(std::path::Path::new(&path))
            .expect("write trace");
        println!("wrote Chrome trace to {path} (open in Perfetto)");
    }
}
