//! Regenerate Table 1 / Figure 4: variable-viscosity shear-flow L2 errors.
//!
//! ```sh
//! cargo run --release -p apr-bench --bin exp_table1 [--full]
//! ```
//!
//! Default runs the n ∈ {2, 5} cases (minutes); `--full` adds n = 10
//! (the paper's largest ratio; substantially longer).

use apr_bench::report::render_table1;
use apr_bench::shear::{run_shear, ShearCase};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let ns: &[usize] = if full { &[2, 5, 10] } else { &[2, 5] };
    let lambdas = [0.5, 1.0 / 3.0, 0.25];
    let mut results = Vec::new();
    for &n in ns {
        for &lambda in &lambdas {
            let case = ShearCase { n, lambda };
            // Diffusive settling time grows with the viscosity contrast.
            let steps = (8000.0 / lambda.sqrt()) as usize;
            eprintln!("running n = {n}, λ = {lambda:.3} ({steps} coarse steps)…");
            let r = run_shear(case, steps);
            results.push((case, r));
        }
    }
    println!("{}", render_table1(&results));
    println!("Paper reference (Table 1): bulk ≈ 0.0095–0.0101 across all cases;");
    println!("window ≈ 0.018 (λ=1/2), 0.031 (λ=1/3), 0.039 (λ=1/4).");
    println!("Shape target: window error grows as λ falls; bulk error flat in n.");
}
