//! Regenerate Figure 6: CTC radial trajectory in the expanding channel,
//! APR vs eFSI, over an ensemble of RBC seeds.
//!
//! ```sh
//! cargo run --release -p apr-bench --bin exp_figure6 [--seeds K] [--steps N]
//! ```

use apr_bench::trajectory::{run_apr_channel, run_efsi_channel, trajectory_deviation};

fn arg(flag: &str, default: u64) -> u64 {
    std::env::args()
        .skip_while(|a| a != flag)
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let seeds = arg("--seeds", 4);
    let steps = arg("--steps", 3500);

    println!("Figure 6 — CTC radial trajectory, eFSI ensemble vs APR");
    println!("seed   model   z_final   r_final   site_updates   window_moves");
    let mut efsi_sites = 0u64;
    let mut apr_sites = 0u64;
    let mut deviations = Vec::new();
    for seed in 0..seeds {
        let (efsi, sites_e) = run_efsi_channel(seed, steps);
        let (apr, sites_a, moves) = run_apr_channel(seed, steps, 3);
        efsi_sites += sites_e;
        apr_sites += sites_a;
        if let (Some(&(ze, re)), Some(&(za, ra))) = (efsi.last(), apr.last()) {
            println!(
                "{seed:>4}   eFSI   {ze:>7.2}   {re:>7.3}   {sites_e:>12}   {:>6}",
                "-"
            );
            println!("{seed:>4}   APR    {za:>7.2}   {ra:>7.3}   {sites_a:>12}   {moves:>6}");
        }
        let dev = trajectory_deviation(&efsi, &apr);
        deviations.push(dev);
    }
    let mean_dev = deviations.iter().sum::<f64>() / deviations.len().max(1) as f64;
    println!("\nMean radial deviation APR vs eFSI (fraction of inlet radius): {mean_dev:.3}");
    // The executed eFSI runs at the coarse spacing (so this host can afford
    // it); the paper's eFSI resolves the WHOLE channel at the window's fine
    // spacing. Cost parity therefore scales the measured eFSI updates by
    // n³ (space) × n (time): that is the model the node-hour saving in §3.3
    // compares against.
    let n = 3u64;
    let efsi_fine_equiv = efsi_sites * n.pow(3) * n;
    println!(
        "Compute proxy: fine-resolution eFSI ≈ {} site-updates vs APR {} ({:.0}× saving; executed coarse eFSI: {})",
        efsi_fine_equiv,
        apr_sites,
        efsi_fine_equiv as f64 / apr_sites.max(1) as f64,
        efsi_sites,
    );
    println!("\nShape targets (paper §3.3): APR recovers the eFSI trajectory band");
    println!("(runs differ by RBC placement even within one model) at >10× fewer");
    println!("node-hours; here the site-update ratio plays that role.");
}
