//! Opening vascular trees to flow: inlet and outlet boundary planes.
//!
//! A voxelized capsule tree is *sealed* — a body force inside it just
//! builds a compensating pressure gradient and the steady flow is zero
//! (correct physics, useless hemodynamics). Real vasculature drains: this
//! module stamps a prescribed-velocity disc near the root inlet and
//! constant-pressure discs near every leaf end, turning the lumen into a
//! flowing network.

use crate::tree::VascularTree;
use apr_lattice::{Boundary, Lattice, NodeClass};
use apr_mesh::Vec3;

/// Indices of leaf segments (no children).
pub fn leaf_segments(tree: &VascularTree) -> Vec<usize> {
    (0..tree.segments.len())
        .filter(|&i| {
            !tree
                .segments
                .iter()
                .enumerate()
                .any(|(j, s)| s.parent == i && j != i)
        })
        .collect()
}

/// Stamp BC nodes in a slab: fluid nodes whose axial position relative to
/// the plane through `point` (normal `normal`) lies in `[axial_lo,
/// axial_hi]`, within `radius` of the axis. Returns the converted count.
#[allow(clippy::too_many_arguments)]
fn stamp_slab(
    lat: &mut Lattice,
    origin: Vec3,
    dx: f64,
    point: Vec3,
    normal: Vec3,
    radius: f64,
    axial_range: (f64, f64),
    bc: impl Fn(&mut Lattice, usize),
) -> usize {
    let n = normal.normalized();
    let mut count = 0;
    for z in 0..lat.nz {
        for y in 0..lat.ny {
            for x in 0..lat.nx {
                let node = lat.idx(x, y, z);
                if lat.flag(node) != NodeClass::Fluid {
                    continue;
                }
                let pos = origin + Vec3::new(x as f64, y as f64, z as f64) * dx;
                let rel = pos - point;
                let axial = rel.dot(n);
                if axial < axial_range.0 * dx || axial > axial_range.1 * dx {
                    continue;
                }
                let radial = (rel - n * axial).norm();
                if radial <= radius {
                    bc(lat, node);
                    count += 1;
                }
            }
        }
    }
    count
}

/// Report of the inlet/outlet stamping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeFlowPorts {
    /// Inlet velocity-BC nodes created.
    pub inlet_nodes: usize,
    /// Outlet pressure-BC nodes created (all leaves).
    pub outlet_nodes: usize,
    /// Number of leaf outlets.
    pub outlets: usize,
}

/// Open a voxelized tree to flow: a plug-velocity inlet disc just inside
/// the root, and ρ = 1 pressure outlets just inside every leaf end.
/// `u_inlet` is the inlet speed in lattice units along the root direction.
///
/// # Panics
/// Panics if no inlet or outlet nodes could be stamped (geometry/lattice
/// mismatch).
pub fn open_tree_flow(
    lat: &mut Lattice,
    tree: &VascularTree,
    origin: Vec3,
    dx: f64,
    u_inlet: f64,
) -> TreeFlowPorts {
    let root = tree.segments[0];
    let dir = (root.b - root.a).normalized();
    let inlet_point = root.a + dir * (2.0 * dx);
    let u = dir * u_inlet;
    let inlet_nodes = stamp_slab(
        lat,
        origin,
        dx,
        inlet_point,
        dir,
        root.ra,
        (-0.6, 0.6),
        |lat, node| lat.set_boundary(node, Boundary::Velocity([u.x, u.y, u.z])),
    );
    assert!(inlet_nodes > 0, "no inlet nodes stamped — check origin/dx");

    let mut outlet_nodes = 0;
    let leaves = leaf_segments(tree);
    for &li in &leaves {
        let seg = tree.segments[li];
        let d = (seg.b - seg.a).normalized();
        // A thin disc mid-lumen cannot drain the inflow (flow recirculates
        // behind it off the sealed cap); convert the whole cap region into
        // a pressure sponge instead.
        let point = seg.b - d * (2.0 * dx);
        let cap_extent = (2.0 * dx + seg.rb + dx) / dx;
        outlet_nodes += stamp_slab(
            lat,
            origin,
            dx,
            point,
            d,
            seg.rb + dx,
            (-0.6, cap_extent),
            |lat, node| lat.set_boundary(node, Boundary::Pressure(1.0)),
        );
    }
    assert!(
        outlet_nodes > 0,
        "no outlet nodes stamped — check origin/dx"
    );
    TreeFlowPorts {
        inlet_nodes,
        outlet_nodes,
        outlets: leaves.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeParams;
    use crate::voxelize::voxelize;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn leaves_of_a_three_level_tree() {
        let mut rng = StdRng::seed_from_u64(1);
        let tree = VascularTree::grow(
            &TreeParams {
                levels: 3,
                ..Default::default()
            },
            Vec3::ZERO,
            Vec3::Z,
            &mut rng,
        );
        // 1 + 2 + 4 segments; the 4 deepest are leaves.
        assert_eq!(leaf_segments(&tree), vec![3, 4, 5, 6]);
    }

    #[test]
    fn opened_tree_develops_through_flow() {
        let mut rng = StdRng::seed_from_u64(5);
        let params = TreeParams {
            root_radius: 5.0,
            root_length: 30.0,
            levels: 2,
            branch_angle: 0.4,
            asymmetry: 0.5,
            jitter: 0.0,
        };
        let tree = VascularTree::grow(&params, Vec3::new(16.0, 16.0, 2.0), Vec3::Z, &mut rng);
        let mut lat = Lattice::new(32, 32, 64, 0.9);
        voxelize(&mut lat, &tree.sdf(), Vec3::ZERO, 1.0);
        let ports = open_tree_flow(&mut lat, &tree, Vec3::ZERO, 1.0, 0.02);
        assert!(ports.inlet_nodes > 10, "{ports:?}");
        assert_eq!(ports.outlets, 2);
        for _ in 0..600 {
            lat.step();
        }
        let rho_mid = lat.moments_at(lat.idx(16, 16, 12)).0;
        for _ in 0..200 {
            lat.step();
        }
        // Sustained flow along the root interior.
        let u = lat.velocity_at(lat.idx(16, 16, 12))[2];
        assert!(u > 0.005, "root flow u = {u}");
        // The inlet sits at a higher pressure than the ρ = 1 outlets — that
        // head *is* what drives the flow — but it must be steady, not a
        // mass leak.
        let rho_end = lat.moments_at(lat.idx(16, 16, 12)).0;
        assert!(
            (rho_end - rho_mid).abs() < 0.01,
            "density still drifting: {rho_mid} -> {rho_end}"
        );
        assert!(rho_end > 1.0, "no pressure head upstream: {rho_end}");
    }
}
