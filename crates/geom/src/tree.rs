//! Synthetic vascular trees.
//!
//! Stand-in for the paper's patient-derived upper-body and cerebral
//! geometries (DESIGN.md substitution table): recursive bifurcating trees
//! whose child radii follow Murray's law (`r₀³ = r₁³ + r₂³`), producing
//! branching, curving lumens with a well-defined centreline for the moving
//! window to traverse.

use crate::sdf::{Sdf, TaperedCapsule, Union};
use apr_mesh::Vec3;
use rand::Rng;

/// One vessel segment of a tree.
#[derive(Debug, Clone, Copy)]
pub struct Segment {
    /// Start point.
    pub a: Vec3,
    /// End point.
    pub b: Vec3,
    /// Radius at the start.
    pub ra: f64,
    /// Radius at the end.
    pub rb: f64,
    /// Tree depth (root = 0).
    pub depth: usize,
    /// Parent segment index (root points at itself).
    pub parent: usize,
}

/// A bifurcating vascular tree.
#[derive(Debug, Clone)]
pub struct VascularTree {
    /// All segments, root first.
    pub segments: Vec<Segment>,
}

/// Parameters for synthetic tree generation.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Root vessel radius.
    pub root_radius: f64,
    /// Root segment length (children shrink with radius).
    pub root_length: f64,
    /// Bifurcation levels.
    pub levels: usize,
    /// Half-angle of bifurcations, radians.
    pub branch_angle: f64,
    /// Murray's-law asymmetry: child radii `r·(α, β)` with
    /// `α³ + β³ = 1`; 0.5 = symmetric.
    pub asymmetry: f64,
    /// Random jitter applied to branch directions (0 = deterministic).
    pub jitter: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            root_radius: 20.0,
            root_length: 120.0,
            levels: 4,
            branch_angle: 0.5,
            asymmetry: 0.5,
            jitter: 0.1,
        }
    }
}

impl VascularTree {
    /// Grow a tree from `root_start` along `direction`.
    pub fn grow<R: Rng>(
        params: &TreeParams,
        root_start: Vec3,
        direction: Vec3,
        rng: &mut R,
    ) -> Self {
        assert!(params.levels >= 1);
        assert!((0.0..1.0).contains(&params.asymmetry) && params.asymmetry > 0.0);
        let mut segments = Vec::new();
        let dir = direction.normalized();
        // Murray split factors: f³ + g³ = 1 with f/g set by asymmetry.
        let s = params.asymmetry;
        let f = s.powf(1.0 / 3.0) / (s + (1.0 - s)).powf(1.0 / 3.0);
        let g = (1.0 - s).powf(1.0 / 3.0);
        // Normalize to satisfy Murray exactly.
        let norm = (f.powi(3) + g.powi(3)).powf(1.0 / 3.0);
        let (f, g) = (f / norm, g / norm);

        let root = Segment {
            a: root_start,
            b: root_start + dir * params.root_length,
            ra: params.root_radius,
            rb: params.root_radius,
            depth: 0,
            parent: 0,
        };
        segments.push(root);
        let mut frontier = vec![0usize];
        for depth in 1..params.levels {
            let mut next = Vec::new();
            for &pi in &frontier {
                let p = segments[pi];
                let axis = (p.b - p.a).normalized();
                let side = axis.any_orthonormal();
                for (sign, factor) in [(1.0, f), (-1.0, g)] {
                    let jitter_angle = if params.jitter > 0.0 {
                        rng.gen_range(-params.jitter..params.jitter)
                    } else {
                        0.0
                    };
                    let angle = sign * params.branch_angle + jitter_angle;
                    let child_dir = axis.rotate_about(side, angle);
                    let radius = p.rb * factor;
                    let length = params.root_length * (radius / params.root_radius);
                    let seg = Segment {
                        a: p.b,
                        b: p.b + child_dir * length,
                        ra: radius,
                        rb: radius,
                        depth,
                        parent: pi,
                    };
                    next.push(segments.len());
                    segments.push(seg);
                }
            }
            frontier = next;
        }
        Self { segments }
    }

    /// SDF of the whole tree lumen.
    pub fn sdf(&self) -> Union {
        Union(
            self.segments
                .iter()
                .map(|s| {
                    Box::new(TaperedCapsule {
                        a: s.a,
                        b: s.b,
                        ra: s.ra,
                        rb: s.rb,
                    }) as Box<dyn Sdf>
                })
                .collect(),
        )
    }

    /// Axis-aligned bounding box (inflated by the local radii).
    pub fn bounding_box(&self) -> (Vec3, Vec3) {
        let mut lo = Vec3::splat(f64::MAX);
        let mut hi = Vec3::splat(f64::MIN);
        for s in &self.segments {
            let r = Vec3::splat(s.ra.max(s.rb));
            lo = lo.min(s.a - r).min(s.b - r);
            hi = hi.max(s.a + r).max(s.b + r);
        }
        (lo, hi)
    }

    /// Total centreline length.
    pub fn total_length(&self) -> f64 {
        self.segments.iter().map(|s| (s.b - s.a).norm()).sum()
    }

    /// Approximate lumen volume (sum of conical frusta).
    pub fn lumen_volume(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| {
                let l = (s.b - s.a).norm();
                std::f64::consts::PI / 3.0 * l * (s.ra * s.ra + s.ra * s.rb + s.rb * s.rb)
            })
            .sum()
    }

    /// A root-to-leaf centreline path (following the larger child), as a
    /// polyline of points — the track for a moving window (Figure 1's
    /// dashed line).
    pub fn main_path(&self) -> Vec<Vec3> {
        let mut path = vec![self.segments[0].a, self.segments[0].b];
        let mut current = 0usize;
        loop {
            // Find the larger child of `current`.
            let child = self
                .segments
                .iter()
                .enumerate()
                .filter(|(i, s)| s.parent == current && *i != current)
                .max_by(|(_, s1), (_, s2)| s1.ra.total_cmp(&s2.ra));
            match child {
                Some((i, s)) => {
                    path.push(s.b);
                    current = i;
                }
                None => break,
            }
        }
        path
    }

    /// Sample a point at arc-length fraction `t ∈ [0, 1]` along a polyline.
    pub fn sample_path(path: &[Vec3], t: f64) -> Vec3 {
        assert!(path.len() >= 2, "path needs at least two points");
        let total: f64 = path.windows(2).map(|w| (w[1] - w[0]).norm()).sum();
        let mut remaining = t.clamp(0.0, 1.0) * total;
        for w in path.windows(2) {
            let l = (w[1] - w[0]).norm();
            if remaining <= l {
                return w[0] + (w[1] - w[0]) * (remaining / l);
            }
            remaining -= l;
        }
        *path.last().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tree() -> VascularTree {
        let mut rng = StdRng::seed_from_u64(42);
        VascularTree::grow(&TreeParams::default(), Vec3::ZERO, Vec3::Z, &mut rng)
    }

    #[test]
    fn segment_count_is_binary_tree() {
        let t = tree();
        // levels = 4: 1 + 2 + 4 + 8 = 15 segments.
        assert_eq!(t.segments.len(), 15);
    }

    #[test]
    fn murrays_law_holds_at_bifurcations() {
        let t = tree();
        for (i, parent) in t.segments.iter().enumerate() {
            let children: Vec<_> = t
                .segments
                .iter()
                .enumerate()
                .filter(|(j, s)| s.parent == i && *j != i)
                .map(|(_, s)| s.ra)
                .collect();
            if children.len() == 2 {
                let lhs = parent.rb.powi(3);
                let rhs = children[0].powi(3) + children[1].powi(3);
                assert!((lhs - rhs).abs() / lhs < 1e-9, "Murray violated at {i}");
            }
        }
    }

    #[test]
    fn children_connect_to_parents() {
        let t = tree();
        for (i, s) in t.segments.iter().enumerate().skip(1) {
            let p = t.segments[s.parent];
            assert!((s.a - p.b).norm() < 1e-12, "segment {i} disconnected");
        }
    }

    #[test]
    fn sdf_contains_centerline() {
        let t = tree();
        let sdf = t.sdf();
        for s in &t.segments {
            let mid = (s.a + s.b) * 0.5;
            assert!(sdf.contains(mid));
        }
        let (lo, _) = t.bounding_box();
        assert!(!sdf.contains(lo - Vec3::splat(10.0)));
    }

    #[test]
    fn main_path_descends_the_tree() {
        let t = tree();
        let path = t.main_path();
        // Root + one segment endpoint per level.
        assert_eq!(path.len(), 2 + 3);
        // Path samples interpolate monotonically in arc length.
        let p0 = VascularTree::sample_path(&path, 0.0);
        let p1 = VascularTree::sample_path(&path, 1.0);
        assert!((p0 - path[0]).norm() < 1e-12);
        assert!((p1 - *path.last().unwrap()).norm() < 1e-12);
        let mid = VascularTree::sample_path(&path, 0.5);
        assert!(t.sdf().contains(mid), "mid-path point must be in the lumen");
    }

    #[test]
    fn radii_shrink_with_depth() {
        let t = tree();
        for s in &t.segments {
            if s.depth > 0 {
                assert!(s.ra < t.segments[0].ra);
            }
        }
    }
}
