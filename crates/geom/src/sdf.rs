//! Signed distance functions for vascular geometry.
//!
//! Negative inside the lumen, positive outside. The voxelizer classifies
//! lattice nodes by SDF sign, reproducing how the paper's OFF geometries
//! become LBM flag fields.

use apr_mesh::Vec3;

/// A signed distance field: negative inside the fluid lumen.
pub trait Sdf: Send + Sync {
    /// Signed distance at `p`.
    fn distance(&self, p: Vec3) -> f64;

    /// Is `p` inside the lumen?
    fn contains(&self, p: Vec3) -> bool {
        self.distance(p) < 0.0
    }
}

/// Infinite circular cylinder along an arbitrary axis.
#[derive(Debug, Clone, Copy)]
pub struct Cylinder {
    /// A point on the axis.
    pub origin: Vec3,
    /// Axis direction (normalized at construction).
    pub axis: Vec3,
    /// Lumen radius.
    pub radius: f64,
}

impl Cylinder {
    /// New cylinder.
    pub fn new(origin: Vec3, axis: Vec3, radius: f64) -> Self {
        assert!(radius > 0.0, "radius must be positive");
        Self {
            origin,
            axis: axis.normalized(),
            radius,
        }
    }
}

impl Sdf for Cylinder {
    fn distance(&self, p: Vec3) -> f64 {
        let rel = p - self.origin;
        let axial = rel.dot(self.axis);
        let radial = (rel - self.axis * axial).norm();
        radial - self.radius
    }
}

/// Finite capsule (cylinder with spherical caps) — one vessel segment.
#[derive(Debug, Clone, Copy)]
pub struct Capsule {
    /// Segment start.
    pub a: Vec3,
    /// Segment end.
    pub b: Vec3,
    /// Radius.
    pub radius: f64,
}

impl Capsule {
    /// New capsule segment.
    pub fn new(a: Vec3, b: Vec3, radius: f64) -> Self {
        assert!(radius > 0.0, "radius must be positive");
        Self { a, b, radius }
    }
}

impl Sdf for Capsule {
    fn distance(&self, p: Vec3) -> f64 {
        let ab = self.b - self.a;
        let t = ((p - self.a).dot(ab) / ab.norm_sq()).clamp(0.0, 1.0);
        let closest = self.a + ab * t;
        p.distance(closest) - self.radius
    }
}

/// Tapered capsule: radius varies linearly from `ra` at `a` to `rb` at `b`
/// (vessel taper / expansion).
#[derive(Debug, Clone, Copy)]
pub struct TaperedCapsule {
    /// Segment start.
    pub a: Vec3,
    /// Segment end.
    pub b: Vec3,
    /// Radius at `a`.
    pub ra: f64,
    /// Radius at `b`.
    pub rb: f64,
}

impl Sdf for TaperedCapsule {
    fn distance(&self, p: Vec3) -> f64 {
        let ab = self.b - self.a;
        let t = ((p - self.a).dot(ab) / ab.norm_sq()).clamp(0.0, 1.0);
        let closest = self.a + ab * t;
        let r = self.ra + (self.rb - self.ra) * t;
        p.distance(closest) - r
    }
}

/// Axis-aligned box lumen.
#[derive(Debug, Clone, Copy)]
pub struct BoxLumen {
    /// Lower corner.
    pub min: Vec3,
    /// Upper corner.
    pub max: Vec3,
}

impl Sdf for BoxLumen {
    fn distance(&self, p: Vec3) -> f64 {
        let center = (self.min + self.max) * 0.5;
        let half = (self.max - self.min) * 0.5;
        let q = (p - center).abs() - half;
        let outside = q.max(Vec3::ZERO).norm();
        let inside = q.max_component().min(0.0);
        outside + inside
    }
}

/// Union of SDFs (fluid where any member is fluid).
pub struct Union(pub Vec<Box<dyn Sdf>>);

impl Sdf for Union {
    fn distance(&self, p: Vec3) -> f64 {
        self.0
            .iter()
            .map(|s| s.distance(p))
            .fold(f64::MAX, f64::min)
    }
}

/// The paper's Figure 6 expanding channel: a circular tube of radius `r0`
/// stepping up to `r1` at axial position `z_expand` (axis +z), with a
/// smooth conical transition of length `taper`.
#[derive(Debug, Clone, Copy)]
pub struct ExpandingChannel {
    /// Inlet radius.
    pub r0: f64,
    /// Outlet radius.
    pub r1: f64,
    /// Axial position where the expansion begins.
    pub z_expand: f64,
    /// Length of the conical transition.
    pub taper: f64,
    /// Channel axis origin (centreline passes through here along +z).
    pub origin: Vec3,
}

impl Sdf for ExpandingChannel {
    fn distance(&self, p: Vec3) -> f64 {
        let rel = p - self.origin;
        let z = rel.z;
        let radial = (rel.x * rel.x + rel.y * rel.y).sqrt();
        let r = if z <= self.z_expand {
            self.r0
        } else if z >= self.z_expand + self.taper {
            self.r1
        } else {
            self.r0 + (self.r1 - self.r0) * (z - self.z_expand) / self.taper
        };
        radial - r
    }
}

/// Sphere lumen — used as a saccular aneurysm bulge unioned onto a parent
/// vessel.
#[derive(Debug, Clone, Copy)]
pub struct Sphere {
    /// Center.
    pub center: Vec3,
    /// Radius.
    pub radius: f64,
}

impl Sphere {
    /// New sphere.
    pub fn new(center: Vec3, radius: f64) -> Self {
        assert!(radius > 0.0, "radius must be positive");
        Self { center, radius }
    }
}

impl Sdf for Sphere {
    fn distance(&self, p: Vec3) -> f64 {
        p.distance(self.center) - self.radius
    }
}

/// Circular tube along +z with a cosine-smoothed axisymmetric constriction
/// (a stenosis). The lumen radius is `r0` everywhere except within
/// `length / 2` of `center_z`, where it narrows smoothly to `throat` at the
/// constriction center:
///
/// `r(z) = r0 − (r0 − throat) · ½(1 + cos(2π (z − center_z) / length))`.
///
/// Away from the constriction the profile is z-invariant, so the tube can
/// wrap a periodic axis.
#[derive(Debug, Clone, Copy)]
pub struct StenosedTube {
    /// Nominal lumen radius.
    pub r0: f64,
    /// Radius at the narrowest point.
    pub throat: f64,
    /// Axial position of the constriction center.
    pub center_z: f64,
    /// Total axial extent of the constriction.
    pub length: f64,
    /// Axis origin (centreline passes through here along +z).
    pub origin: Vec3,
}

impl StenosedTube {
    /// Lumen radius at axial position `z` (world coordinates).
    pub fn radius_at(&self, z: f64) -> f64 {
        let s = z - self.origin.z - self.center_z;
        if s.abs() >= self.length / 2.0 {
            self.r0
        } else {
            let bump = 0.5 * (1.0 + (2.0 * std::f64::consts::PI * s / self.length).cos());
            self.r0 - (self.r0 - self.throat) * bump
        }
    }
}

impl Sdf for StenosedTube {
    fn distance(&self, p: Vec3) -> f64 {
        let rel = p - self.origin;
        let radial = (rel.x * rel.x + rel.y * rel.y).sqrt();
        radial - self.radius_at(p.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cylinder_distance_is_radial() {
        let c = Cylinder::new(Vec3::ZERO, Vec3::Z, 2.0);
        assert!(c.contains(Vec3::new(1.0, 0.0, 5.0)));
        assert!(!c.contains(Vec3::new(3.0, 0.0, -7.0)));
        assert!((c.distance(Vec3::new(5.0, 0.0, 100.0)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn capsule_caps_are_round() {
        let c = Capsule::new(Vec3::ZERO, Vec3::new(10.0, 0.0, 0.0), 1.0);
        assert!(c.contains(Vec3::new(5.0, 0.5, 0.0)));
        // Beyond the end, distance measured from the endpoint.
        assert!((c.distance(Vec3::new(12.0, 0.0, 0.0)) - 1.0).abs() < 1e-12);
        assert!(c.contains(Vec3::new(-0.5, 0.0, 0.0)));
    }

    #[test]
    fn tapered_capsule_interpolates_radius() {
        let t = TaperedCapsule {
            a: Vec3::ZERO,
            b: Vec3::new(10.0, 0.0, 0.0),
            ra: 1.0,
            rb: 3.0,
        };
        assert!((t.distance(Vec3::new(0.0, 1.0, 0.0))).abs() < 1e-9);
        assert!((t.distance(Vec3::new(10.0, 3.0, 0.0))).abs() < 1e-9);
        assert!((t.distance(Vec3::new(5.0, 2.0, 0.0))).abs() < 1e-9);
    }

    #[test]
    fn box_lumen_sign_convention() {
        let b = BoxLumen {
            min: Vec3::ZERO,
            max: Vec3::splat(4.0),
        };
        assert!(b.contains(Vec3::splat(2.0)));
        assert!(!b.contains(Vec3::splat(5.0)));
        assert!((b.distance(Vec3::new(2.0, 2.0, 6.0)) - 2.0).abs() < 1e-12);
        assert!((b.distance(Vec3::splat(2.0)) + 2.0).abs() < 1e-12);
    }

    #[test]
    fn union_takes_minimum() {
        let u = Union(vec![
            Box::new(Capsule::new(Vec3::ZERO, Vec3::X, 0.5)),
            Box::new(Capsule::new(
                Vec3::new(5.0, 0.0, 0.0),
                Vec3::new(6.0, 0.0, 0.0),
                0.5,
            )),
        ]);
        assert!(u.contains(Vec3::new(0.5, 0.0, 0.0)));
        assert!(u.contains(Vec3::new(5.5, 0.0, 0.0)));
        assert!(!u.contains(Vec3::new(3.0, 0.0, 0.0)));
    }

    #[test]
    fn sphere_distance_is_radial() {
        let s = Sphere::new(Vec3::new(1.0, 2.0, 3.0), 2.0);
        assert!(s.contains(Vec3::new(1.0, 2.0, 4.5)));
        assert!((s.distance(Vec3::new(1.0, 2.0, 6.0)) - 1.0).abs() < 1e-12);
        assert!((s.distance(s.center) + 2.0).abs() < 1e-12);
    }

    #[test]
    fn stenosed_tube_throat_and_far_field() {
        let t = StenosedTube {
            r0: 6.0,
            throat: 3.0,
            center_z: 20.0,
            length: 16.0,
            origin: Vec3::ZERO,
        };
        // Far from the constriction the radius is r0.
        assert!((t.radius_at(0.0) - 6.0).abs() < 1e-12);
        assert!((t.radius_at(40.0) - 6.0).abs() < 1e-12);
        // At the center the radius is the throat.
        assert!((t.radius_at(20.0) - 3.0).abs() < 1e-12);
        // The profile joins smoothly (continuous) at the edges.
        assert!((t.radius_at(12.0) - 6.0).abs() < 1e-9);
        assert!((t.radius_at(28.0) - 6.0).abs() < 1e-9);
        assert!(t.contains(Vec3::new(2.9, 0.0, 20.0)));
        assert!(!t.contains(Vec3::new(3.1, 0.0, 20.0)));
        assert!(t.contains(Vec3::new(5.5, 0.0, 0.0)));
    }

    #[test]
    fn expanding_channel_profile() {
        let e = ExpandingChannel {
            r0: 10.0,
            r1: 20.0,
            z_expand: 40.0,
            taper: 10.0,
            origin: Vec3::ZERO,
        };
        assert!(e.contains(Vec3::new(9.0, 0.0, 10.0)));
        assert!(!e.contains(Vec3::new(11.0, 0.0, 10.0)));
        assert!(e.contains(Vec3::new(19.0, 0.0, 80.0)));
        // Mid-taper radius is 15.
        assert!((e.distance(Vec3::new(15.0, 0.0, 45.0))).abs() < 1e-9);
    }
}
