//! SDF → lattice flag-field voxelization.
//!
//! The paper's geometry pipeline ("The simulation domain is specified using
//! a geometry in the form of an OFF file") reduces to exactly this: classify
//! every lattice node as lumen (fluid) or wall/exterior.

use crate::sdf::Sdf;
use apr_lattice::{Boundary, Lattice};
use apr_mesh::Vec3;

/// Map an SDF onto a lattice: nodes inside the lumen stay fluid; nodes
/// within one spacing outside become walls (bounce-back surface); nodes
/// deeper outside become exterior (excluded from fluid-point accounting).
///
/// `origin` is the world position of lattice node `(0,0,0)` and `dx` the
/// lattice spacing in world units.
pub fn voxelize(lattice: &mut Lattice, sdf: &dyn Sdf, origin: Vec3, dx: f64) {
    assert!(dx > 0.0, "lattice spacing must be positive");
    for z in 0..lattice.nz {
        for y in 0..lattice.ny {
            for x in 0..lattice.nx {
                let p = origin + Vec3::new(x as f64, y as f64, z as f64) * dx;
                let d = sdf.distance(p);
                let node = lattice.idx(x, y, z);
                if d < 0.0 {
                    // Lumen: leave fluid.
                } else if d < 1.5 * dx {
                    lattice.set_boundary(node, Boundary::Wall);
                } else {
                    lattice.set_boundary(node, Boundary::Exterior);
                }
            }
        }
    }
}

/// Count lattice fluid nodes inside the lumen (for memory accounting and
/// effective-geometry checks).
pub fn fluid_fraction(lattice: &Lattice) -> f64 {
    lattice.fluid_node_count() as f64 / lattice.node_count() as f64
}

/// World position of a lattice node.
pub fn node_position(origin: Vec3, dx: f64, x: usize, y: usize, z: usize) -> Vec3 {
    origin + Vec3::new(x as f64, y as f64, z as f64) * dx
}

/// World-to-lattice coordinate conversion (fractional).
pub fn world_to_lattice(origin: Vec3, dx: f64, p: Vec3) -> Vec3 {
    (p - origin) / dx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdf::Cylinder;
    use apr_lattice::NodeClass;

    #[test]
    fn cylinder_voxelization_classifies_correctly() {
        let mut lat = Lattice::new(21, 21, 8, 1.0);
        lat.periodic = [false, false, true];
        let sdf = Cylinder::new(Vec3::new(10.0, 10.0, 0.0), Vec3::Z, 7.0);
        voxelize(&mut lat, &sdf, Vec3::ZERO, 1.0);
        assert_eq!(lat.flag(lat.idx(10, 10, 3)), NodeClass::Fluid);
        assert_eq!(lat.flag(lat.idx(17, 10, 3)), NodeClass::Wall); // d = 0
        assert_eq!(lat.flag(lat.idx(0, 0, 3)), NodeClass::Exterior);
        // Fluid fraction ≈ π·7²/21² ≈ 0.35.
        let f = fluid_fraction(&lat);
        assert!((f - 0.35).abs() < 0.06, "fluid fraction {f}");
    }

    #[test]
    fn coordinate_round_trip() {
        let origin = Vec3::new(5.0, -2.0, 1.0);
        let dx = 0.5;
        let p = node_position(origin, dx, 3, 4, 5);
        let l = world_to_lattice(origin, dx, p);
        assert!((l - Vec3::new(3.0, 4.0, 5.0)).norm() < 1e-12);
    }

    #[test]
    fn walls_seal_the_lumen() {
        // Every fluid node adjacent to non-fluid must see a Wall (not
        // Exterior), so bounce-back has a defined partner.
        let mut lat = Lattice::new(15, 15, 4, 1.0);
        lat.periodic = [false, false, true];
        let sdf = Cylinder::new(Vec3::new(7.0, 7.0, 0.0), Vec3::Z, 5.0);
        voxelize(&mut lat, &sdf, Vec3::ZERO, 1.0);
        for z in 0..lat.nz {
            for y in 0..lat.ny {
                for x in 0..lat.nx {
                    let node = lat.idx(x, y, z);
                    if lat.flag(node) != NodeClass::Fluid {
                        continue;
                    }
                    for i in 1..apr_lattice::Q {
                        if let Some(nb) = lat.link_neighbor(node, i) {
                            assert_ne!(
                                lat.flag(nb),
                                NodeClass::Exterior,
                                "fluid node ({x},{y},{z}) touches exterior"
                            );
                        }
                    }
                }
            }
        }
    }
}
