//! Surface meshing of vessel geometry — produces the OFF artifacts the
//! paper's pipeline consumes ("The simulation domain is specified using a
//! geometry in the form of an OFF file").
//!
//! Each vessel segment becomes a parametric tube triangulation; trees
//! concatenate their segments' tubes (branch junctions overlap — fine for
//! visualization and voxelization, which only need a watertight *SDF*, not
//! a watertight mesh).

use crate::tree::VascularTree;
use apr_mesh::{TriMesh, Vec3};

/// Triangulated open tube around segment `a → b` with radius interpolating
/// `ra → rb`: `rings` cross-sections of `sides` vertices each.
///
/// # Panics
/// Panics for degenerate segments or fewer than 3 sides / 2 rings.
pub fn tube_surface(a: Vec3, b: Vec3, ra: f64, rb: f64, sides: usize, rings: usize) -> TriMesh {
    assert!(sides >= 3, "need at least 3 sides");
    assert!(rings >= 2, "need at least 2 rings");
    let axis = b - a;
    assert!(axis.norm() > 1e-12, "degenerate segment");
    let n = axis.normalized();
    let u = n.any_orthonormal();
    let v = n.cross(u);

    let mut vertices = Vec::with_capacity(sides * rings);
    for ring in 0..rings {
        let t = ring as f64 / (rings - 1) as f64;
        let center = a + axis * t;
        let r = ra + (rb - ra) * t;
        for s in 0..sides {
            let phi = 2.0 * std::f64::consts::PI * s as f64 / sides as f64;
            vertices.push(center + (u * phi.cos() + v * phi.sin()) * r);
        }
    }
    let mut triangles = Vec::with_capacity(2 * sides * (rings - 1));
    for ring in 0..rings - 1 {
        for s in 0..sides {
            let s2 = (s + 1) % sides;
            let i00 = (ring * sides + s) as u32;
            let i01 = (ring * sides + s2) as u32;
            let i10 = ((ring + 1) * sides + s) as u32;
            let i11 = ((ring + 1) * sides + s2) as u32;
            triangles.push([i00, i01, i11]);
            triangles.push([i00, i11, i10]);
        }
    }
    TriMesh::new(vertices, triangles)
}

/// Concatenate two meshes (no vertex welding).
pub fn merge_meshes(a: &TriMesh, b: &TriMesh) -> TriMesh {
    let offset = a.vertex_count() as u32;
    let mut vertices = a.vertices.clone();
    vertices.extend_from_slice(&b.vertices);
    let mut triangles = a.triangles.clone();
    triangles.extend(
        b.triangles
            .iter()
            .map(|t| [t[0] + offset, t[1] + offset, t[2] + offset]),
    );
    TriMesh::new(vertices, triangles)
}

/// Surface mesh of a whole vascular tree (one tube per segment).
pub fn tree_surface(tree: &VascularTree, sides: usize, rings_per_segment: usize) -> TriMesh {
    let mut out: Option<TriMesh> = None;
    for seg in &tree.segments {
        let tube = tube_surface(seg.a, seg.b, seg.ra, seg.rb, sides, rings_per_segment);
        out = Some(match out {
            None => tube,
            Some(acc) => merge_meshes(&acc, &tube),
        });
    }
    out.expect("tree has segments")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tube_counts_and_radius() {
        let m = tube_surface(Vec3::ZERO, Vec3::new(0.0, 0.0, 10.0), 2.0, 2.0, 12, 5);
        assert_eq!(m.vertex_count(), 60);
        assert_eq!(m.triangle_count(), 2 * 12 * 4);
        // Every vertex sits at radius 2 from the axis.
        for v in &m.vertices {
            let r = (v.x * v.x + v.y * v.y).sqrt();
            assert!((r - 2.0).abs() < 1e-12, "r = {r}");
        }
    }

    #[test]
    fn tapered_tube_interpolates_radius() {
        let m = tube_surface(Vec3::ZERO, Vec3::new(0.0, 0.0, 10.0), 2.0, 4.0, 8, 3);
        // Middle ring (z = 5) has radius 3.
        for v in m.vertices.iter().skip(8).take(8) {
            let r = (v.x * v.x + v.y * v.y).sqrt();
            assert!((r - 3.0).abs() < 1e-12);
            assert!((v.z - 5.0).abs() < 1e-12);
        }
    }

    #[test]
    fn tube_area_approaches_analytic() {
        let (r, l) = (3.0, 20.0);
        let m = tube_surface(Vec3::ZERO, Vec3::new(l, 0.0, 0.0), r, r, 48, 24);
        let analytic = 2.0 * std::f64::consts::PI * r * l;
        assert!(
            (m.surface_area() - analytic).abs() / analytic < 0.01,
            "area {} vs {analytic}",
            m.surface_area()
        );
    }

    #[test]
    fn tree_surface_round_trips_through_off() {
        let mut rng = StdRng::seed_from_u64(2);
        let tree = VascularTree::grow(
            &TreeParams {
                levels: 2,
                ..Default::default()
            },
            Vec3::ZERO,
            Vec3::Z,
            &mut rng,
        );
        let mesh = tree_surface(&tree, 10, 4);
        assert_eq!(mesh.triangle_count(), tree.segments.len() * 2 * 10 * 3);
        let mut buf = Vec::new();
        apr_mesh::off_io::write_off(&mesh, &mut buf).unwrap();
        let back = apr_mesh::off_io::read_off(&buf[..]).unwrap();
        assert_eq!(back.vertex_count(), mesh.vertex_count());
        assert_eq!(back.triangle_count(), mesh.triangle_count());
    }

    #[test]
    fn surface_vertices_lie_on_sdf_zero_set() {
        let mut rng = StdRng::seed_from_u64(3);
        let tree = VascularTree::grow(
            &TreeParams {
                levels: 2,
                jitter: 0.0,
                ..Default::default()
            },
            Vec3::ZERO,
            Vec3::Z,
            &mut rng,
        );
        let sdf = tree.sdf();
        let mesh = tree_surface(&tree, 8, 3);
        use crate::sdf::Sdf;
        // Tube surfaces sit on (or inside, near junctions) the union SDF.
        for v in &mesh.vertices {
            let d = sdf.distance(*v);
            assert!(d < 1e-9, "vertex outside lumen surface: d = {d}");
        }
    }
}
