//! Vascular geometry substrate.
//!
//! The paper's experiments run in tubes, expanding channels, cubes and
//! patient-derived vasculatures (upper body, cerebral). This crate supplies
//! the same domains as signed distance functions ([`sdf`]), synthetic
//! Murray's-law arterial trees standing in for the patient geometries
//! ([`tree`], see DESIGN.md substitutions), and the voxelizer that maps any
//! of them onto LBM flag fields ([`voxelize`]).

pub mod centerline;
pub mod flow;
pub mod sdf;
pub mod surface;
pub mod tree;
pub mod voxelize;

pub use centerline::Centerline;
pub use flow::{leaf_segments, open_tree_flow, TreeFlowPorts};
pub use sdf::{
    BoxLumen, Capsule, Cylinder, ExpandingChannel, Sdf, Sphere, StenosedTube, TaperedCapsule, Union,
};
pub use surface::{merge_meshes, tree_surface, tube_surface};
pub use tree::{Segment, TreeParams, VascularTree};
pub use voxelize::{fluid_fraction, node_position, voxelize, world_to_lattice};
