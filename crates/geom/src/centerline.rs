//! Centreline path utilities for the moving window.
//!
//! Figure 1's red boxes "moving along the dashed black line" are window
//! waypoints on a vessel centreline; this module turns a polyline
//! centreline into window-sized waypoints, arc-length parameterization and
//! curvature estimates (sharp bends need more frequent window moves).

use apr_mesh::Vec3;

/// A polyline centreline with arc-length indexing.
#[derive(Debug, Clone)]
pub struct Centerline {
    /// Polyline points.
    pub points: Vec<Vec3>,
    cumulative: Vec<f64>,
}

impl Centerline {
    /// New centreline from at least two points.
    pub fn new(points: Vec<Vec3>) -> Self {
        assert!(points.len() >= 2, "centreline needs at least two points");
        let mut cumulative = Vec::with_capacity(points.len());
        let mut acc = 0.0;
        cumulative.push(0.0);
        for w in points.windows(2) {
            acc += (w[1] - w[0]).norm();
            cumulative.push(acc);
        }
        Self { points, cumulative }
    }

    /// Total arc length.
    pub fn length(&self) -> f64 {
        *self.cumulative.last().unwrap()
    }

    /// Point at arc length `s` (clamped).
    pub fn at(&self, s: f64) -> Vec3 {
        let s = s.clamp(0.0, self.length());
        match self.cumulative.binary_search_by(|c| c.total_cmp(&s)) {
            Ok(i) => self.points[i],
            Err(i) => {
                let (a, b) = (self.points[i - 1], self.points[i]);
                let (sa, sb) = (self.cumulative[i - 1], self.cumulative[i]);
                a + (b - a) * ((s - sa) / (sb - sa).max(1e-300))
            }
        }
    }

    /// Unit tangent at arc length `s` (central difference).
    pub fn tangent(&self, s: f64) -> Vec3 {
        let h = (self.length() * 1e-4).max(1e-9);
        let forward = self.at((s + h).min(self.length()));
        let backward = self.at((s - h).max(0.0));
        (forward - backward).normalized()
    }

    /// Discrete curvature at interior waypoint `i` (inverse circumradius of
    /// three consecutive points).
    pub fn curvature_at(&self, i: usize) -> f64 {
        if i == 0 || i + 1 >= self.points.len() {
            return 0.0;
        }
        let (a, b, c) = (self.points[i - 1], self.points[i], self.points[i + 1]);
        let ab = b - a;
        let bc = c - b;
        let ac = c - a;
        let cross = ab.cross(bc).norm();
        let denom = ab.norm() * bc.norm() * ac.norm();
        if denom < 1e-300 {
            0.0
        } else {
            2.0 * cross / denom
        }
    }

    /// Window waypoints: positions spaced `spacing` apart along the path —
    /// the window-move targets of Figure 1.
    pub fn waypoints(&self, spacing: f64) -> Vec<Vec3> {
        assert!(spacing > 0.0, "spacing must be positive");
        let mut out = Vec::new();
        let mut s = 0.0;
        while s <= self.length() {
            out.push(self.at(s));
            s += spacing;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_arc_length() {
        let c = Centerline::new(vec![Vec3::ZERO, Vec3::new(10.0, 0.0, 0.0)]);
        assert!((c.length() - 10.0).abs() < 1e-12);
        assert!((c.at(5.0) - Vec3::new(5.0, 0.0, 0.0)).norm() < 1e-12);
        assert!((c.tangent(5.0) - Vec3::X).norm() < 1e-9);
        assert_eq!(c.curvature_at(0), 0.0);
    }

    #[test]
    fn circle_curvature_is_inverse_radius() {
        let r = 5.0;
        let points: Vec<Vec3> = (0..=32)
            .map(|i| {
                let t = i as f64 / 32.0 * std::f64::consts::PI;
                Vec3::new(r * t.cos(), r * t.sin(), 0.0)
            })
            .collect();
        let c = Centerline::new(points);
        let k = c.curvature_at(16);
        assert!((k - 1.0 / r).abs() < 0.01 / r, "κ = {k}");
        // Half-circle arc length ≈ πr.
        assert!((c.length() - std::f64::consts::PI * r).abs() < 0.05 * r);
    }

    #[test]
    fn waypoints_cover_the_path() {
        let c = Centerline::new(vec![
            Vec3::ZERO,
            Vec3::new(10.0, 0.0, 0.0),
            Vec3::new(10.0, 10.0, 0.0),
        ]);
        let w = c.waypoints(2.5);
        assert_eq!(w.len(), 9); // 20 / 2.5 + 1
        assert!((w[0] - Vec3::ZERO).norm() < 1e-12);
        // Consecutive waypoints are `spacing` apart in arc length.
        for pair in w.windows(2) {
            assert!((pair[1] - pair[0]).norm() <= 2.5 + 1e-9);
        }
    }
}
