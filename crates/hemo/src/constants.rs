//! Physical constants used throughout the paper's experiments.
//!
//! All values are in SI units unless stated otherwise and are taken directly
//! from the paper (Sections 3.1–3.6) or its cited references.

/// Dynamic viscosity of blood plasma, Pa·s (1.2 cP, Fung 2013; paper §3.2).
pub const PLASMA_VISCOSITY: f64 = 1.2e-3;

/// Dynamic viscosity of whole blood modeled as a bulk fluid, Pa·s (4 cP,
/// paper §3.3/§3.5).
pub const WHOLE_BLOOD_VISCOSITY: f64 = 4.0e-3;

/// Mass density of blood plasma, kg/m³.
pub const PLASMA_DENSITY: f64 = 1025.0;

/// Mass density of whole blood, kg/m³.
pub const BLOOD_DENSITY: f64 = 1060.0;

/// Kinematic viscosity of plasma, m²/s.
pub const PLASMA_KINEMATIC_VISCOSITY: f64 = PLASMA_VISCOSITY / PLASMA_DENSITY;

/// Kinematic viscosity of whole blood, m²/s.
pub const BLOOD_KINEMATIC_VISCOSITY: f64 = WHOLE_BLOOD_VISCOSITY / BLOOD_DENSITY;

/// Healthy RBC membrane shear elastic modulus, N/m (5·10⁻⁶, Skalak 1973;
/// paper §3.2).
pub const RBC_SHEAR_MODULUS: f64 = 5.0e-6;

/// CTC membrane shear elastic modulus, N/m (1·10⁻⁴, paper §3.3) — cancer
/// cells are markedly stiffer than RBCs.
pub const CTC_SHEAR_MODULUS: f64 = 1.0e-4;

/// Skalak area-preservation constant `C` for RBC membranes (dimensionless).
/// Large values penalize local area dilation; 100 is the conventional choice
/// for near-incompressible RBC membranes.
pub const RBC_SKALAK_C: f64 = 100.0;

/// RBC bending modulus, J (≈50 k_B T ≈ 2·10⁻¹⁹ J, Helfrich-type models).
pub const RBC_BENDING_MODULUS: f64 = 2.0e-19;

/// Nominal undeformed RBC diameter, m (biconcave discocyte).
pub const RBC_DIAMETER: f64 = 7.82e-6;

/// Volume of a single RBC, m³ (≈94 µm³ for a healthy discocyte).
pub const RBC_VOLUME: f64 = 94e-18;

/// Surface area of a single RBC, m² (≈135 µm²).
pub const RBC_SURFACE_AREA: f64 = 135e-12;

/// Nominal CTC diameter, m (~15 µm for typical epithelial tumor cells).
pub const CTC_DIAMETER: f64 = 15.0e-6;

/// Systemic hematocrit of healthy human blood (paper §1: blood ≈45% cells).
pub const SYSTEMIC_HEMATOCRIT: f64 = 0.45;

/// Total blood volume of an average human body, m³ (5 L, paper §1).
pub const TOTAL_BLOOD_VOLUME: f64 = 5.0e-3;

/// Total RBC count of an average human body (25·10¹², paper §1).
pub const TOTAL_RBC_COUNT: f64 = 25.0e12;

/// Bytes of storage per fluid lattice point used in the paper's memory
/// estimates (§3.6: "a lower bound of 408 bytes of data per fluid point").
pub const BYTES_PER_FLUID_POINT: u64 = 408;

/// Bytes of storage per RBC used in the paper's memory estimates (§3.6:
/// "51 kilobytes per RBC", 1280 elements and 642 vertices).
pub const BYTES_PER_RBC: u64 = 51 * 1024;

/// Number of surface-mesh vertices per RBC at 3 Loop-subdivision steps of an
/// icosahedron (paper §3.6).
pub const RBC_MESH_VERTICES: usize = 642;

/// Number of surface-mesh triangles per RBC at 3 subdivision steps (§3.6).
pub const RBC_MESH_ELEMENTS: usize = 1280;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn viscosity_ratio_plasma_to_blood_is_in_paper_range() {
        // The paper sweeps λ ∈ {1/2, 1/3, 1/4}; physical plasma:blood is 0.3.
        let lambda = PLASMA_VISCOSITY / WHOLE_BLOOD_VISCOSITY;
        assert!(lambda > 0.25 && lambda < 0.5, "λ = {lambda}");
    }

    #[test]
    fn rbc_mesh_memory_matches_paper_figure() {
        // 642 vertices and 1280 elements cost ~51 kB per cell (§3.6). A
        // vertex carries position/velocity/force (9 f64) and each element a
        // handful of connectivity and reference-state entries; the paper's
        // 51 kB lower bound implies ~65 B per stored float-equivalent slot.
        assert_eq!(RBC_MESH_VERTICES, 642);
        assert_eq!(RBC_MESH_ELEMENTS, 1280);
        assert_eq!(BYTES_PER_RBC, 52_224);
    }

    #[test]
    fn euler_characteristic_of_rbc_mesh_is_spherical() {
        // V - E + F = 2 for a closed genus-0 surface; E = 3F/2.
        let v = RBC_MESH_VERTICES as i64;
        let f = RBC_MESH_ELEMENTS as i64;
        let e = 3 * f / 2;
        assert_eq!(v - e + f, 2);
    }

    #[test]
    fn systemic_numbers_are_consistent() {
        // 25e12 RBCs at 94 µm³ each is ≈2.35 L ≈ 45–50% of 5 L.
        let packed = TOTAL_RBC_COUNT * RBC_VOLUME;
        let fraction = packed / TOTAL_BLOOD_VOLUME;
        assert!((0.40..0.55).contains(&fraction), "fraction = {fraction}");
    }
}
