//! SI ↔ lattice unit conversion.
//!
//! The lattice Boltzmann solver works in lattice units where the grid spacing
//! `Δx`, time step `Δt` and reference density `ρ₀` are all 1. A
//! [`UnitConverter`] fixes the physical magnitudes of those three scales and
//! derives every other conversion from them, mirroring how HARVEY-style codes
//! parameterize a run from `(Δx, Δt or τ, ρ)`.

use crate::error::ConfigError;

/// Lattice speed of sound squared for the D3Q19 model, `c_s² = 1/3`.
pub const CS2: f64 = 1.0 / 3.0;

/// Bidirectional converter between SI and lattice units.
///
/// Construct with [`UnitConverter::new`] from the physical grid spacing, time
/// step and density, or with [`UnitConverter::from_viscosity`] to pick the
/// time step that realizes a desired relaxation time `τ` for a given physical
/// kinematic viscosity (the usual way LBM runs are set up).
///
/// ```
/// use apr_hemo::UnitConverter;
/// // 0.5 µm window grid carrying plasma (ν = 1.2 cP / 1025 kg·m⁻³) at τ = 1.
/// let c = UnitConverter::from_viscosity(0.5e-6, 1.2e-3 / 1025.0, 1.0, 1025.0);
/// // A 0.1 m/s inlet maps to a safely subsonic lattice velocity…
/// assert!(c.velocity_to_lattice(0.1) < 0.2);
/// // …and the RBC shear modulus lands in an explicit-scheme-friendly range.
/// let gs = c.surface_modulus_to_lattice(5e-6);
/// assert!(gs > 1e-6 && gs < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitConverter {
    /// Physical length of one lattice spacing, m.
    pub dx: f64,
    /// Physical duration of one time step, s.
    pub dt: f64,
    /// Physical density of one lattice density unit, kg/m³.
    pub rho: f64,
}

impl UnitConverter {
    /// New converter from explicit scales. All must be positive and finite;
    /// invalid scales are reported as a [`ConfigError`] rather than a panic
    /// so driver code can surface them to the operator.
    pub fn try_new(dx: f64, dt: f64, rho: f64) -> Result<Self, ConfigError> {
        for (name, value) in [("dx", dx), ("dt", dt), ("rho", rho)] {
            if !(value > 0.0 && value.is_finite()) {
                return Err(ConfigError::NonPositive { name, value });
            }
        }
        Ok(Self { dx, dt, rho })
    }

    /// New converter from explicit scales. All must be positive.
    ///
    /// # Panics
    /// Panics if any scale is not strictly positive and finite. Use
    /// [`UnitConverter::try_new`] to handle the error instead.
    pub fn new(dx: f64, dt: f64, rho: f64) -> Self {
        Self::try_new(dx, dt, rho).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`UnitConverter::from_viscosity`].
    pub fn try_from_viscosity(
        dx: f64,
        nu_si: f64,
        tau: f64,
        rho: f64,
    ) -> Result<Self, ConfigError> {
        if tau.is_nan() || tau <= 0.5 {
            return Err(ConfigError::UnphysicalTau { value: tau });
        }
        if !(nu_si.is_finite() && nu_si > 0.0) {
            return Err(ConfigError::NonPositive {
                name: "kinematic viscosity",
                value: nu_si,
            });
        }
        let nu_lattice = CS2 * (tau - 0.5);
        let dt = nu_lattice * dx * dx / nu_si;
        Self::try_new(dx, dt, rho)
    }

    /// Choose `Δt` so that the physical kinematic viscosity `nu_si` (m²/s)
    /// maps onto the relaxation time `tau` at grid spacing `dx`.
    ///
    /// From `ν_lattice = c_s²(τ − 1/2)` and `ν_lattice = ν_SI·Δt/Δx²`.
    ///
    /// # Panics
    /// Panics if `tau <= 0.5` (unphysical: non-positive viscosity). Use
    /// [`UnitConverter::try_from_viscosity`] to handle the error instead.
    pub fn from_viscosity(dx: f64, nu_si: f64, tau: f64, rho: f64) -> Self {
        Self::try_from_viscosity(dx, nu_si, tau, rho).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Relaxation time realizing a physical kinematic viscosity on this grid.
    pub fn tau_for_viscosity(&self, nu_si: f64) -> f64 {
        self.viscosity_to_lattice(nu_si) / CS2 + 0.5
    }

    /// Physical kinematic viscosity (m²/s) realized by relaxation time `tau`.
    pub fn viscosity_for_tau(&self, tau: f64) -> f64 {
        self.viscosity_to_si(CS2 * (tau - 0.5))
    }

    // --- lengths -----------------------------------------------------------

    /// SI length (m) → lattice units.
    pub fn length_to_lattice(&self, l: f64) -> f64 {
        l / self.dx
    }

    /// Lattice length → SI (m).
    pub fn length_to_si(&self, l: f64) -> f64 {
        l * self.dx
    }

    // --- times -------------------------------------------------------------

    /// SI time (s) → lattice steps.
    pub fn time_to_lattice(&self, t: f64) -> f64 {
        t / self.dt
    }

    /// Lattice steps → SI time (s).
    pub fn time_to_si(&self, t: f64) -> f64 {
        t * self.dt
    }

    // --- velocity ----------------------------------------------------------

    /// SI velocity (m/s) → lattice units. Keep the result well below the
    /// lattice speed of sound (≈0.577) for accuracy; ≲0.1 is conventional.
    pub fn velocity_to_lattice(&self, u: f64) -> f64 {
        u * self.dt / self.dx
    }

    /// Lattice velocity → SI (m/s).
    pub fn velocity_to_si(&self, u: f64) -> f64 {
        u * self.dx / self.dt
    }

    // --- viscosity ---------------------------------------------------------

    /// SI kinematic viscosity (m²/s) → lattice units.
    pub fn viscosity_to_lattice(&self, nu: f64) -> f64 {
        nu * self.dt / (self.dx * self.dx)
    }

    /// Lattice kinematic viscosity → SI (m²/s).
    pub fn viscosity_to_si(&self, nu: f64) -> f64 {
        nu * self.dx * self.dx / self.dt
    }

    // --- density / mass ----------------------------------------------------

    /// SI density (kg/m³) → lattice units.
    pub fn density_to_lattice(&self, r: f64) -> f64 {
        r / self.rho
    }

    /// Lattice density → SI (kg/m³).
    pub fn density_to_si(&self, r: f64) -> f64 {
        r * self.rho
    }

    // --- forces ------------------------------------------------------------

    /// SI force (N) → lattice units. Lattice force unit = ρ·Δx⁴/Δt².
    pub fn force_to_lattice(&self, f: f64) -> f64 {
        f / (self.rho * self.dx.powi(4) / (self.dt * self.dt))
    }

    /// Lattice force → SI (N).
    pub fn force_to_si(&self, f: f64) -> f64 {
        f * self.rho * self.dx.powi(4) / (self.dt * self.dt)
    }

    /// SI body-force density (N/m³ = kg·m⁻²·s⁻²) → lattice units
    /// (lattice unit = ρ·Δx/Δt²).
    pub fn body_force_to_lattice(&self, f: f64) -> f64 {
        f * self.dt * self.dt / (self.rho * self.dx)
    }

    /// Lattice body-force density → SI (N/m³).
    pub fn body_force_to_si(&self, f: f64) -> f64 {
        f * self.rho * self.dx / (self.dt * self.dt)
    }

    // --- pressure / stress --------------------------------------------------

    /// SI pressure (Pa) → lattice units (lattice unit = ρ·Δx²/Δt²).
    pub fn pressure_to_lattice(&self, p: f64) -> f64 {
        p * self.dt * self.dt / (self.rho * self.dx * self.dx)
    }

    /// Lattice pressure → SI (Pa).
    pub fn pressure_to_si(&self, p: f64) -> f64 {
        p * self.rho * self.dx * self.dx / (self.dt * self.dt)
    }

    // --- membrane moduli ----------------------------------------------------

    /// SI surface shear modulus (N/m) → lattice units (unit = ρ·Δx³/Δt²).
    pub fn surface_modulus_to_lattice(&self, g: f64) -> f64 {
        g * self.dt * self.dt / (self.rho * self.dx.powi(3))
    }

    /// SI bending modulus (J = N·m) → lattice units (unit = ρ·Δx⁵/Δt²).
    pub fn bending_modulus_to_lattice(&self, e: f64) -> f64 {
        e * self.dt * self.dt / (self.rho * self.dx.powi(5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn converter() -> UnitConverter {
        // 0.5 µm grid, plasma viscosity, τ = 1.
        UnitConverter::from_viscosity(0.5e-6, 1.2e-3 / 1025.0, 1.0, 1025.0)
    }

    #[test]
    fn viscosity_round_trips_through_tau() {
        let c = converter();
        let nu = 1.2e-3 / 1025.0;
        let tau = c.tau_for_viscosity(nu);
        assert!((tau - 1.0).abs() < 1e-12, "tau = {tau}");
        assert!((c.viscosity_for_tau(tau) - nu).abs() / nu < 1e-12);
    }

    #[test]
    fn length_velocity_round_trip() {
        let c = converter();
        let u = 0.1; // m/s
        let ul = c.velocity_to_lattice(u);
        assert!((c.velocity_to_si(ul) - u).abs() < 1e-12);
        let l = 37.5e-6;
        assert!((c.length_to_si(c.length_to_lattice(l)) - l).abs() < 1e-18);
    }

    #[test]
    fn derived_units_are_dimensionally_consistent() {
        let c = converter();
        // pressure = force / area: converting 1 N over 1 m² must agree.
        let p = c.pressure_to_lattice(1.0);
        let f_over_a = c.force_to_lattice(1.0) / (c.length_to_lattice(1.0).powi(2));
        assert!((p - f_over_a).abs() / p < 1e-12);
        // body force = force / volume.
        let bf = c.body_force_to_lattice(1.0);
        let f_over_v = c.force_to_lattice(1.0) / (c.length_to_lattice(1.0).powi(3));
        assert!((bf - f_over_v).abs() / bf < 1e-12);
    }

    #[test]
    #[should_panic(expected = "tau must exceed 1/2")]
    fn rejects_unphysical_tau() {
        let _ = UnitConverter::from_viscosity(1e-6, 1e-6, 0.5, 1000.0);
    }

    #[test]
    fn try_constructors_return_typed_errors() {
        use crate::error::ConfigError;
        assert_eq!(
            UnitConverter::try_new(0.0, 1.0, 1.0),
            Err(ConfigError::NonPositive {
                name: "dx",
                value: 0.0
            })
        );
        // NaN compares unequal to itself, so match on the variant here.
        assert!(matches!(
            UnitConverter::try_new(1.0, f64::NAN, 1.0).unwrap_err(),
            ConfigError::NonPositive { name: "dt", value } if value.is_nan()
        ));
        assert_eq!(
            UnitConverter::try_from_viscosity(1e-6, 1e-6, 0.5, 1000.0),
            Err(ConfigError::UnphysicalTau { value: 0.5 })
        );
        assert_eq!(
            UnitConverter::try_from_viscosity(1e-6, -1.0, 1.0, 1000.0),
            Err(ConfigError::NonPositive {
                name: "kinematic viscosity",
                value: -1.0
            })
        );
        // The happy path agrees with the panicking constructor.
        let a = UnitConverter::try_from_viscosity(0.5e-6, 1.2e-3 / 1025.0, 1.0, 1025.0).unwrap();
        assert_eq!(a, converter());
    }

    #[test]
    fn surface_modulus_scaling_matches_manual_derivation() {
        let c = converter();
        // G_s [N/m] = [kg/s²]; lattice unit = rho*dx^3/dt^2.
        let g = 5e-6;
        let manual = g / (c.rho * c.dx.powi(3) / (c.dt * c.dt));
        assert!((c.surface_modulus_to_lattice(g) - manual).abs() < 1e-18);
    }
}
