//! The Pries–Neuhaus–Gaehtgens in-vitro blood viscosity correlation and the
//! Fahraeus effect, paper Eq. 9–11.
//!
//! Figure 5C of the paper validates the APR window's effective viscosity
//! against [`relative_apparent_viscosity`]; the tube↔discharge hematocrit
//! conversion of Eq. 11 closes the loop between what the window *contains*
//! (tube hematocrit) and what the correlation is parameterized by (discharge
//! hematocrit).

/// Relative apparent viscosity of blood flowing in a tube of diameter
/// `d_um` (µm) at discharge hematocrit `ht_d` (volume fraction, 0..1).
///
/// Paper Eq. 9 with Eq. 10 (Pries et al. 1992):
///
/// ```text
/// μ_rel = 1 + (μ₄₅ − 1) · [(1 − Ht_d)^C − 1] / [(1 − 0.45)^C − 1]
/// ```
///
/// Returns the viscosity relative to the suspending medium (plasma); multiply
/// by [`crate::constants::PLASMA_VISCOSITY`] for an absolute value.
///
/// ```
/// use apr_hemo::relative_apparent_viscosity;
/// // Whole blood (45%) in a large tube is ~3× plasma viscosity.
/// let mu = relative_apparent_viscosity(1000.0, 0.45);
/// assert!((2.8..3.3).contains(&mu));
/// // The Fåhræus–Lindqvist minimum: far thinner in a 10 µm capillary.
/// assert!(relative_apparent_viscosity(10.0, 0.45) < 1.7);
/// ```
///
/// # Panics
/// Panics if `d_um` is not positive or `ht_d` is outside `[0, 1)`.
pub fn relative_apparent_viscosity(d_um: f64, ht_d: f64) -> f64 {
    assert!(d_um > 0.0, "tube diameter must be positive, got {d_um}");
    assert!(
        (0.0..1.0).contains(&ht_d),
        "discharge hematocrit must be in [0,1), got {ht_d}"
    );
    if ht_d == 0.0 {
        return 1.0;
    }
    let mu45 = mu_45(d_um);
    let c = shape_exponent(d_um);
    let numerator = (1.0 - ht_d).powf(c) - 1.0;
    let denominator = (1.0 - 0.45f64).powf(c) - 1.0;
    1.0 + (mu45 - 1.0) * numerator / denominator
}

/// Relative apparent viscosity at the reference discharge hematocrit of 45%,
/// paper Eq. 10 (first line):
/// `μ₄₅ = 220·e^(−1.3·D) + 3.2 − 2.44·e^(−0.06·D^0.645)`.
pub fn mu_45(d_um: f64) -> f64 {
    220.0 * (-1.3 * d_um).exp() + 3.2 - 2.44 * (-0.06 * d_um.powf(0.645)).exp()
}

/// Hematocrit-dependence shape exponent `C`, paper Eq. 10 (second line):
///
/// ```text
/// C = (0.8 + e^(−0.075·D)) · (−1 + 1/(1 + 10⁻¹¹·D¹²)) + 1/(1 + 10⁻¹¹·D¹²)
/// ```
pub fn shape_exponent(d_um: f64) -> f64 {
    let damp = 1.0 / (1.0 + 1e-11 * d_um.powi(12));
    (0.8 + (-0.075 * d_um).exp()) * (-1.0 + damp) + damp
}

/// Fahraeus effect: ratio of tube to discharge hematocrit, paper Eq. 11
/// (Pries et al. 1990):
///
/// ```text
/// Ht_t/Ht_d = Ht_d + (1 − Ht_d)·(1 + 1.7·e^(−0.415·D) − 0.6·e^(−0.011·D))
/// ```
///
/// The paper manuscript's typeset exponents (−0.35 and +0.01) are OCR
/// corruptions of the canonical Pries 1990 fit used here; the corrected form
/// recovers the physical limits `Ht_t/Ht_d < 1` in microvessels and → 1 for
/// large tubes.
pub fn fahraeus_ratio(d_um: f64, ht_d: f64) -> f64 {
    assert!(d_um > 0.0, "tube diameter must be positive, got {d_um}");
    assert!(
        (0.0..1.0).contains(&ht_d),
        "discharge hematocrit must be in [0,1), got {ht_d}"
    );
    ht_d + (1.0 - ht_d) * (1.0 + 1.7 * (-0.415 * d_um).exp() - 0.6 * (-0.011 * d_um).exp())
}

/// Tube hematocrit for a given discharge hematocrit in a tube of diameter
/// `d_um` (µm), via Eq. 11.
pub fn fahraeus_tube_hematocrit(d_um: f64, ht_d: f64) -> f64 {
    ht_d * fahraeus_ratio(d_um, ht_d)
}

/// Invert Eq. 11: discharge hematocrit producing a given **tube** hematocrit.
///
/// Used when the simulation maintains a tube hematocrit inside the window
/// (what Figure 5B plots) and we need the discharge hematocrit to feed the
/// viscosity law of Eq. 9. Solved by bisection; Eq. 11 is monotone in
/// `Ht_d` over the physical range.
pub fn discharge_from_tube_hematocrit(d_um: f64, ht_t: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&ht_t),
        "tube hematocrit must be in [0,1), got {ht_t}"
    );
    if ht_t == 0.0 {
        return 0.0;
    }
    let mut lo = 0.0f64;
    let mut hi = 0.999f64;
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if fahraeus_tube_hematocrit(d_um, mid) < ht_t {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Absolute apparent viscosity (Pa·s) for a tube of diameter `d_um` at
/// discharge hematocrit `ht_d`, using the plasma viscosity as the reference.
pub fn apparent_viscosity(d_um: f64, ht_d: f64) -> f64 {
    relative_apparent_viscosity(d_um, ht_d) * crate::constants::PLASMA_VISCOSITY
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_hematocrit_is_plasma() {
        assert_eq!(relative_apparent_viscosity(200.0, 0.0), 1.0);
        assert_eq!(discharge_from_tube_hematocrit(200.0, 0.0), 0.0);
    }

    #[test]
    fn viscosity_increases_with_hematocrit() {
        let d = 200.0;
        let mut prev = relative_apparent_viscosity(d, 0.0);
        for ht in [0.1, 0.2, 0.3, 0.45, 0.6] {
            let mu = relative_apparent_viscosity(d, ht);
            assert!(
                mu > prev,
                "μ_rel must rise with Ht: {mu} !> {prev} at Ht={ht}"
            );
            prev = mu;
        }
    }

    #[test]
    fn reference_hematocrit_recovers_mu45() {
        // At Ht_d = 0.45 Eq. 9 collapses to μ_rel = μ₄₅ exactly.
        for d in [10.0, 50.0, 200.0, 500.0] {
            let mu = relative_apparent_viscosity(d, 0.45);
            assert!((mu - mu_45(d)).abs() < 1e-12, "d = {d}");
        }
    }

    #[test]
    fn fahraeus_minimum_near_15um() {
        // The classic Fahraeus curve has Ht_t/Ht_d < 1 with a minimum in the
        // 10–20 µm range and recovery toward 1 in large tubes.
        let ratio_small = fahraeus_ratio(15.0, 0.45);
        let ratio_large = fahraeus_ratio(500.0, 0.45);
        assert!(ratio_small < ratio_large);
        assert!(
            ratio_small > 0.5 && ratio_small < 1.0,
            "ratio = {ratio_small}"
        );
        assert!(
            ratio_large > 0.95 && ratio_large <= 1.0,
            "ratio = {ratio_large}"
        );
    }

    #[test]
    fn discharge_inversion_round_trips() {
        for d in [40.0, 100.0, 200.0] {
            for ht_t in [0.05, 0.1, 0.2, 0.3, 0.4] {
                let ht_d = discharge_from_tube_hematocrit(d, ht_t);
                let back = fahraeus_tube_hematocrit(d, ht_d);
                assert!((back - ht_t).abs() < 1e-9, "d={d} ht_t={ht_t}: {back}");
            }
        }
    }

    #[test]
    fn paper_figure5_regime_values_are_plausible() {
        // D = 200 µm tube, tube hematocrits 10/20/30% as in Figure 5.
        // μ_rel should land between 1 (plasma) and ~3.2 (large-tube 45% blood).
        for ht_t in [0.10, 0.20, 0.30] {
            let ht_d = discharge_from_tube_hematocrit(200.0, ht_t);
            let mu = relative_apparent_viscosity(200.0, ht_d);
            assert!(mu > 1.05 && mu < 3.2, "Ht_t={ht_t}: μ_rel={mu}");
        }
    }

    #[test]
    fn large_tube_limit_approaches_bulk_blood() {
        // For D → large, μ₄₅ → 3.2 − 2.44·e^(−…) ≈ 3.2; whole blood at 45%
        // is ~3–4 cP vs plasma 1.2 cP, ratio ≈ 2.7–3.3. Consistent.
        let mu = mu_45(1000.0);
        assert!(mu > 2.8 && mu < 3.3, "μ₄₅(1000) = {mu}");
    }

    #[test]
    #[should_panic(expected = "discharge hematocrit")]
    fn rejects_unphysical_hematocrit() {
        let _ = relative_apparent_viscosity(100.0, 1.2);
    }
}
