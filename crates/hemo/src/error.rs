//! Error norms used to score simulations against analytic references
//! (Table 1 of the paper reports relative L2 norms), plus the typed
//! configuration error returned by fallible constructors.

use std::fmt;

/// A physically invalid configuration parameter, reported instead of a
/// panic by the `try_*` constructors ([`crate::UnitConverter::try_new`],
/// [`crate::UnitConverter::try_from_viscosity`], and downstream users such
/// as the hematocrit controller).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// A scale that must be strictly positive and finite was not.
    NonPositive {
        /// Parameter name, e.g. `"dx"`.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A parameter fell outside its physical range `[min, max]`.
    OutOfRange {
        /// Parameter name, e.g. `"target hematocrit"`.
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// Relaxation time τ ≤ 1/2 implies non-positive viscosity.
    UnphysicalTau {
        /// Offending value.
        value: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NonPositive { name, value } => {
                write!(f, "{name} must be positive and finite, got {value}")
            }
            ConfigError::OutOfRange {
                name,
                value,
                min,
                max,
            } => {
                write!(f, "{name} = {value} outside [{min}, {max}]")
            }
            ConfigError::UnphysicalTau { value } => {
                write!(f, "tau must exceed 1/2 for positive viscosity, got {value}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Relative L2 error norm between `simulated` and `reference` samples:
/// `‖u_sim − u_ref‖₂ / ‖u_ref‖₂`.
///
/// # Panics
/// Panics if the slices differ in length, are empty, or the reference has
/// zero norm.
pub fn l2_error_norm(simulated: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(simulated.len(), reference.len(), "sample counts must match");
    assert!(
        !simulated.is_empty(),
        "cannot compute a norm of zero samples"
    );
    let mut num = 0.0;
    let mut den = 0.0;
    for (&s, &r) in simulated.iter().zip(reference) {
        num += (s - r) * (s - r);
        den += r * r;
    }
    assert!(den > 0.0, "reference solution has zero norm");
    (num / den).sqrt()
}

/// Relative L∞ error norm: `max|u_sim − u_ref| / max|u_ref|`.
///
/// # Panics
/// Same conditions as [`l2_error_norm`].
pub fn linf_error_norm(simulated: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(simulated.len(), reference.len(), "sample counts must match");
    assert!(
        !simulated.is_empty(),
        "cannot compute a norm of zero samples"
    );
    let num = simulated
        .iter()
        .zip(reference)
        .map(|(&s, &r)| (s - r).abs())
        .fold(0.0f64, f64::max);
    let den = reference.iter().map(|r| r.abs()).fold(0.0f64, f64::max);
    assert!(den > 0.0, "reference solution has zero norm");
    num / den
}

/// Mean absolute error between two sample sets.
pub fn mean_absolute_error(simulated: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(simulated.len(), reference.len(), "sample counts must match");
    assert!(!simulated.is_empty(), "cannot average zero samples");
    simulated
        .iter()
        .zip(reference)
        .map(|(&s, &r)| (s - r).abs())
        .sum::<f64>()
        / simulated.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_have_zero_error() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(l2_error_norm(&a, &a), 0.0);
        assert_eq!(linf_error_norm(&a, &a), 0.0);
        assert_eq!(mean_absolute_error(&a, &a), 0.0);
    }

    #[test]
    fn l2_norm_matches_hand_computation() {
        let sim = [1.1, 2.0];
        let reference = [1.0, 2.0];
        let expected = (0.01f64 / 5.0).sqrt();
        assert!((l2_error_norm(&sim, &reference) - expected).abs() < 1e-15);
    }

    #[test]
    fn linf_picks_worst_sample() {
        let sim = [1.0, 2.5, 3.0];
        let reference = [1.0, 2.0, 3.0];
        assert!((linf_error_norm(&sim, &reference) - 0.5 / 3.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "sample counts")]
    fn mismatched_lengths_panic() {
        let _ = l2_error_norm(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "zero norm")]
    fn zero_reference_panics() {
        let _ = l2_error_norm(&[1.0], &[0.0]);
    }
}
