//! Error norms used to score simulations against analytic references
//! (Table 1 of the paper reports relative L2 norms).

/// Relative L2 error norm between `simulated` and `reference` samples:
/// `‖u_sim − u_ref‖₂ / ‖u_ref‖₂`.
///
/// # Panics
/// Panics if the slices differ in length, are empty, or the reference has
/// zero norm.
pub fn l2_error_norm(simulated: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(simulated.len(), reference.len(), "sample counts must match");
    assert!(!simulated.is_empty(), "cannot compute a norm of zero samples");
    let mut num = 0.0;
    let mut den = 0.0;
    for (&s, &r) in simulated.iter().zip(reference) {
        num += (s - r) * (s - r);
        den += r * r;
    }
    assert!(den > 0.0, "reference solution has zero norm");
    (num / den).sqrt()
}

/// Relative L∞ error norm: `max|u_sim − u_ref| / max|u_ref|`.
///
/// # Panics
/// Same conditions as [`l2_error_norm`].
pub fn linf_error_norm(simulated: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(simulated.len(), reference.len(), "sample counts must match");
    assert!(!simulated.is_empty(), "cannot compute a norm of zero samples");
    let num = simulated
        .iter()
        .zip(reference)
        .map(|(&s, &r)| (s - r).abs())
        .fold(0.0f64, f64::max);
    let den = reference.iter().map(|r| r.abs()).fold(0.0f64, f64::max);
    assert!(den > 0.0, "reference solution has zero norm");
    num / den
}

/// Mean absolute error between two sample sets.
pub fn mean_absolute_error(simulated: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(simulated.len(), reference.len(), "sample counts must match");
    assert!(!simulated.is_empty(), "cannot average zero samples");
    simulated
        .iter()
        .zip(reference)
        .map(|(&s, &r)| (s - r).abs())
        .sum::<f64>()
        / simulated.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_have_zero_error() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(l2_error_norm(&a, &a), 0.0);
        assert_eq!(linf_error_norm(&a, &a), 0.0);
        assert_eq!(mean_absolute_error(&a, &a), 0.0);
    }

    #[test]
    fn l2_norm_matches_hand_computation() {
        let sim = [1.1, 2.0];
        let reference = [1.0, 2.0];
        let expected = (0.01f64 / 5.0).sqrt();
        assert!((l2_error_norm(&sim, &reference) - expected).abs() < 1e-15);
    }

    #[test]
    fn linf_picks_worst_sample() {
        let sim = [1.0, 2.5, 3.0];
        let reference = [1.0, 2.0, 3.0];
        assert!((linf_error_norm(&sim, &reference) - 0.5 / 3.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "sample counts")]
    fn mismatched_lengths_panic() {
        let _ = l2_error_norm(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "zero norm")]
    fn zero_reference_panics() {
        let _ = l2_error_norm(&[1.0], &[0.0]);
    }
}
