//! Closed-form flow solutions used for verification.
//!
//! * [`ThreeLayerCouette`] — the stratified variable-viscosity shear flow of
//!   paper §3.1 / Eq. 8 (Table 1, Figure 4).
//! * [`PoiseuilleTube`] — Hagen–Poiseuille tube flow; inverting it for the
//!   effective viscosity is paper Eq. 12 (Figure 5C).
//! * [`PoiseuilleSlit`] — plane-channel Poiseuille flow, used for channel
//!   verification tests.

/// Steady shear (Couette) flow through three stacked fluid layers of
/// different viscosities, driven by a moving top plate.
///
/// Geometry: `y ∈ [0, h1+h2+h3]`, the `y = 0` plane is stationary and the top
/// plane moves at `u_top` in +x. Because the flow is unidirectional and
/// inertia-free, the shear stress `σ = μ_j du/dy` is constant through the
/// stack, which gives a piecewise-linear profile — the paper's Eq. 8 in a
/// numerically robust form.
#[derive(Debug, Clone, Copy)]
pub struct ThreeLayerCouette {
    /// Layer heights from the bottom, m (or any consistent length unit).
    pub heights: [f64; 3],
    /// Dynamic viscosities of the layers, bottom to top.
    pub viscosities: [f64; 3],
    /// Velocity of the top plate.
    pub u_top: f64,
}

impl ThreeLayerCouette {
    /// New stratified Couette problem.
    ///
    /// # Panics
    /// Panics if any height or viscosity is not strictly positive.
    pub fn new(heights: [f64; 3], viscosities: [f64; 3], u_top: f64) -> Self {
        for (i, &h) in heights.iter().enumerate() {
            assert!(h > 0.0, "layer {i} height must be positive, got {h}");
        }
        for (i, &mu) in viscosities.iter().enumerate() {
            assert!(mu > 0.0, "layer {i} viscosity must be positive, got {mu}");
        }
        Self {
            heights,
            viscosities,
            u_top,
        }
    }

    /// The paper's configuration: equal layer heights `h`, outer layers at
    /// viscosity `mu_outer` and the middle layer at `lambda * mu_outer`
    /// (λ = μ₂/μ₁, Figure 4).
    pub fn paper_configuration(h: f64, mu_outer: f64, lambda: f64, u_top: f64) -> Self {
        Self::new([h, h, h], [mu_outer, lambda * mu_outer, mu_outer], u_top)
    }

    /// Total stack height.
    pub fn total_height(&self) -> f64 {
        self.heights.iter().sum()
    }

    /// Constant shear stress through the stack:
    /// `σ = U / Σ_j (h_j/μ_j)` (α in the paper's notation, Eq. 8).
    pub fn shear_stress(&self) -> f64 {
        let compliance: f64 = self
            .heights
            .iter()
            .zip(&self.viscosities)
            .map(|(h, mu)| h / mu)
            .sum();
        self.u_top / compliance
    }

    /// Index of the layer containing height `y` (clamped to `[0, 2]`).
    pub fn layer_of(&self, y: f64) -> usize {
        if y < self.heights[0] {
            0
        } else if y < self.heights[0] + self.heights[1] {
            1
        } else {
            2
        }
    }

    /// Analytical x-velocity at height `y` (clamped to the stack).
    pub fn velocity(&self, y: f64) -> f64 {
        let y = y.clamp(0.0, self.total_height());
        let sigma = self.shear_stress();
        let mut u = 0.0;
        let mut base = 0.0;
        for j in 0..3 {
            let top = base + self.heights[j];
            if y <= top || j == 2 {
                return u + sigma * (y - base) / self.viscosities[j];
            }
            u += sigma * self.heights[j] / self.viscosities[j];
            base = top;
        }
        u
    }

    /// Shear rate `du/dy` within the layer containing `y`.
    pub fn shear_rate(&self, y: f64) -> f64 {
        self.shear_stress() / self.viscosities[self.layer_of(y)]
    }
}

/// Hagen–Poiseuille flow in a circular tube.
#[derive(Debug, Clone, Copy)]
pub struct PoiseuilleTube {
    /// Tube radius.
    pub radius: f64,
    /// Tube length over which the pressure drop acts.
    pub length: f64,
    /// Dynamic viscosity of the fluid.
    pub viscosity: f64,
}

impl PoiseuilleTube {
    /// New tube problem.
    ///
    /// # Panics
    /// Panics if radius, length or viscosity is not strictly positive.
    pub fn new(radius: f64, length: f64, viscosity: f64) -> Self {
        assert!(radius > 0.0, "radius must be positive, got {radius}");
        assert!(length > 0.0, "length must be positive, got {length}");
        assert!(
            viscosity > 0.0,
            "viscosity must be positive, got {viscosity}"
        );
        Self {
            radius,
            length,
            viscosity,
        }
    }

    /// Axial velocity at radial position `r` given pressure drop `dp`:
    /// `u(r) = ΔP (R² − r²) / (4 μ L)`.
    pub fn velocity(&self, dp: f64, r: f64) -> f64 {
        let r = r.clamp(0.0, self.radius);
        dp * (self.radius * self.radius - r * r) / (4.0 * self.viscosity * self.length)
    }

    /// Volumetric flow rate for pressure drop `dp`:
    /// `Q = π ΔP R⁴ / (8 μ L)`.
    pub fn flow_rate(&self, dp: f64) -> f64 {
        core::f64::consts::PI * dp * self.radius.powi(4) / (8.0 * self.viscosity * self.length)
    }

    /// Pressure drop required to drive flow rate `q`.
    pub fn pressure_drop(&self, q: f64) -> f64 {
        8.0 * self.viscosity * self.length * q / (core::f64::consts::PI * self.radius.powi(4))
    }

    /// Mean velocity for pressure drop `dp` (half the centerline velocity).
    pub fn mean_velocity(&self, dp: f64) -> f64 {
        self.flow_rate(dp) / (core::f64::consts::PI * self.radius * self.radius)
    }

    /// Wall shear rate magnitude for pressure drop `dp`:
    /// `γ̇_w = ΔP R / (2 μ L) = 4 Q / (π R³)`.
    pub fn wall_shear_rate(&self, dp: f64) -> f64 {
        dp * self.radius / (2.0 * self.viscosity * self.length)
    }

    /// Paper Eq. 12: effective viscosity inferred from a measured pressure
    /// drop `dp` and flow rate `q`:
    /// `μ_eff = ΔP π R⁴ / (8 Q L)`.
    pub fn effective_viscosity(radius: f64, length: f64, dp: f64, q: f64) -> f64 {
        assert!(q != 0.0, "flow rate must be nonzero to infer a viscosity");
        dp * core::f64::consts::PI * radius.powi(4) / (8.0 * q * length)
    }

    /// Equivalent body-force density (N/m³) that drives the same flow as
    /// pressure drop `dp`: `g = ΔP / L`. Periodic force-driven tubes (how the
    /// reproduction drives Figure 5) use this to recover `ΔP = g·L`.
    pub fn body_force_for_pressure_drop(&self, dp: f64) -> f64 {
        dp / self.length
    }
}

/// Plane Poiseuille (slit) flow between parallel plates separated by `h`.
#[derive(Debug, Clone, Copy)]
pub struct PoiseuilleSlit {
    /// Plate separation.
    pub height: f64,
    /// Channel length.
    pub length: f64,
    /// Dynamic viscosity.
    pub viscosity: f64,
}

impl PoiseuilleSlit {
    /// New slit problem; all parameters must be positive.
    pub fn new(height: f64, length: f64, viscosity: f64) -> Self {
        assert!(height > 0.0 && length > 0.0 && viscosity > 0.0);
        Self {
            height,
            length,
            viscosity,
        }
    }

    /// Velocity at wall-normal position `y ∈ [0, h]` for pressure drop `dp`:
    /// `u(y) = ΔP y (h − y) / (2 μ L)`.
    pub fn velocity(&self, dp: f64, y: f64) -> f64 {
        let y = y.clamp(0.0, self.height);
        dp * y * (self.height - y) / (2.0 * self.viscosity * self.length)
    }

    /// Centerline (maximum) velocity.
    pub fn max_velocity(&self, dp: f64) -> f64 {
        self.velocity(dp, 0.5 * self.height)
    }

    /// Flow rate per unit depth: `q = ΔP h³ / (12 μ L)`.
    pub fn flow_rate_per_depth(&self, dp: f64) -> f64 {
        dp * self.height.powi(3) / (12.0 * self.viscosity * self.length)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn couette_uniform_viscosity_is_linear() {
        let c = ThreeLayerCouette::new([1.0, 1.0, 1.0], [2.0, 2.0, 2.0], 3.0);
        for y in [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0] {
            assert!((c.velocity(y) - y).abs() < 1e-12, "y = {y}");
        }
    }

    #[test]
    fn couette_boundary_conditions_hold() {
        let c = ThreeLayerCouette::paper_configuration(30e-6, 4.0e-3, 1.0 / 3.0, 0.01);
        assert!(c.velocity(0.0).abs() < 1e-15);
        assert!((c.velocity(c.total_height()) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn couette_velocity_is_continuous_at_interfaces() {
        let c = ThreeLayerCouette::paper_configuration(30e-6, 4.0e-3, 0.25, 0.01);
        for interface in [30e-6, 60e-6] {
            let below = c.velocity(interface - 1e-12);
            let above = c.velocity(interface + 1e-12);
            // The ±1e-12 m probe itself moves the profile by σ·ε/μ, so allow
            // a tolerance a few orders above that slope contribution.
            assert!((below - above).abs() < 1e-6 * c.u_top);
        }
    }

    #[test]
    fn couette_stress_is_continuous_but_shear_rate_jumps() {
        let c = ThreeLayerCouette::paper_configuration(1.0, 1.0, 0.5, 1.0);
        let s1 = c.shear_rate(0.5) * c.viscosities[0];
        let s2 = c.shear_rate(1.5) * c.viscosities[1];
        let s3 = c.shear_rate(2.5) * c.viscosities[2];
        assert!((s1 - s2).abs() < 1e-12 && (s2 - s3).abs() < 1e-12);
        // middle layer is less viscous ⇒ it shears faster.
        assert!(c.shear_rate(1.5) > c.shear_rate(0.5));
    }

    #[test]
    fn couette_middle_layer_slope_scales_inversely_with_lambda() {
        // With λ = 1/4 the middle layer takes 4/(4+1+1)... more precisely the
        // middle layer velocity jump is σ·h/μ₂; check exact partition.
        let c = ThreeLayerCouette::paper_configuration(1.0, 1.0, 0.25, 1.0);
        let jump_outer = c.velocity(1.0) - c.velocity(0.0);
        let jump_mid = c.velocity(2.0) - c.velocity(1.0);
        assert!((jump_mid / jump_outer - 4.0).abs() < 1e-9);
    }

    #[test]
    fn poiseuille_tube_flow_rate_consistency() {
        let t = PoiseuilleTube::new(100e-6, 1e-3, 4.0e-3);
        let dp = 10.0;
        let q = t.flow_rate(dp);
        // Invert Eq. 12 and recover the viscosity.
        let mu = PoiseuilleTube::effective_viscosity(t.radius, t.length, dp, q);
        assert!((mu - t.viscosity).abs() / t.viscosity < 1e-12);
        // Round-trip the pressure drop too.
        assert!((t.pressure_drop(q) - dp).abs() / dp < 1e-12);
    }

    #[test]
    fn poiseuille_tube_centerline_is_twice_mean() {
        let t = PoiseuilleTube::new(1.0, 1.0, 1.0);
        let dp = 1.0;
        assert!((t.velocity(dp, 0.0) - 2.0 * t.mean_velocity(dp)).abs() < 1e-12);
    }

    #[test]
    fn paper_figure5_flow_parameters_are_reproduced() {
        // Paper §3.2: D = 200 µm tube, Q = 5.7 mL/hr ⇒ "effective shear rate
        // of 250 s⁻¹". That matches the mean-velocity-over-diameter
        // definition γ̇_eff = Ū/D (the wall shear rate 4Q/πR³ would be ~2000).
        let r: f64 = 100e-6;
        let q = 5.7e-6 / 3600.0; // m³/s
        let u_mean = q / (core::f64::consts::PI * r * r);
        let gamma = u_mean / (2.0 * r);
        assert!((gamma - 250.0).abs() / 250.0 < 0.05, "γ̇ = {gamma}");
    }

    #[test]
    fn slit_profile_is_parabolic_and_symmetric() {
        let s = PoiseuilleSlit::new(2.0, 1.0, 1.0);
        let dp = 1.0;
        assert!(s.velocity(dp, 0.0).abs() < 1e-15);
        assert!(s.velocity(dp, 2.0).abs() < 1e-15);
        assert!((s.velocity(dp, 0.5) - s.velocity(dp, 1.5)).abs() < 1e-12);
        assert!((s.max_velocity(dp) - s.velocity(dp, 1.0)).abs() < 1e-15);
    }
}
