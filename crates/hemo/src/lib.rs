//! Hemorheology substrate for the APR-RBC reproduction.
//!
//! Provides the physical groundwork the paper's evaluation relies on:
//!
//! * [`units`] — conversion between SI and lattice units for the LBM solver.
//! * [`constants`] — blood, plasma and cell material constants from the paper.
//! * [`pries`] — the Pries–Neuhaus–Gaehtgens in-vitro viscosity law (paper
//!   Eq. 9–10) and the Fahraeus effect (Eq. 11) used to validate Figure 5.
//! * [`analytic`] — closed-form solutions: the three-layer variable-viscosity
//!   Couette profile (Eq. 8, Table 1/Figure 4) and Poiseuille relations
//!   (Eq. 12).
//! * [`error`] — L2/L∞ error norms used for Table 1.

pub mod analytic;
pub mod constants;
pub mod error;
pub mod pries;
pub mod units;

pub use analytic::{PoiseuilleTube, ThreeLayerCouette};
pub use constants::*;
pub use error::{l2_error_norm, linf_error_norm, ConfigError};
pub use pries::{
    discharge_from_tube_hematocrit, fahraeus_tube_hematocrit, relative_apparent_viscosity,
};
pub use units::UnitConverter;
