//! Property-based tests of the hemorheology relations.

use apr_hemo::analytic::ThreeLayerCouette;
use apr_hemo::pries::{fahraeus_tube_hematocrit, relative_apparent_viscosity};
use apr_hemo::units::UnitConverter;
use proptest::prelude::*;

proptest! {
    /// The Pries law is monotone in hematocrit for any tube diameter.
    #[test]
    fn pries_monotone_in_hematocrit(d in 5.0..2000.0f64, h1 in 0.0..0.55f64, dh in 0.01..0.3f64) {
        let h2 = (h1 + dh).min(0.89);
        prop_assert!(relative_apparent_viscosity(d, h2) > relative_apparent_viscosity(d, h1));
    }

    /// μ_rel ≥ 1 always: a suspension is never thinner than plasma.
    #[test]
    fn pries_never_below_plasma(d in 5.0..2000.0f64, h in 0.0..0.8f64) {
        prop_assert!(relative_apparent_viscosity(d, h) >= 1.0 - 1e-12);
    }

    /// Fahraeus: tube hematocrit never exceeds discharge hematocrit in the
    /// microvascular regime.
    #[test]
    fn fahraeus_reduces_tube_hematocrit(d in 5.0..500.0f64, h in 0.05..0.6f64) {
        let ht = fahraeus_tube_hematocrit(d, h);
        prop_assert!(ht <= h + 1e-12, "Ht_t {ht} > Ht_d {h} at D={d}");
        prop_assert!(ht > 0.0);
    }

    /// Couette profile: monotone from 0 to u_top for any heights and
    /// viscosities, with stress identical in all three layers.
    #[test]
    fn couette_profile_properties(
        h1 in 0.5..5.0f64,
        h2 in 0.5..5.0f64,
        h3 in 0.5..5.0f64,
        mu1 in 0.1..10.0f64,
        mu2 in 0.1..10.0f64,
        mu3 in 0.1..10.0f64,
        u in 0.01..10.0f64,
    ) {
        let c = ThreeLayerCouette::new([h1, h2, h3], [mu1, mu2, mu3], u);
        let total = c.total_height();
        prop_assert!(c.velocity(0.0).abs() < 1e-9 * u);
        prop_assert!((c.velocity(total) - u).abs() < 1e-9 * u);
        let mut prev = -1e-12;
        for i in 0..=20 {
            let v = c.velocity(total * i as f64 / 20.0);
            prop_assert!(v >= prev - 1e-9 * u, "non-monotone at {i}");
            prev = v;
        }
        // Stress continuity.
        let s1 = c.shear_rate(h1 * 0.5) * mu1;
        let s2 = c.shear_rate(h1 + h2 * 0.5) * mu2;
        let s3 = c.shear_rate(h1 + h2 + h3 * 0.5) * mu3;
        prop_assert!((s1 - s2).abs() < 1e-9 * s1.abs());
        prop_assert!((s2 - s3).abs() < 1e-9 * s2.abs());
    }

    /// Unit conversions round-trip for arbitrary scales.
    #[test]
    fn unit_conversions_round_trip(
        dx in 1e-8..1e-3f64,
        dt in 1e-9..1e-3f64,
        rho in 100.0..5000.0f64,
        value in 1e-6..1e3f64,
    ) {
        let c = UnitConverter::new(dx, dt, rho);
        prop_assert!((c.length_to_si(c.length_to_lattice(value)) - value).abs() < 1e-9 * value);
        prop_assert!((c.velocity_to_si(c.velocity_to_lattice(value)) - value).abs() < 1e-9 * value);
        prop_assert!((c.force_to_si(c.force_to_lattice(value)) - value).abs() < 1e-9 * value);
        prop_assert!((c.pressure_to_si(c.pressure_to_lattice(value)) - value).abs() < 1e-9 * value);
    }
}
