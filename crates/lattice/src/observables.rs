//! Derived flow observables: strain rate, shear stress, vorticity,
//! dimensionless numbers, profile extraction.
//!
//! The strain-rate tensor comes directly from the non-equilibrium moments
//! (Chapman–Enskog): `S_αβ = −(Σᵢ f^neq_i c_iα c_iβ) / (2 ρ c_s² τ)` — no
//! finite differences needed, and exactly the quantity the APR coupling's
//! stress-continuity argument is about.

use crate::d3q19::{equilibrium_all, C, CS2, Q};
use crate::solver::{Lattice, NodeClass};

/// Symmetric 3×3 tensor stored as `[xx, yy, zz, xy, xz, yz]`.
pub type SymTensor = [f64; 6];

/// Strain-rate tensor at `node` from the non-equilibrium distributions.
pub fn strain_rate(lat: &Lattice, node: usize) -> SymTensor {
    let fs = lat.distributions(node);
    let (rho, u) = lat.moments_at(node);
    let feq = equilibrium_all(rho, u[0], u[1], u[2]);
    let mut pi = [0.0f64; 6];
    for i in 0..Q {
        let fneq = fs[i] - feq[i];
        let (cx, cy, cz) = (C[i][0] as f64, C[i][1] as f64, C[i][2] as f64);
        pi[0] += fneq * cx * cx;
        pi[1] += fneq * cy * cy;
        pi[2] += fneq * cz * cz;
        pi[3] += fneq * cx * cy;
        pi[4] += fneq * cx * cz;
        pi[5] += fneq * cy * cz;
    }
    let tau = lat.tau_at(node);
    let scale = -1.0 / (2.0 * rho * CS2 * tau);
    pi.map(|p| p * scale)
}

/// Deviatoric viscous stress tensor at `node` (lattice units):
/// `σ = 2 ρ ν S`.
pub fn viscous_stress(lat: &Lattice, node: usize) -> SymTensor {
    let s = strain_rate(lat, node);
    let (rho, _) = lat.moments_at(node);
    let nu = CS2 * (lat.tau_at(node) - 0.5);
    s.map(|v| 2.0 * rho * nu * v)
}

/// Shear-rate magnitude `γ̇ = √(2 S:S)` at `node`.
pub fn shear_rate_magnitude(lat: &Lattice, node: usize) -> f64 {
    let s = strain_rate(lat, node);
    let ss =
        s[0] * s[0] + s[1] * s[1] + s[2] * s[2] + 2.0 * (s[3] * s[3] + s[4] * s[4] + s[5] * s[5]);
    (2.0 * ss).sqrt()
}

/// Vorticity vector at an interior node by central differences of the
/// stored velocity field. Returns `None` on domain edges or next to
/// non-fluid nodes.
pub fn vorticity(lat: &Lattice, x: usize, y: usize, z: usize) -> Option<[f64; 3]> {
    if x == 0 || y == 0 || z == 0 || x + 1 >= lat.nx || y + 1 >= lat.ny || z + 1 >= lat.nz {
        return None;
    }
    let v = |x: usize, y: usize, z: usize| -> Option<[f64; 3]> {
        let n = lat.idx(x, y, z);
        (lat.flag(n) == NodeClass::Fluid).then(|| lat.velocity_at(n))
    };
    let (xp, xm) = (v(x + 1, y, z)?, v(x - 1, y, z)?);
    let (yp, ym) = (v(x, y + 1, z)?, v(x, y - 1, z)?);
    let (zp, zm) = (v(x, y, z + 1)?, v(x, y, z - 1)?);
    let d = |p: [f64; 3], m: [f64; 3], a: usize| (p[a] - m[a]) / 2.0;
    Some([
        d(yp, ym, 2) - d(zp, zm, 1), // ∂w/∂y − ∂v/∂z
        d(zp, zm, 0) - d(xp, xm, 2), // ∂u/∂z − ∂w/∂x
        d(xp, xm, 1) - d(yp, ym, 0), // ∂v/∂x − ∂u/∂y
    ])
}

/// Maximum lattice Mach number over fluid nodes (stability diagnostic;
/// should stay ≲ 0.3, ideally ≲ 0.1).
pub fn max_mach(lat: &Lattice) -> f64 {
    let cs = CS2.sqrt();
    let mut max = 0.0f64;
    for node in 0..lat.node_count() {
        if lat.flag(node) == NodeClass::Fluid {
            let u = lat.velocity_at(node);
            let speed = (u[0] * u[0] + u[1] * u[1] + u[2] * u[2]).sqrt();
            max = max.max(speed / cs);
        }
    }
    max
}

/// Reynolds number for a characteristic length `l` (lattice units) and the
/// current maximum fluid speed.
pub fn reynolds_number(lat: &Lattice, l: f64) -> f64 {
    let cs = CS2.sqrt();
    max_mach(lat) * cs * l / lat.lattice_viscosity()
}

/// Velocity component `axis` along a grid line: fixes the two coordinates
/// in `fixed` and sweeps the remaining one. Returns `(position, value)` for
/// fluid nodes only.
pub fn velocity_profile(
    lat: &Lattice,
    sweep_axis: usize,
    fixed: [usize; 2],
    component: usize,
) -> Vec<(f64, f64)> {
    let len = [lat.nx, lat.ny, lat.nz][sweep_axis];
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        let (x, y, z) = match sweep_axis {
            0 => (i, fixed[0], fixed[1]),
            1 => (fixed[0], i, fixed[1]),
            2 => (fixed[0], fixed[1], i),
            _ => panic!("axis out of range"),
        };
        let node = lat.idx(x, y, z);
        if lat.flag(node) == NodeClass::Fluid {
            out.push((i as f64, lat.velocity_at(node)[component]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::couette_channel;

    fn steady_couette(u_lid: f64) -> Lattice {
        let mut lat = couette_channel(4, 18, 4, 0.9, u_lid);
        for _ in 0..6000 {
            lat.step();
        }
        lat
    }

    #[test]
    fn couette_strain_rate_matches_analytic() {
        let u_lid = 0.04;
        let lat = steady_couette(u_lid);
        // γ̇ = du/dy = u_lid / H with H = ny − 2 = 16.
        let expected = u_lid / 16.0;
        let node = lat.idx(2, 9, 2);
        let s = strain_rate(&lat, node);
        // Only S_xy is nonzero; S_xy = γ̇/2.
        assert!(
            (s[3] - expected / 2.0).abs() < 0.02 * expected,
            "S_xy = {}",
            s[3]
        );
        assert!(s[0].abs() < 0.05 * expected);
        assert!(s[1].abs() < 0.05 * expected);
        let mag = shear_rate_magnitude(&lat, node);
        assert!((mag - expected).abs() < 0.03 * expected, "γ̇ = {mag}");
    }

    #[test]
    fn couette_stress_is_uniform_across_channel() {
        let lat = steady_couette(0.04);
        let mid = viscous_stress(&lat, lat.idx(2, 9, 2))[3];
        let near_wall = viscous_stress(&lat, lat.idx(2, 2, 2))[3];
        assert!(
            (mid - near_wall).abs() < 0.05 * mid.abs(),
            "stress not uniform: {mid} vs {near_wall}"
        );
    }

    #[test]
    fn couette_vorticity_is_minus_shear() {
        let u_lid = 0.04;
        let lat = steady_couette(u_lid);
        let w = vorticity(&lat, 2, 9, 2).unwrap();
        // u = (γ̇·y, 0, 0): ω_z = −∂u/∂y = −γ̇.
        let expected = -u_lid / 16.0;
        assert!(
            (w[2] - expected).abs() < 0.05 * expected.abs(),
            "ω_z = {}",
            w[2]
        );
        assert!(w[0].abs() < 1e-6 && w[1].abs() < 1e-6);
    }

    #[test]
    fn mach_number_reflects_lid_speed() {
        let lat = steady_couette(0.04);
        let mach = max_mach(&lat);
        let expected = 0.04 / CS2.sqrt();
        assert!((mach - expected).abs() < 0.1 * expected, "Ma = {mach}");
        assert!(reynolds_number(&lat, 16.0) > 0.0);
    }

    #[test]
    fn profile_extraction_skips_walls() {
        let lat = steady_couette(0.04);
        let profile = velocity_profile(&lat, 1, [2, 2], 0);
        // 18 nodes minus 2 wall rows.
        assert_eq!(profile.len(), 16);
        // Monotone increasing toward the lid.
        for w in profile.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
    }
}
