//! D3Q19 lattice Boltzmann solver (paper §2.1).
//!
//! "LBM is a deterministic, mesoscopic approach that numerically solves the
//! Navier-Stokes equations by modeling fluid with a particle distribution
//! function" — this crate is that solver: BGK collision with the Guo forcing
//! scheme, halfway bounce-back walls (optionally moving), prescribed
//! velocity/pressure boundaries via non-equilibrium extrapolation, and
//! per-axis periodicity. Both the window (fine) and bulk (coarse) fluids of
//! the APR method are instances of [`Lattice`] with different relaxation
//! times related by the paper's Eq. 7 (see `apr-coupling`).

pub mod checkpoint;
pub mod d3q19;
pub mod kernel_select;
pub mod mrt;
pub mod observables;
pub mod setup;
pub mod solver;

pub use apr_kernels::{
    neighbor_index, ChunkingPolicy, KernelBackend, KernelKind, RuntimeConfig, RuntimeConfigError,
};
pub use checkpoint::{load_state, save_state, CheckpointError};
pub use d3q19::{
    equilibrium, equilibrium_all, lattice_viscosity_from_tau, tau_from_lattice_viscosity, C, CS2,
    OPPOSITE, Q, W,
};
pub use mrt::{MrtBasis, MrtRates};
pub use observables::{
    max_mach, reynolds_number, shear_rate_magnitude, strain_rate, velocity_profile, viscous_stress,
    vorticity,
};
pub use setup::{
    couette_channel, couette_height, couette_y_position, force_driven_tube, poiseuille_slit,
};
pub use solver::{Boundary, Lattice, NodeClass, SubStep};
