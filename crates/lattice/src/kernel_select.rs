//! Process-wide default kernel selection.
//!
//! A lattice with no explicit [`KernelKind`](apr_kernels::KernelKind)
//! choice resolves through [`default_kernel`], in priority order:
//!
//! 1. the kernel pinned by an installed
//!    [`RuntimeConfig`](apr_kernels::RuntimeConfig) (including an explicit
//!    `auto`, which falls through to step 3),
//! 2. otherwise a lenient `APR_KERNEL` read
//!    ([`apr_kernels::runtime::env_kernel`]; garbage values panic — a
//!    silently ignored typo would invalidate a benchmark run),
//! 3. otherwise, when the probe is enabled
//!    ([`apr_kernels::runtime::probe_enabled`]), a one-shot startup
//!    micro-probe that times all three backends on a small periodic box
//!    and memoizes the fastest; with the probe disabled the default is
//!    [`KernelKind::FusedSimd`].
//!
//! The probe runs once per process (under a `OnceLock`), costs a few
//! milliseconds, and is deliberately tiny — 12³ nodes — so it measures
//! kernel overhead structure (passes, barriers, table lookups) rather
//! than cache capacity.

use crate::solver::Lattice;
use apr_kernels::{runtime, KernelKind};
use std::sync::OnceLock;
use std::time::Instant;

static PROBED: OnceLock<KernelKind> = OnceLock::new();

/// The process-default kernel: the installed
/// [`RuntimeConfig`](apr_kernels::RuntimeConfig) override if pinned, else
/// `APR_KERNEL`, else the (memoized) micro-probe winner — or
/// [`KernelKind::FusedSimd`] when probing is disabled.
pub fn default_kernel() -> KernelKind {
    if runtime::kernel_pinned() {
        if let Some(kind) = runtime::kernel_override() {
            return kind;
        }
    } else {
        match runtime::env_kernel() {
            Ok(Some(kind)) => return kind,
            Ok(None) => {}
            Err(e) => panic!("{e}"),
        }
    }
    if !runtime::probe_enabled() {
        return KernelKind::FusedSimd;
    }
    *PROBED.get_or_init(probe)
}

/// Time every backend on a small periodic forced box and return the
/// fastest. Ties go to the later entrant in the list below —
/// [`KernelKind::FusedSimd`] over [`KernelKind::FusedSwap`] over
/// [`KernelKind::Reference`] — which also orders them by memory footprint
/// (the fused backends carry no second distribution array).
fn probe() -> KernelKind {
    let mut best = (KernelKind::Reference, probe_one(KernelKind::Reference));
    for kind in [KernelKind::FusedSwap, KernelKind::FusedSimd] {
        let t = probe_one(kind);
        if t <= best.1 {
            best = (kind, t);
        }
    }
    best.0
}

fn probe_one(kind: KernelKind) -> std::time::Duration {
    const N: usize = 12;
    let mut lat = Lattice::new(N, N, N, 0.8);
    lat.periodic = [true; 3];
    lat.body_force = [1e-6, 0.0, 0.0];
    // Explicit choice: the probe must not recurse into default_kernel().
    lat.set_kernel(Some(kind));
    lat.step(); // warmup: builds the backend outside the timed region
                // Best of three rounds: the minimum is the least noise-contaminated
                // estimate of a deterministic kernel's cost.
    (0..3)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..4 {
                lat.step();
            }
            start.elapsed()
        })
        .min()
        .expect("non-empty rounds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_kernel_is_stable_across_calls() {
        let first = default_kernel();
        for _ in 0..3 {
            assert_eq!(default_kernel(), first);
        }
    }

    #[test]
    fn probe_picks_one_of_the_probed_kernels() {
        let k = *PROBED.get_or_init(probe);
        assert!(matches!(
            k,
            KernelKind::Reference | KernelKind::FusedSwap | KernelKind::FusedSimd
        ));
    }
}
