//! Process-wide default kernel selection.
//!
//! A lattice with no explicit [`KernelKind`](apr_kernels::KernelKind)
//! choice resolves through [`default_kernel`]: the `APR_KERNEL`
//! environment variable wins, otherwise a one-shot startup micro-probe
//! times both backends on a small periodic box and the faster one becomes
//! the process default. The probe runs once per process (under a
//! `OnceLock`), costs a few milliseconds, and is deliberately tiny —
//! 12³ nodes — so it measures kernel overhead structure (passes, barriers,
//! table lookups) rather than cache capacity.

use crate::solver::Lattice;
use apr_kernels::KernelKind;
use std::sync::OnceLock;
use std::time::Instant;

static DEFAULT: OnceLock<KernelKind> = OnceLock::new();

/// The process-default kernel: `APR_KERNEL` if set, else the micro-probe
/// winner. Memoized for the life of the process.
pub fn default_kernel() -> KernelKind {
    *DEFAULT.get_or_init(|| match apr_kernels::kernel_from_env() {
        Some(kind) => kind,
        None => probe(),
    })
}

/// Time both backends on a small periodic forced box and return the
/// faster. Ties go to [`KernelKind::FusedSwap`], which also wins on
/// memory (no second distribution array).
fn probe() -> KernelKind {
    let reference = probe_one(KernelKind::Reference);
    let fused = probe_one(KernelKind::FusedSwap);
    if fused <= reference {
        KernelKind::FusedSwap
    } else {
        KernelKind::Reference
    }
}

fn probe_one(kind: KernelKind) -> std::time::Duration {
    const N: usize = 12;
    let mut lat = Lattice::new(N, N, N, 0.8);
    lat.periodic = [true; 3];
    lat.body_force = [1e-6, 0.0, 0.0];
    // Explicit choice: the probe must not recurse into default_kernel().
    lat.set_kernel(Some(kind));
    lat.step(); // warmup: builds the backend outside the timed region
                // Best of three rounds: the minimum is the least noise-contaminated
                // estimate of a deterministic kernel's cost.
    (0..3)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..4 {
                lat.step();
            }
            start.elapsed()
        })
        .min()
        .expect("non-empty rounds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_kernel_is_stable_across_calls() {
        let first = default_kernel();
        for _ in 0..3 {
            assert_eq!(default_kernel(), first);
        }
    }
}
