//! The lattice Boltzmann solver: storage, collision, streaming, boundaries.
//!
//! Implements paper §2.1: D3Q19 BGK with an external force field (Guo
//! forcing) and halfway bounce-back walls, plus velocity/pressure boundaries
//! via non-equilibrium extrapolation. Distributions are stored
//! array-of-structures (19 contiguous values per node) so collision touches
//! one cache line pair per node; both passes are rayon-parallel over z-slabs.

use crate::d3q19::{
    equilibrium_all, guo_force_term, lattice_viscosity_from_tau, C, OPPOSITE, Q, W,
};
use rayon::prelude::*;
use std::collections::HashMap;

/// Classification of a lattice node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum NodeClass {
    /// Interior fluid: collides and streams.
    Fluid = 0,
    /// Solid wall: neighbours bounce back off it (optionally moving).
    Wall = 1,
    /// Prescribed-velocity boundary (non-equilibrium extrapolation).
    Velocity = 2,
    /// Prescribed-density (pressure) boundary.
    Pressure = 3,
    /// Outside the simulated geometry; behaves as a stationary wall but is
    /// excluded from fluid-point counts (memory accounting, §3.6).
    Exterior = 4,
}

/// A D3Q19 lattice Boltzmann fluid domain.
#[derive(Debug, Clone)]
pub struct Lattice {
    /// Grid extent in x.
    pub nx: usize,
    /// Grid extent in y.
    pub ny: usize,
    /// Grid extent in z.
    pub nz: usize,
    /// Per-axis periodicity.
    pub periodic: [bool; 3],
    /// BGK relaxation time (global default; see [`Self::set_tau_at`]).
    pub tau: f64,
    /// Uniform body-force density applied to every fluid node.
    pub body_force: [f64; 3],
    /// Per-node relaxation times; allocated lazily on the first
    /// [`Self::set_tau_at`] call. Models space-dependent viscosity (e.g. a
    /// coarse bulk lattice whose window footprint is plasma, not blood).
    tau_field: Option<Vec<f64>>,
    flags: Vec<NodeClass>,
    /// Distributions, `node*19 + i`.
    f: Vec<f64>,
    f_tmp: Vec<f64>,
    /// Densities per node (updated at collision).
    pub rho: Vec<f64>,
    /// Velocities per node, `node*3 + axis` (updated at collision, includes
    /// the half-force correction).
    pub vel: Vec<f64>,
    /// External force field per node, `node*3 + axis` (IBM spreading target).
    pub force: Vec<f64>,
    wall_velocity: HashMap<usize, [f64; 3]>,
    velocity_bc: Vec<BcNode<[f64; 3]>>,
    pressure_bc: Vec<BcNode<f64>>,
    steps_taken: u64,
}

#[derive(Debug, Clone)]
struct BcNode<T> {
    node: usize,
    value: T,
    neighbor: Option<usize>,
}

impl Lattice {
    /// New all-fluid lattice at rest (ρ = 1, u = 0) with relaxation time
    /// `tau` and no periodic axes.
    ///
    /// # Panics
    /// Panics for empty dimensions or `tau ≤ 0.5`.
    pub fn new(nx: usize, ny: usize, nz: usize, tau: f64) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "empty lattice {nx}x{ny}x{nz}");
        assert!(tau > 0.5, "tau must exceed 1/2, got {tau}");
        let n = nx * ny * nz;
        let mut f = vec![0.0; n * Q];
        let feq = equilibrium_all(1.0, 0.0, 0.0, 0.0);
        for node in 0..n {
            f[node * Q..node * Q + Q].copy_from_slice(&feq);
        }
        Self {
            nx,
            ny,
            nz,
            periodic: [false; 3],
            tau,
            body_force: [0.0; 3],
            tau_field: None,
            flags: vec![NodeClass::Fluid; n],
            f_tmp: f.clone(),
            f,
            rho: vec![1.0; n],
            vel: vec![0.0; n * 3],
            force: vec![0.0; n * 3],
            wall_velocity: HashMap::new(),
            velocity_bc: Vec::new(),
            pressure_bc: Vec::new(),
            steps_taken: 0,
        }
    }

    /// Total node count.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Flat index of `(x, y, z)`.
    #[inline]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        x + self.nx * (y + self.ny * z)
    }

    /// Coordinates of flat index `node`.
    #[inline]
    pub fn coords(&self, node: usize) -> (usize, usize, usize) {
        let x = node % self.nx;
        let y = (node / self.nx) % self.ny;
        let z = node / (self.nx * self.ny);
        (x, y, z)
    }

    /// Node classification at `node`.
    #[inline]
    pub fn flag(&self, node: usize) -> NodeClass {
        self.flags[node]
    }

    /// Set a node classification. Prefer the dedicated `set_wall` /
    /// `set_velocity_bc` / `set_pressure_bc` helpers which also register
    /// auxiliary data.
    pub fn set_flag(&mut self, node: usize, class: NodeClass) {
        self.flags[node] = class;
    }

    /// Mark `node` as a stationary wall.
    pub fn set_wall(&mut self, node: usize) {
        self.flags[node] = NodeClass::Wall;
    }

    /// Mark `node` as a wall moving with velocity `u` (lattice units).
    pub fn set_moving_wall(&mut self, node: usize, u: [f64; 3]) {
        self.flags[node] = NodeClass::Wall;
        self.wall_velocity.insert(node, u);
    }

    /// Mark `node` as a prescribed-velocity boundary.
    pub fn set_velocity_bc(&mut self, node: usize, u: [f64; 3]) {
        self.flags[node] = NodeClass::Velocity;
        self.velocity_bc.push(BcNode {
            node,
            value: u,
            neighbor: None,
        });
    }

    /// Mark `node` as a prescribed-density (pressure) boundary.
    pub fn set_pressure_bc(&mut self, node: usize, rho: f64) {
        self.flags[node] = NodeClass::Pressure;
        self.pressure_bc.push(BcNode {
            node,
            value: rho,
            neighbor: None,
        });
    }

    /// Update the target velocity of an existing velocity-boundary node.
    pub fn update_velocity_bc(&mut self, node: usize, u: [f64; 3]) {
        if let Some(bc) = self.velocity_bc.iter_mut().find(|b| b.node == node) {
            bc.value = u;
        }
    }

    /// Number of fluid nodes.
    pub fn fluid_node_count(&self) -> usize {
        self.flags
            .iter()
            .filter(|&&c| c == NodeClass::Fluid)
            .count()
    }

    /// Set every node's distributions to equilibrium at `(rho, u)`.
    pub fn initialize_equilibrium(&mut self, rho: f64, u: [f64; 3]) {
        let feq = equilibrium_all(rho, u[0], u[1], u[2]);
        for node in 0..self.node_count() {
            self.f[node * Q..node * Q + Q].copy_from_slice(&feq);
            self.rho[node] = rho;
            self.vel[node * 3..node * 3 + 3].copy_from_slice(&u);
        }
    }

    /// Set one node's distributions to equilibrium at `(rho, u)`.
    pub fn initialize_node_equilibrium(&mut self, node: usize, rho: f64, u: [f64; 3]) {
        let feq = equilibrium_all(rho, u[0], u[1], u[2]);
        self.f[node * Q..node * Q + Q].copy_from_slice(&feq);
        self.rho[node] = rho;
        self.vel[node * 3..node * 3 + 3].copy_from_slice(&u);
    }

    /// Raw distribution `f_i` at `node`.
    #[inline]
    pub fn distribution(&self, node: usize, i: usize) -> f64 {
        self.f[node * Q + i]
    }

    /// All 19 distributions at `node`.
    #[inline]
    pub fn distributions(&self, node: usize) -> &[f64] {
        &self.f[node * Q..node * Q + Q]
    }

    /// Overwrite all 19 distributions at `node`.
    pub fn set_distributions(&mut self, node: usize, values: &[f64; Q]) {
        self.f[node * Q..node * Q + Q].copy_from_slice(values);
    }

    /// Density and velocity computed directly from the current
    /// distributions at `node` (no force correction).
    pub fn moments_at(&self, node: usize) -> (f64, [f64; 3]) {
        let fs = &self.f[node * Q..node * Q + Q];
        let mut rho = 0.0;
        let mut m = [0.0; 3];
        for i in 0..Q {
            rho += fs[i];
            m[0] += fs[i] * C[i][0] as f64;
            m[1] += fs[i] * C[i][1] as f64;
            m[2] += fs[i] * C[i][2] as f64;
        }
        (rho, [m[0] / rho, m[1] / rho, m[2] / rho])
    }

    /// Stored (collision-time) velocity at `node`.
    #[inline]
    pub fn velocity_at(&self, node: usize) -> [f64; 3] {
        [
            self.vel[node * 3],
            self.vel[node * 3 + 1],
            self.vel[node * 3 + 2],
        ]
    }

    /// Zero the external force field (call after each IBM cycle).
    pub fn clear_forces(&mut self) {
        self.force.fill(0.0);
    }

    /// Add `g` to the external force at `node`.
    #[inline]
    pub fn add_force(&mut self, node: usize, g: [f64; 3]) {
        self.force[node * 3] += g[0];
        self.force[node * 3 + 1] += g[1];
        self.force[node * 3 + 2] += g[2];
    }

    /// Total mass over all fluid nodes.
    pub fn total_mass(&self) -> f64 {
        (0..self.node_count())
            .filter(|&n| self.flags[n] == NodeClass::Fluid)
            .map(|n| self.f[n * Q..n * Q + Q].iter().sum::<f64>())
            .sum()
    }

    /// Steps taken since construction.
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Overwrite the step counter (checkpoint restore only).
    pub fn set_steps_taken(&mut self, steps: u64) {
        self.steps_taken = steps;
    }

    /// The per-node relaxation-time field, if one has been installed.
    pub fn tau_field(&self) -> Option<&[f64]> {
        self.tau_field.as_deref()
    }

    /// Install or clear the per-node τ field wholesale (checkpoint
    /// restore). A provided field must cover every node.
    pub fn set_tau_field(&mut self, field: Option<Vec<f64>>) {
        if let Some(f) = &field {
            assert_eq!(
                f.len(),
                self.node_count(),
                "tau field must cover every node"
            );
        }
        self.tau_field = field;
    }

    /// Lattice kinematic viscosity implied by `tau`.
    pub fn lattice_viscosity(&self) -> f64 {
        lattice_viscosity_from_tau(self.tau)
    }

    /// Relaxation time at `node` (per-node value if set, else the global).
    #[inline]
    pub fn tau_at(&self, node: usize) -> f64 {
        match &self.tau_field {
            Some(f) => f[node],
            None => self.tau,
        }
    }

    /// Set the relaxation time of a single node (allocates the per-node
    /// field on first use).
    pub fn set_tau_at(&mut self, node: usize, tau: f64) {
        assert!(tau > 0.5, "tau must exceed 1/2, got {tau}");
        let field = self
            .tau_field
            .get_or_insert_with(|| vec![self.tau; self.nx * self.ny * self.nz]);
        field[node] = tau;
    }

    /// Neighbour flat index of `node` displaced by `c_i`, respecting
    /// periodicity; `None` if it leaves a non-periodic domain.
    #[inline]
    pub fn neighbor(&self, x: usize, y: usize, z: usize, i: usize) -> Option<usize> {
        let dims = [self.nx as i64, self.ny as i64, self.nz as i64];
        let mut p = [
            x as i64 + C[i][0] as i64,
            y as i64 + C[i][1] as i64,
            z as i64 + C[i][2] as i64,
        ];
        for a in 0..3 {
            if p[a] < 0 || p[a] >= dims[a] {
                if self.periodic[a] {
                    p[a] = (p[a] + dims[a]) % dims[a];
                } else {
                    return None;
                }
            }
        }
        Some((p[0] + dims[0] * (p[1] + dims[1] * p[2])) as usize)
    }

    /// Advance one time step: collide (fluid), stream (fluid, with halfway
    /// bounce-back off walls), then refresh boundary-condition nodes.
    pub fn step(&mut self) {
        {
            let _span = apr_telemetry::span("lattice.collide");
            self.collide();
        }
        let _span = apr_telemetry::span("lattice.stream");
        self.stream();
        self.apply_bc_nodes();
        self.steps_taken += 1;
    }

    /// Collision phase only. Exposed so the APR coupling can impose
    /// post-collision states on window-boundary nodes between collision and
    /// streaming (Dupuis–Chopard style grid refinement).
    pub fn collide_phase(&mut self) {
        self.collide();
    }

    /// Streaming + boundary-node phase only (pairs with [`Self::collide_phase`]).
    pub fn stream_phase(&mut self) {
        self.stream();
        self.apply_bc_nodes();
        self.steps_taken += 1;
    }

    /// BGK collision with Guo forcing on every fluid node; updates stored
    /// `rho` and `vel` (velocity includes the half-force correction).
    fn collide(&mut self) {
        let global_tau = self.tau;
        let bf = self.body_force;
        let flags = &self.flags;
        let tau_field = self.tau_field.as_deref();
        self.f
            .par_chunks_mut(Q)
            .zip(self.rho.par_iter_mut())
            .zip(self.vel.par_chunks_mut(3))
            .zip(self.force.par_chunks(3))
            .zip(flags.par_iter())
            .enumerate()
            .for_each(|(node, ((((fs, rho), vel), g), &flag))| {
                if flag != NodeClass::Fluid {
                    return;
                }
                let tau = match tau_field {
                    Some(f) => f[node],
                    None => global_tau,
                };
                let omega = 1.0 / tau;
                let force_scale = 1.0 - 0.5 * omega;
                let mut r = 0.0;
                let mut m = [0.0f64; 3];
                for i in 0..Q {
                    r += fs[i];
                    m[0] += fs[i] * C[i][0] as f64;
                    m[1] += fs[i] * C[i][1] as f64;
                    m[2] += fs[i] * C[i][2] as f64;
                }
                let gx = g[0] + bf[0];
                let gy = g[1] + bf[1];
                let gz = g[2] + bf[2];
                let ux = (m[0] + 0.5 * gx) / r;
                let uy = (m[1] + 0.5 * gy) / r;
                let uz = (m[2] + 0.5 * gz) / r;
                *rho = r;
                vel[0] = ux;
                vel[1] = uy;
                vel[2] = uz;
                let feq = equilibrium_all(r, ux, uy, uz);
                for i in 0..Q {
                    let forcing = guo_force_term(i, ux, uy, uz, gx, gy, gz);
                    fs[i] += omega * (feq[i] - fs[i]) + force_scale * forcing;
                }
            });
    }

    /// Pull-streaming with halfway bounce-back (optionally moving walls).
    fn stream(&mut self) {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let plane = nx * ny;
        let f = &self.f;
        let flags = &self.flags;
        let wall_velocity = &self.wall_velocity;
        let rho = &self.rho;
        let periodic = self.periodic;
        let neighbor = move |x: usize, y: usize, z: usize, i: usize| -> Option<usize> {
            let dims = [nx as i64, ny as i64, nz as i64];
            let mut p = [
                x as i64 + C[i][0] as i64,
                y as i64 + C[i][1] as i64,
                z as i64 + C[i][2] as i64,
            ];
            for a in 0..3 {
                if p[a] < 0 || p[a] >= dims[a] {
                    if periodic[a] {
                        p[a] = (p[a] + dims[a]) % dims[a];
                    } else {
                        return None;
                    }
                }
            }
            Some((p[0] + dims[0] * (p[1] + dims[1] * p[2])) as usize)
        };
        self.f_tmp
            .par_chunks_mut(plane * Q)
            .enumerate()
            .for_each(|(z, slab)| {
                for y in 0..ny {
                    for x in 0..nx {
                        let node = x + nx * (y + ny * z);
                        let local = (x + nx * y) * Q;
                        match flags[node] {
                            NodeClass::Fluid => {
                                for i in 0..Q {
                                    // Pull from the node the population left.
                                    let o = OPPOSITE[i];
                                    let pulled = match neighbor(x, y, z, o) {
                                        Some(src)
                                            if matches!(
                                                flags[src],
                                                NodeClass::Fluid
                                                    | NodeClass::Velocity
                                                    | NodeClass::Pressure
                                            ) =>
                                        {
                                            f[src * Q + i]
                                        }
                                        Some(src) => {
                                            // Wall / exterior: halfway bounce-back,
                                            // with moving-wall momentum term.
                                            let mut v = f[node * Q + o];
                                            if let Some(uw) = wall_velocity.get(&src) {
                                                let cu = C[i][0] as f64 * uw[0]
                                                    + C[i][1] as f64 * uw[1]
                                                    + C[i][2] as f64 * uw[2];
                                                v += 6.0 * W[i] * rho[node] * cu;
                                            }
                                            v
                                        }
                                        None => f[node * Q + o],
                                    };
                                    slab[local + i] = pulled;
                                }
                            }
                            _ => {
                                // Non-fluid nodes carry their distributions
                                // forward; BC nodes are rebuilt right after.
                                slab[local..local + Q].copy_from_slice(&f[node * Q..node * Q + Q]);
                            }
                        }
                    }
                }
            });
        std::mem::swap(&mut self.f, &mut self.f_tmp);
    }

    /// Rebuild velocity/pressure boundary nodes by non-equilibrium
    /// extrapolation (Guo et al. 2002): `f = f^eq(ρ_b, u_b) + f^neq(nb)`.
    fn apply_bc_nodes(&mut self) {
        // Resolve interior neighbours lazily on first use.
        let resolve = |this: &Lattice, node: usize| -> Option<usize> {
            let (x, y, z) = this.coords(node);
            (1..Q).find_map(|i| {
                this.neighbor(x, y, z, i)
                    .filter(|&nb| this.flags[nb] == NodeClass::Fluid)
            })
        };

        let mut velocity_bc = std::mem::take(&mut self.velocity_bc);
        for bc in &mut velocity_bc {
            if bc.neighbor.is_none() {
                bc.neighbor = resolve(self, bc.node);
            }
            let u = bc.value;
            let new_f = match bc.neighbor {
                Some(nb) => {
                    let (rho_nb, u_nb) = self.moments_at(nb);
                    let feq_nb = equilibrium_all(rho_nb, u_nb[0], u_nb[1], u_nb[2]);
                    let feq_b = equilibrium_all(rho_nb, u[0], u[1], u[2]);
                    let mut out = [0.0; Q];
                    for i in 0..Q {
                        out[i] = feq_b[i] + (self.f[nb * Q + i] - feq_nb[i]);
                    }
                    out
                }
                None => equilibrium_all(1.0, u[0], u[1], u[2]),
            };
            self.set_distributions(bc.node, &new_f);
            self.rho[bc.node] = new_f.iter().sum();
            self.vel[bc.node * 3..bc.node * 3 + 3].copy_from_slice(&u);
        }
        self.velocity_bc = velocity_bc;

        let mut pressure_bc = std::mem::take(&mut self.pressure_bc);
        for bc in &mut pressure_bc {
            if bc.neighbor.is_none() {
                bc.neighbor = resolve(self, bc.node);
            }
            let rho_b = bc.value;
            let new_f = match bc.neighbor {
                Some(nb) => {
                    let (rho_nb, u_nb) = self.moments_at(nb);
                    let feq_nb = equilibrium_all(rho_nb, u_nb[0], u_nb[1], u_nb[2]);
                    let feq_b = equilibrium_all(rho_b, u_nb[0], u_nb[1], u_nb[2]);
                    let mut out = [0.0; Q];
                    for i in 0..Q {
                        out[i] = feq_b[i] + (self.f[nb * Q + i] - feq_nb[i]);
                    }
                    self.vel[bc.node * 3..bc.node * 3 + 3].copy_from_slice(&u_nb);
                    out
                }
                None => equilibrium_all(rho_b, 0.0, 0.0, 0.0),
            };
            self.set_distributions(bc.node, &new_f);
            self.rho[bc.node] = rho_b;
        }
        self.pressure_bc = pressure_bc;
    }
}
