//! The lattice Boltzmann solver: storage, boundaries, and kernel dispatch.
//!
//! Implements paper §2.1: D3Q19 BGK with an external force field (Guo
//! forcing) and halfway bounce-back walls, plus velocity/pressure boundaries
//! via non-equilibrium extrapolation. Distributions are stored
//! array-of-structures (19 contiguous values per node); the collide/stream
//! inner loops live in `apr-kernels`, behind the [`KernelBackend`] trait,
//! and [`Lattice`] delegates each (half-)step to a selected backend — the
//! verbatim two-pass [`KernelKind::Reference`] path, the in-place fused
//! [`KernelKind::FusedSwap`] path, or the vectorized
//! [`KernelKind::FusedSimd`] path. Every backend runs on the deterministic
//! `apr-exec` pool and produces bit-identical results for any `APR_THREADS`,
//! any backend choice, and any [`ChunkingPolicy`].

use crate::d3q19::{equilibrium_all, lattice_viscosity_from_tau, C, OPPOSITE, Q};
use crate::kernel_select;
use apr_kernels::{
    ChunkingPolicy, FusedSimdKernel, FusedSwapKernel, KernelBackend, KernelKind, LatticeView,
    ReferenceKernel,
};
use std::collections::HashMap;

pub use apr_kernels::NodeClass;

/// Typed boundary condition of a lattice node — the single source of truth
/// for boundary state, set via [`Lattice::set_boundary`] and read back via
/// [`Lattice::boundary`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Boundary {
    /// Stationary solid wall (halfway bounce-back).
    Wall,
    /// Solid wall moving with the given lattice velocity (bounce-back plus
    /// the moving-wall momentum term).
    MovingWall([f64; 3]),
    /// Prescribed-velocity node, rebuilt each step by non-equilibrium
    /// extrapolation.
    Velocity([f64; 3]),
    /// Prescribed-density (pressure) node, rebuilt each step by
    /// non-equilibrium extrapolation.
    Pressure(f64),
    /// Outside the simulated geometry; a stationary wall excluded from
    /// fluid-point accounting.
    Exterior,
}

/// One half of a lattice time step; see [`Lattice::advance`].
///
/// A full step is `advance(Collide)` followed by `advance(Stream)`; the
/// split exists so grid couplings (Dupuis–Chopard refinement) can impose
/// post-collision states between the halves. Only the `Stream` half
/// increments [`Lattice::steps_taken`], and `advance` enforces strict
/// collide/stream alternation so a coupling loop cannot double-count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubStep {
    /// BGK collision with Guo forcing on every fluid node.
    Collide,
    /// Streaming with bounce-back, then boundary-node refresh; completes
    /// the step.
    Stream,
}

/// Boundary data attached to one node. Only data-carrying variants
/// (`MovingWall`/`Velocity`/`Pressure`) get an entry; plain walls and
/// exterior nodes live in the flag array alone.
#[derive(Debug, Clone)]
struct BcEntry {
    node: usize,
    boundary: Boundary,
    /// Interior fluid neighbour used for non-equilibrium extrapolation,
    /// resolved lazily on first use.
    neighbor: Option<usize>,
}

/// The kernel backend a lattice is currently running, plus the geometry it
/// was compiled for (fused kernels precompute their streaming stencil).
#[derive(Debug, Clone)]
enum Backend {
    Reference(ReferenceKernel),
    Fused {
        kernel: FusedSwapKernel,
        rev: u64,
        periodic: [bool; 3],
    },
    Simd {
        kernel: FusedSimdKernel,
        rev: u64,
        periodic: [bool; 3],
    },
}

/// A D3Q19 lattice Boltzmann fluid domain.
#[derive(Debug, Clone)]
pub struct Lattice {
    /// Grid extent in x.
    pub nx: usize,
    /// Grid extent in y.
    pub ny: usize,
    /// Grid extent in z.
    pub nz: usize,
    /// Per-axis periodicity.
    pub periodic: [bool; 3],
    /// BGK relaxation time (global default; see [`Self::set_tau_at`]).
    pub tau: f64,
    /// Uniform body-force density applied to every fluid node.
    pub body_force: [f64; 3],
    /// Per-node relaxation times; allocated lazily on the first
    /// [`Self::set_tau_at`] call. Models space-dependent viscosity (e.g. a
    /// coarse bulk lattice whose window footprint is plasma, not blood).
    tau_field: Option<Vec<f64>>,
    flags: Vec<NodeClass>,
    /// Distributions, `node*19 + i` — in *natural* direction order at step
    /// boundaries; direction-reversed on fluid nodes while
    /// [`Self::swap_parity`] is set (fused kernel, between the halves).
    f: Vec<f64>,
    /// Densities per node (updated at collision).
    pub rho: Vec<f64>,
    /// Velocities per node, `node*3 + axis` (updated at collision, includes
    /// the half-force correction).
    pub vel: Vec<f64>,
    /// External force field per node, `node*3 + axis` (IBM spreading target).
    pub force: Vec<f64>,
    /// Data-carrying boundary entries in insertion order (applied in this
    /// deterministic order every step) with an index for O(1) node lookup.
    /// Never iterate `bc_index` — `HashMap` order is nondeterministic.
    bc_nodes: Vec<BcEntry>,
    bc_index: HashMap<usize, usize>,
    /// True between `advance(Collide)` and `advance(Stream)`.
    pending_stream: bool,
    steps_taken: u64,
    /// Requested kernel; `None` defers to the process-wide probed default.
    kernel_choice: Option<KernelKind>,
    /// Requested chunking policy; `None` defers to the installed
    /// [`apr_kernels::RuntimeConfig`] (or `APR_CHUNKING`). Never affects
    /// the produced numbers.
    chunking: Option<ChunkingPolicy>,
    /// The running backend (built lazily, rebuilt on geometry changes).
    backend: Option<Backend>,
    /// True while fluid-node distributions are stored direction-reversed
    /// (fused kernel, mid-step). Accessors translate transparently.
    swap_parity: bool,
    /// Bumped by every table-affecting geometry mutation; fused backends
    /// record the revision they were compiled at.
    geometry_rev: u64,
    /// `(node, wall velocity)` for every moving wall, sorted by node;
    /// rebuilt lazily when `moving_rev` falls behind `geometry_rev`.
    moving_walls: Vec<(usize, [f64; 3])>,
    moving_rev: u64,
}

impl Lattice {
    /// New all-fluid lattice at rest (ρ = 1, u = 0) with relaxation time
    /// `tau` and no periodic axes.
    ///
    /// # Panics
    /// Panics for empty dimensions or `tau ≤ 0.5`.
    pub fn new(nx: usize, ny: usize, nz: usize, tau: f64) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "empty lattice {nx}x{ny}x{nz}");
        assert!(tau > 0.5, "tau must exceed 1/2, got {tau}");
        let n = nx * ny * nz;
        let mut f = vec![0.0; n * Q];
        let feq = equilibrium_all(1.0, 0.0, 0.0, 0.0);
        for node in 0..n {
            f[node * Q..node * Q + Q].copy_from_slice(&feq);
        }
        Self {
            nx,
            ny,
            nz,
            periodic: [false; 3],
            tau,
            body_force: [0.0; 3],
            tau_field: None,
            flags: vec![NodeClass::Fluid; n],
            f,
            rho: vec![1.0; n],
            vel: vec![0.0; n * 3],
            force: vec![0.0; n * 3],
            bc_nodes: Vec::new(),
            bc_index: HashMap::new(),
            pending_stream: false,
            steps_taken: 0,
            kernel_choice: None,
            chunking: None,
            backend: None,
            swap_parity: false,
            geometry_rev: 0,
            moving_walls: Vec::new(),
            moving_rev: 0,
        }
    }

    /// Total node count.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Flat index of `(x, y, z)`.
    #[inline]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        x + self.nx * (y + self.ny * z)
    }

    /// Coordinates of flat index `node`.
    #[inline]
    pub fn coords(&self, node: usize) -> (usize, usize, usize) {
        let x = node % self.nx;
        let y = (node / self.nx) % self.ny;
        let z = node / (self.nx * self.ny);
        (x, y, z)
    }

    /// Node classification at `node`.
    #[inline]
    pub fn flag(&self, node: usize) -> NodeClass {
        self.flags[node]
    }

    /// Set a node classification without touching boundary data. Prefer
    /// [`Self::set_boundary`] / [`Self::clear_boundary`], which keep the
    /// flag and any attached boundary value consistent.
    pub fn set_flag(&mut self, node: usize, class: NodeClass) {
        self.flags[node] = class;
        self.geometry_rev += 1;
    }

    /// Impose a typed boundary condition on `node`, replacing whatever
    /// boundary (if any) the node had before.
    pub fn set_boundary(&mut self, node: usize, boundary: Boundary) {
        let new_class = match boundary {
            Boundary::Wall | Boundary::MovingWall(_) => NodeClass::Wall,
            Boundary::Velocity(_) => NodeClass::Velocity,
            Boundary::Pressure(_) => NodeClass::Pressure,
            Boundary::Exterior => NodeClass::Exterior,
        };
        // Same-class velocity/pressure updates (e.g. a ramped inlet) change
        // only the value applied after streaming, not the streaming stencil
        // — everything else (class changes, moving-wall velocities, which
        // are baked into the fused kernel's coefficients) invalidates the
        // compiled adjacency.
        let value_only = self.flags[node] == new_class
            && matches!(new_class, NodeClass::Velocity | NodeClass::Pressure);
        if !value_only {
            self.geometry_rev += 1;
        }
        self.flags[node] = new_class;
        match boundary {
            Boundary::Wall | Boundary::Exterior => self.remove_bc_entry(node),
            b => match self.bc_index.get(&node) {
                Some(&i) => {
                    let entry = &mut self.bc_nodes[i];
                    // Changing the boundary *kind* may change which
                    // neighbour qualifies; same-kind updates (e.g. a ramped
                    // inlet velocity) keep the cached one.
                    if std::mem::discriminant(&entry.boundary) != std::mem::discriminant(&b) {
                        entry.neighbor = None;
                    }
                    entry.boundary = b;
                }
                None => {
                    self.bc_index.insert(node, self.bc_nodes.len());
                    self.bc_nodes.push(BcEntry {
                        node,
                        boundary: b,
                        neighbor: None,
                    });
                }
            },
        }
    }

    /// Revert `node` to interior fluid, removing any boundary data.
    pub fn clear_boundary(&mut self, node: usize) {
        self.flags[node] = NodeClass::Fluid;
        self.geometry_rev += 1;
        self.remove_bc_entry(node);
    }

    /// The boundary condition at `node` (`None` for interior fluid).
    pub fn boundary(&self, node: usize) -> Option<Boundary> {
        match self.flags[node] {
            NodeClass::Fluid => None,
            NodeClass::Exterior => Some(Boundary::Exterior),
            NodeClass::Wall => Some(match self.bc_entry(node) {
                Some(e) => e.boundary,
                None => Boundary::Wall,
            }),
            NodeClass::Velocity | NodeClass::Pressure => self.bc_entry(node).map(|e| e.boundary),
        }
    }

    fn bc_entry(&self, node: usize) -> Option<&BcEntry> {
        self.bc_index.get(&node).map(|&i| &self.bc_nodes[i])
    }

    fn remove_bc_entry(&mut self, node: usize) {
        if let Some(i) = self.bc_index.remove(&node) {
            self.bc_nodes.swap_remove(i);
            if i < self.bc_nodes.len() {
                self.bc_index.insert(self.bc_nodes[i].node, i);
            }
        }
    }

    /// Update the target velocity of an existing velocity-boundary node
    /// (keeps the cached extrapolation neighbour; no-op for other nodes).
    pub fn update_velocity_bc(&mut self, node: usize, u: [f64; 3]) {
        if self.flags[node] == NodeClass::Velocity && self.bc_index.contains_key(&node) {
            self.set_boundary(node, Boundary::Velocity(u));
        }
    }

    /// Number of fluid nodes.
    pub fn fluid_node_count(&self) -> usize {
        self.flags
            .iter()
            .filter(|&&c| c == NodeClass::Fluid)
            .count()
    }

    /// Set every node's distributions to equilibrium at `(rho, u)`.
    pub fn initialize_equilibrium(&mut self, rho: f64, u: [f64; 3]) {
        let feq = equilibrium_all(rho, u[0], u[1], u[2]);
        for node in 0..self.node_count() {
            self.set_distributions(node, &feq);
            self.rho[node] = rho;
            self.vel[node * 3..node * 3 + 3].copy_from_slice(&u);
        }
    }

    /// Set one node's distributions to equilibrium at `(rho, u)`.
    pub fn initialize_node_equilibrium(&mut self, node: usize, rho: f64, u: [f64; 3]) {
        let feq = equilibrium_all(rho, u[0], u[1], u[2]);
        self.set_distributions(node, &feq);
        self.rho[node] = rho;
        self.vel[node * 3..node * 3 + 3].copy_from_slice(&u);
    }

    /// Storage slot of logical direction `i` at `node`: identity except on
    /// fluid nodes while the fused kernel holds them direction-reversed
    /// mid-step (non-fluid nodes are never reversed — they do not collide).
    #[inline]
    fn slot(&self, node: usize, i: usize) -> usize {
        if self.swap_parity && self.flags[node] == NodeClass::Fluid {
            node * Q + OPPOSITE[i]
        } else {
            node * Q + i
        }
    }

    /// Raw distribution `f_i` at `node`.
    #[inline]
    pub fn distribution(&self, node: usize, i: usize) -> f64 {
        self.f[self.slot(node, i)]
    }

    /// Overwrite one distribution `f_i` at `node` (storage parity is
    /// handled internally). The partial-plane halo exchange uses this to
    /// refresh only the populations that actually cross a slab face.
    #[inline]
    pub fn set_distribution(&mut self, node: usize, i: usize, value: f64) {
        let s = self.slot(node, i);
        self.f[s] = value;
    }

    /// All 19 distributions at `node`, in direction order.
    ///
    /// # Panics
    /// Panics when called on a fluid node between the halves of a fused
    /// step (a borrowed slice cannot express the reversed storage); use
    /// [`Self::distribution`] there instead.
    #[inline]
    pub fn distributions(&self, node: usize) -> &[f64] {
        assert!(
            !(self.swap_parity && self.flags[node] == NodeClass::Fluid),
            "fluid distributions are direction-reversed mid-step under the \
             fused kernel; read them via distribution(node, i)"
        );
        &self.f[node * Q..node * Q + Q]
    }

    /// Overwrite all 19 distributions at `node` (`values` in direction
    /// order; storage parity is handled internally).
    pub fn set_distributions(&mut self, node: usize, values: &[f64; Q]) {
        if self.swap_parity && self.flags[node] == NodeClass::Fluid {
            for i in 0..Q {
                self.f[node * Q + OPPOSITE[i]] = values[i];
            }
        } else {
            self.f[node * Q..node * Q + Q].copy_from_slice(values);
        }
    }

    /// Density and velocity computed directly from the current
    /// distributions at `node` (no force correction).
    pub fn moments_at(&self, node: usize) -> (f64, [f64; 3]) {
        let mut rho = 0.0;
        let mut m = [0.0; 3];
        for (i, c) in C.iter().enumerate() {
            let fi = self.f[self.slot(node, i)];
            rho += fi;
            m[0] += fi * c[0] as f64;
            m[1] += fi * c[1] as f64;
            m[2] += fi * c[2] as f64;
        }
        (rho, [m[0] / rho, m[1] / rho, m[2] / rho])
    }

    /// Stored (collision-time) velocity at `node`.
    #[inline]
    pub fn velocity_at(&self, node: usize) -> [f64; 3] {
        [
            self.vel[node * 3],
            self.vel[node * 3 + 1],
            self.vel[node * 3 + 2],
        ]
    }

    /// Zero the external force field (call after each IBM cycle).
    pub fn clear_forces(&mut self) {
        self.force.fill(0.0);
    }

    /// Add `g` to the external force at `node`.
    #[inline]
    pub fn add_force(&mut self, node: usize, g: [f64; 3]) {
        self.force[node * 3] += g[0];
        self.force[node * 3 + 1] += g[1];
        self.force[node * 3 + 2] += g[2];
    }

    /// Total mass over all fluid nodes (order-insensitive, so parity does
    /// not matter).
    pub fn total_mass(&self) -> f64 {
        (0..self.node_count())
            .filter(|&n| self.flags[n] == NodeClass::Fluid)
            .map(|n| self.f[n * Q..n * Q + Q].iter().sum::<f64>())
            .sum()
    }

    /// Total mass and momentum (`Σ_i f_i c_i`) over all fluid nodes, plus
    /// the fluid-node count — the per-step sample the conservation ledger
    /// accumulates. Reduced on the exec pool through its fixed-shape
    /// ordered tree ([`apr_exec::ExecPool::par_sum4`]), so the totals are
    /// bit-identical across thread counts; direction access goes through
    /// the parity-aware slot mapping, so momentum keeps its sign even when
    /// sampled between the halves of a fused step.
    pub fn mass_momentum_totals(&self) -> (f64, [f64; 3], usize) {
        let n = self.node_count();
        let [mass, mx, my, mz] = apr_exec::current().par_sum4(n, 4096, |_, range| {
            let mut acc = [0.0f64; 4];
            for node in range {
                if self.flags[node] != NodeClass::Fluid {
                    continue;
                }
                for (i, c) in C.iter().enumerate() {
                    let fi = self.f[self.slot(node, i)];
                    acc[0] += fi;
                    acc[1] += fi * c[0] as f64;
                    acc[2] += fi * c[1] as f64;
                    acc[3] += fi * c[2] as f64;
                }
            }
            acc
        });
        (mass, [mx, my, mz], self.fluid_node_count())
    }

    /// Steps taken since construction.
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Overwrite the step counter (checkpoint restore only).
    pub fn set_steps_taken(&mut self, steps: u64) {
        self.steps_taken = steps;
    }

    /// The per-node relaxation-time field, if one has been installed.
    pub fn tau_field(&self) -> Option<&[f64]> {
        self.tau_field.as_deref()
    }

    /// Install or clear the per-node τ field wholesale (checkpoint
    /// restore). A provided field must cover every node.
    pub fn set_tau_field(&mut self, field: Option<Vec<f64>>) {
        if let Some(f) = &field {
            assert_eq!(
                f.len(),
                self.node_count(),
                "tau field must cover every node"
            );
        }
        self.tau_field = field;
    }

    /// Lattice kinematic viscosity implied by `tau`.
    pub fn lattice_viscosity(&self) -> f64 {
        lattice_viscosity_from_tau(self.tau)
    }

    /// Relaxation time at `node` (per-node value if set, else the global).
    #[inline]
    pub fn tau_at(&self, node: usize) -> f64 {
        match &self.tau_field {
            Some(f) => f[node],
            None => self.tau,
        }
    }

    /// Set the relaxation time of a single node (allocates the per-node
    /// field on first use).
    pub fn set_tau_at(&mut self, node: usize, tau: f64) {
        assert!(tau > 0.5, "tau must exceed 1/2, got {tau}");
        let field = self
            .tau_field
            .get_or_insert_with(|| vec![self.tau; self.nx * self.ny * self.nz]);
        field[node] = tau;
    }

    /// Neighbour flat index of `(x, y, z)` displaced by `c_i`, respecting
    /// periodicity; `None` if it leaves a non-periodic domain.
    #[deprecated(
        since = "0.1.0",
        note = "use link_neighbor(node, i) or apr_kernels::neighbor_index"
    )]
    #[inline]
    pub fn neighbor(&self, x: usize, y: usize, z: usize, i: usize) -> Option<usize> {
        apr_kernels::neighbor_index([self.nx, self.ny, self.nz], self.periodic, x, y, z, i)
    }

    /// Neighbour flat index of `node` displaced by `c_i`, respecting
    /// periodicity; `None` if it leaves a non-periodic domain.
    #[inline]
    pub fn link_neighbor(&self, node: usize, i: usize) -> Option<usize> {
        let (x, y, z) = self.coords(node);
        apr_kernels::neighbor_index([self.nx, self.ny, self.nz], self.periodic, x, y, z, i)
    }

    // ------------------------------------------------------------------
    // Kernel selection and dispatch
    // ------------------------------------------------------------------

    /// Select the kernel backend: `Some(kind)` forces a variant, `None`
    /// defers to `APR_KERNEL` / the startup micro-probe. Takes effect on
    /// the next (half-)step.
    ///
    /// # Panics
    /// Panics mid-step (between collide and stream): the halves of one step
    /// must run on one backend.
    pub fn set_kernel(&mut self, choice: Option<KernelKind>) {
        assert!(
            !self.pending_stream,
            "cannot switch kernels between collide and stream"
        );
        if self.kernel_choice != choice {
            self.kernel_choice = choice;
            self.backend = None;
        }
    }

    /// The kernel variant this lattice resolves to right now.
    pub fn kernel(&self) -> KernelKind {
        match self.kernel_choice {
            Some(k) => k,
            None => kernel_select::default_kernel(),
        }
    }

    /// Select the chunking policy: `Some(policy)` forces it for this
    /// lattice, `None` defers to the installed
    /// [`apr_kernels::RuntimeConfig`] (or `APR_CHUNKING`). Safe to change
    /// at any time — the policy only shapes lane scheduling, never the
    /// produced numbers.
    pub fn set_chunking(&mut self, chunking: Option<ChunkingPolicy>) {
        self.chunking = chunking;
    }

    /// The chunking policy this lattice resolves to right now.
    pub fn chunking(&self) -> ChunkingPolicy {
        self.chunking
            .unwrap_or_else(apr_kernels::runtime::default_chunking)
    }

    /// True between `advance(Collide)` and `advance(Stream)`.
    #[inline]
    pub fn mid_step(&self) -> bool {
        self.pending_stream
    }

    /// True while fluid-node distributions are stored direction-reversed
    /// (fused kernel, mid-step). Plain accessors translate automatically;
    /// only raw-storage consumers (checkpointing) need to care.
    #[inline]
    pub fn swap_parity(&self) -> bool {
        self.swap_parity
    }

    /// Raw distribution storage in slot order, parity untranslated — for
    /// checkpoint writers paired with [`Self::restore_storage`].
    pub fn storage_f(&self) -> &[f64] {
        &self.f
    }

    /// Restore raw distribution storage plus step-phase flags saved from
    /// [`Self::storage_f`] / [`Self::mid_step`] / [`Self::swap_parity`].
    ///
    /// Fails (leaving the lattice untouched) if the length does not match
    /// or the saved phase is inconsistent with this lattice's kernel: a
    /// mid-step blob stores post-collision state in the writing backend's
    /// storage order, so it can only resume on a backend with the same
    /// order.
    pub fn restore_storage(
        &mut self,
        f: Vec<f64>,
        pending_stream: bool,
        swap_parity: bool,
    ) -> Result<(), String> {
        if f.len() != self.node_count() * Q {
            return Err(format!(
                "distribution storage length {} does not match lattice ({} nodes)",
                f.len(),
                self.node_count()
            ));
        }
        if !pending_stream && swap_parity {
            return Err("swap parity outside a pending stream is impossible".into());
        }
        if pending_stream {
            let reversed = self.kernel().reversed_storage();
            if swap_parity != reversed {
                return Err(format!(
                    "mid-step checkpoint stored with {} storage cannot resume on the {} kernel",
                    if swap_parity { "reversed" } else { "natural" },
                    self.kernel()
                ));
            }
        }
        self.f = f;
        self.pending_stream = pending_stream;
        self.swap_parity = swap_parity;
        Ok(())
    }

    /// Bytes of distribution-array storage plus the active backend's
    /// auxiliary memory (reference: full second array once streamed;
    /// fused: the compiled adjacency table). The §3.6-style memory
    /// accounting hook for the kernel engine.
    pub fn distribution_memory_bytes(&self) -> usize {
        self.f.len() * std::mem::size_of::<f64>() + self.kernel_scratch_bytes()
    }

    /// Auxiliary heap bytes held by the active kernel backend.
    pub fn kernel_scratch_bytes(&self) -> usize {
        match &self.backend {
            None => 0,
            Some(Backend::Reference(k)) => k.scratch_bytes(),
            Some(Backend::Fused { kernel, .. }) => kernel.scratch_bytes(),
            Some(Backend::Simd { kernel, .. }) => kernel.scratch_bytes(),
        }
    }

    /// Rebuild the sorted moving-wall cache if boundaries changed.
    fn refresh_moving_walls(&mut self) {
        if self.moving_rev == self.geometry_rev && self.geometry_rev != 0 {
            return;
        }
        self.moving_walls.clear();
        for e in &self.bc_nodes {
            if let Boundary::MovingWall(u) = e.boundary {
                if self.flags[e.node] == NodeClass::Wall {
                    self.moving_walls.push((e.node, u));
                }
            }
        }
        self.moving_walls.sort_unstable_by_key(|e| e.0);
        self.moving_rev = self.geometry_rev;
    }

    /// The kernel-facing view of this lattice's storage.
    fn view(&mut self) -> LatticeView<'_> {
        LatticeView {
            nx: self.nx,
            ny: self.ny,
            nz: self.nz,
            periodic: self.periodic,
            tau: self.tau,
            body_force: self.body_force,
            tau_field: self.tau_field.as_deref(),
            flags: &self.flags,
            f: &mut self.f,
            rho: &mut self.rho,
            vel: &mut self.vel,
            force: &self.force,
            moving_walls: &self.moving_walls,
            chunking: self
                .chunking
                .unwrap_or_else(apr_kernels::runtime::default_chunking),
        }
    }

    /// Make `self.backend` match the resolved kernel kind and current
    /// geometry, (re)compiling the fused stencil when stale.
    fn ensure_backend(&mut self) {
        self.refresh_moving_walls();
        let kind = self.kernel();
        let up_to_date = match (&self.backend, kind) {
            (Some(Backend::Reference(_)), KernelKind::Reference) => true,
            (Some(Backend::Fused { rev, periodic, .. }), KernelKind::FusedSwap) => {
                *rev == self.geometry_rev && *periodic == self.periodic
            }
            (Some(Backend::Simd { rev, periodic, .. }), KernelKind::FusedSimd) => {
                *rev == self.geometry_rev && *periodic == self.periodic
            }
            _ => false,
        };
        if up_to_date {
            return;
        }
        let rebuilt = self.backend.is_some();
        self.backend = Some(match kind {
            KernelKind::Reference => Backend::Reference(ReferenceKernel::new()),
            KernelKind::FusedSwap => {
                let rev = self.geometry_rev;
                let periodic = self.periodic;
                let kernel = FusedSwapKernel::build(&self.view());
                Backend::Fused {
                    kernel,
                    rev,
                    periodic,
                }
            }
            KernelKind::FusedSimd => {
                let rev = self.geometry_rev;
                let periodic = self.periodic;
                let kernel = FusedSimdKernel::build(&self.view());
                Backend::Simd {
                    kernel,
                    rev,
                    periodic,
                }
            }
        });
        if apr_telemetry::is_enabled() {
            apr_telemetry::set_attribute("lattice.kernel", kind.as_str());
            if rebuilt {
                apr_telemetry::counter_add("lattice.kernel.rebuilds", 1);
            }
        }
    }

    /// Run `op` against the active backend and a fresh view.
    fn with_backend(&mut self, op: impl FnOnce(&mut dyn KernelBackend, &mut LatticeView)) {
        self.ensure_backend();
        let mut backend = self.backend.take().expect("backend ensured");
        {
            let mut view = self.view();
            match &mut backend {
                Backend::Reference(k) => op(k, &mut view),
                Backend::Fused { kernel, .. } => op(kernel, &mut view),
                Backend::Simd { kernel, .. } => op(kernel, &mut view),
            }
        }
        self.backend = Some(backend);
    }

    /// Advance one time step: collide (fluid), stream (fluid, with halfway
    /// bounce-back off walls), then refresh boundary-condition nodes.
    ///
    /// Under the fused kernel a whole step runs as a single parallel
    /// region; callers that need to interpose between the halves use
    /// [`Self::advance`], which stays available on every backend.
    pub fn step(&mut self) {
        self.ensure_backend();
        let fused = matches!(
            self.backend,
            Some(Backend::Fused { .. } | Backend::Simd { .. })
        );
        if fused && !self.pending_stream {
            let _span = apr_telemetry::span("lattice.step.fused");
            self.with_backend(|k, view| k.step(view));
            self.apply_bc_nodes();
            self.steps_taken += 1;
        } else {
            self.advance(SubStep::Collide);
            self.advance(SubStep::Stream);
        }
    }

    /// Execute one half of a time step (see [`SubStep`]).
    ///
    /// # Panics
    /// Panics when the halves are called out of order — two collides
    /// without a stream, or a stream without a preceding collide — which
    /// would silently corrupt the step count and the physics.
    pub fn advance(&mut self, sub: SubStep) {
        match sub {
            SubStep::Collide => {
                assert!(
                    !self.pending_stream,
                    "advance(Collide) called twice without an intervening Stream"
                );
                let _span = apr_telemetry::span("lattice.collide");
                self.with_backend(|k, view| k.collide(view));
                self.swap_parity = match &self.backend {
                    Some(Backend::Fused { kernel, .. }) => kernel.reversed_between_halves(),
                    Some(Backend::Simd { kernel, .. }) => kernel.reversed_between_halves(),
                    _ => false,
                };
                self.pending_stream = true;
            }
            SubStep::Stream => {
                assert!(
                    self.pending_stream,
                    "advance(Stream) called without a preceding Collide"
                );
                let _span = apr_telemetry::span("lattice.stream");
                self.with_backend(|k, view| k.stream(view));
                self.swap_parity = false;
                self.apply_bc_nodes();
                self.steps_taken += 1;
                self.pending_stream = false;
            }
        }
    }

    /// Rebuild velocity/pressure boundary nodes by non-equilibrium
    /// extrapolation (Guo et al. 2002): `f = f^eq(ρ_b, u_b) + f^neq(nb)`.
    /// Entries are applied in insertion order; each writes only its own
    /// node and reads only interior fluid neighbours, so the order never
    /// affects the numbers.
    fn apply_bc_nodes(&mut self) {
        let mut entries = std::mem::take(&mut self.bc_nodes);
        for entry in &mut entries {
            match entry.boundary {
                Boundary::Velocity(u) if self.flags[entry.node] == NodeClass::Velocity => {
                    if entry.neighbor.is_none() {
                        entry.neighbor = self.resolve_interior_neighbor(entry.node);
                    }
                    let new_f = match entry.neighbor {
                        Some(nb) => {
                            let (rho_nb, u_nb) = self.moments_at(nb);
                            let feq_nb = equilibrium_all(rho_nb, u_nb[0], u_nb[1], u_nb[2]);
                            let feq_b = equilibrium_all(rho_nb, u[0], u[1], u[2]);
                            let mut out = [0.0; Q];
                            for i in 0..Q {
                                out[i] = feq_b[i] + (self.f[nb * Q + i] - feq_nb[i]);
                            }
                            out
                        }
                        None => equilibrium_all(1.0, u[0], u[1], u[2]),
                    };
                    self.set_distributions(entry.node, &new_f);
                    self.rho[entry.node] = new_f.iter().sum();
                    self.vel[entry.node * 3..entry.node * 3 + 3].copy_from_slice(&u);
                }
                Boundary::Pressure(rho_b) if self.flags[entry.node] == NodeClass::Pressure => {
                    if entry.neighbor.is_none() {
                        entry.neighbor = self.resolve_interior_neighbor(entry.node);
                    }
                    let new_f = match entry.neighbor {
                        Some(nb) => {
                            let (rho_nb, u_nb) = self.moments_at(nb);
                            let feq_nb = equilibrium_all(rho_nb, u_nb[0], u_nb[1], u_nb[2]);
                            let feq_b = equilibrium_all(rho_b, u_nb[0], u_nb[1], u_nb[2]);
                            let mut out = [0.0; Q];
                            for i in 0..Q {
                                out[i] = feq_b[i] + (self.f[nb * Q + i] - feq_nb[i]);
                            }
                            self.vel[entry.node * 3..entry.node * 3 + 3].copy_from_slice(&u_nb);
                            out
                        }
                        None => equilibrium_all(rho_b, 0.0, 0.0, 0.0),
                    };
                    self.set_distributions(entry.node, &new_f);
                    self.rho[entry.node] = rho_b;
                }
                // Moving walls act during streaming; entries whose flag was
                // redirected via set_flag are inert.
                _ => {}
            }
        }
        self.bc_nodes = entries;
    }

    /// First interior fluid neighbour of `node` in lattice-direction order.
    fn resolve_interior_neighbor(&self, node: usize) -> Option<usize> {
        (1..Q).find_map(|i| {
            self.link_neighbor(node, i)
                .filter(|&nb| self.flags[nb] == NodeClass::Fluid)
        })
    }
}
