//! The lattice Boltzmann solver: storage, collision, streaming, boundaries.
//!
//! Implements paper §2.1: D3Q19 BGK with an external force field (Guo
//! forcing) and halfway bounce-back walls, plus velocity/pressure boundaries
//! via non-equilibrium extrapolation. Distributions are stored
//! array-of-structures (19 contiguous values per node) so collision touches
//! one cache line pair per node; both passes run on the deterministic
//! `apr-exec` pool, chunked over z-planes (layout independent of the thread
//! count, so results are bit-identical for any `APR_THREADS`).

use crate::d3q19::{
    equilibrium_all, guo_force_term, lattice_viscosity_from_tau, C, OPPOSITE, Q, W,
};
use apr_exec::UnsafeSlice;
use std::collections::HashMap;

/// Classification of a lattice node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum NodeClass {
    /// Interior fluid: collides and streams.
    Fluid = 0,
    /// Solid wall: neighbours bounce back off it (optionally moving).
    Wall = 1,
    /// Prescribed-velocity boundary (non-equilibrium extrapolation).
    Velocity = 2,
    /// Prescribed-density (pressure) boundary.
    Pressure = 3,
    /// Outside the simulated geometry; behaves as a stationary wall but is
    /// excluded from fluid-point counts (memory accounting, §3.6).
    Exterior = 4,
}

/// Typed boundary condition of a lattice node — the single source of truth
/// for boundary state, set via [`Lattice::set_boundary`] and read back via
/// [`Lattice::boundary`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Boundary {
    /// Stationary solid wall (halfway bounce-back).
    Wall,
    /// Solid wall moving with the given lattice velocity (bounce-back plus
    /// the moving-wall momentum term).
    MovingWall([f64; 3]),
    /// Prescribed-velocity node, rebuilt each step by non-equilibrium
    /// extrapolation.
    Velocity([f64; 3]),
    /// Prescribed-density (pressure) node, rebuilt each step by
    /// non-equilibrium extrapolation.
    Pressure(f64),
    /// Outside the simulated geometry; a stationary wall excluded from
    /// fluid-point accounting.
    Exterior,
}

/// One half of a lattice time step; see [`Lattice::advance`].
///
/// A full step is `advance(Collide)` followed by `advance(Stream)`; the
/// split exists so grid couplings (Dupuis–Chopard refinement) can impose
/// post-collision states between the halves. Only the `Stream` half
/// increments [`Lattice::steps_taken`], and `advance` enforces strict
/// collide/stream alternation so a coupling loop cannot double-count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubStep {
    /// BGK collision with Guo forcing on every fluid node.
    Collide,
    /// Pull-streaming with bounce-back, then boundary-node refresh;
    /// completes the step.
    Stream,
}

/// Boundary data attached to one node. Only data-carrying variants
/// (`MovingWall`/`Velocity`/`Pressure`) get an entry; plain walls and
/// exterior nodes live in the flag array alone.
#[derive(Debug, Clone)]
struct BcEntry {
    node: usize,
    boundary: Boundary,
    /// Interior fluid neighbour used for non-equilibrium extrapolation,
    /// resolved lazily on first use.
    neighbor: Option<usize>,
}

/// A D3Q19 lattice Boltzmann fluid domain.
#[derive(Debug, Clone)]
pub struct Lattice {
    /// Grid extent in x.
    pub nx: usize,
    /// Grid extent in y.
    pub ny: usize,
    /// Grid extent in z.
    pub nz: usize,
    /// Per-axis periodicity.
    pub periodic: [bool; 3],
    /// BGK relaxation time (global default; see [`Self::set_tau_at`]).
    pub tau: f64,
    /// Uniform body-force density applied to every fluid node.
    pub body_force: [f64; 3],
    /// Per-node relaxation times; allocated lazily on the first
    /// [`Self::set_tau_at`] call. Models space-dependent viscosity (e.g. a
    /// coarse bulk lattice whose window footprint is plasma, not blood).
    tau_field: Option<Vec<f64>>,
    flags: Vec<NodeClass>,
    /// Distributions, `node*19 + i`.
    f: Vec<f64>,
    f_tmp: Vec<f64>,
    /// Densities per node (updated at collision).
    pub rho: Vec<f64>,
    /// Velocities per node, `node*3 + axis` (updated at collision, includes
    /// the half-force correction).
    pub vel: Vec<f64>,
    /// External force field per node, `node*3 + axis` (IBM spreading target).
    pub force: Vec<f64>,
    /// Data-carrying boundary entries in insertion order (applied in this
    /// deterministic order every step) with an index for O(1) node lookup.
    /// Never iterate `bc_index` — `HashMap` order is nondeterministic.
    bc_nodes: Vec<BcEntry>,
    bc_index: HashMap<usize, usize>,
    /// True between `advance(Collide)` and `advance(Stream)`.
    pending_stream: bool,
    steps_taken: u64,
}

impl Lattice {
    /// New all-fluid lattice at rest (ρ = 1, u = 0) with relaxation time
    /// `tau` and no periodic axes.
    ///
    /// # Panics
    /// Panics for empty dimensions or `tau ≤ 0.5`.
    pub fn new(nx: usize, ny: usize, nz: usize, tau: f64) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "empty lattice {nx}x{ny}x{nz}");
        assert!(tau > 0.5, "tau must exceed 1/2, got {tau}");
        let n = nx * ny * nz;
        let mut f = vec![0.0; n * Q];
        let feq = equilibrium_all(1.0, 0.0, 0.0, 0.0);
        for node in 0..n {
            f[node * Q..node * Q + Q].copy_from_slice(&feq);
        }
        Self {
            nx,
            ny,
            nz,
            periodic: [false; 3],
            tau,
            body_force: [0.0; 3],
            tau_field: None,
            flags: vec![NodeClass::Fluid; n],
            f_tmp: f.clone(),
            f,
            rho: vec![1.0; n],
            vel: vec![0.0; n * 3],
            force: vec![0.0; n * 3],
            bc_nodes: Vec::new(),
            bc_index: HashMap::new(),
            pending_stream: false,
            steps_taken: 0,
        }
    }

    /// Total node count.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Flat index of `(x, y, z)`.
    #[inline]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        x + self.nx * (y + self.ny * z)
    }

    /// Coordinates of flat index `node`.
    #[inline]
    pub fn coords(&self, node: usize) -> (usize, usize, usize) {
        let x = node % self.nx;
        let y = (node / self.nx) % self.ny;
        let z = node / (self.nx * self.ny);
        (x, y, z)
    }

    /// Node classification at `node`.
    #[inline]
    pub fn flag(&self, node: usize) -> NodeClass {
        self.flags[node]
    }

    /// Set a node classification without touching boundary data. Prefer
    /// [`Self::set_boundary`] / [`Self::clear_boundary`], which keep the
    /// flag and any attached boundary value consistent.
    pub fn set_flag(&mut self, node: usize, class: NodeClass) {
        self.flags[node] = class;
    }

    /// Impose a typed boundary condition on `node`, replacing whatever
    /// boundary (if any) the node had before.
    pub fn set_boundary(&mut self, node: usize, boundary: Boundary) {
        self.flags[node] = match boundary {
            Boundary::Wall | Boundary::MovingWall(_) => NodeClass::Wall,
            Boundary::Velocity(_) => NodeClass::Velocity,
            Boundary::Pressure(_) => NodeClass::Pressure,
            Boundary::Exterior => NodeClass::Exterior,
        };
        match boundary {
            Boundary::Wall | Boundary::Exterior => self.remove_bc_entry(node),
            b => match self.bc_index.get(&node) {
                Some(&i) => {
                    let entry = &mut self.bc_nodes[i];
                    // Changing the boundary *kind* may change which
                    // neighbour qualifies; same-kind updates (e.g. a ramped
                    // inlet velocity) keep the cached one.
                    if std::mem::discriminant(&entry.boundary) != std::mem::discriminant(&b) {
                        entry.neighbor = None;
                    }
                    entry.boundary = b;
                }
                None => {
                    self.bc_index.insert(node, self.bc_nodes.len());
                    self.bc_nodes.push(BcEntry {
                        node,
                        boundary: b,
                        neighbor: None,
                    });
                }
            },
        }
    }

    /// Revert `node` to interior fluid, removing any boundary data.
    pub fn clear_boundary(&mut self, node: usize) {
        self.flags[node] = NodeClass::Fluid;
        self.remove_bc_entry(node);
    }

    /// The boundary condition at `node` (`None` for interior fluid).
    pub fn boundary(&self, node: usize) -> Option<Boundary> {
        match self.flags[node] {
            NodeClass::Fluid => None,
            NodeClass::Exterior => Some(Boundary::Exterior),
            NodeClass::Wall => Some(match self.bc_entry(node) {
                Some(e) => e.boundary,
                None => Boundary::Wall,
            }),
            NodeClass::Velocity | NodeClass::Pressure => self.bc_entry(node).map(|e| e.boundary),
        }
    }

    fn bc_entry(&self, node: usize) -> Option<&BcEntry> {
        self.bc_index.get(&node).map(|&i| &self.bc_nodes[i])
    }

    fn remove_bc_entry(&mut self, node: usize) {
        if let Some(i) = self.bc_index.remove(&node) {
            self.bc_nodes.swap_remove(i);
            if i < self.bc_nodes.len() {
                self.bc_index.insert(self.bc_nodes[i].node, i);
            }
        }
    }

    /// Mark `node` as a stationary wall.
    #[deprecated(since = "0.1.0", note = "use set_boundary(node, Boundary::Wall)")]
    pub fn set_wall(&mut self, node: usize) {
        self.set_boundary(node, Boundary::Wall);
    }

    /// Mark `node` as a wall moving with velocity `u` (lattice units).
    #[deprecated(
        since = "0.1.0",
        note = "use set_boundary(node, Boundary::MovingWall(u))"
    )]
    pub fn set_moving_wall(&mut self, node: usize, u: [f64; 3]) {
        self.set_boundary(node, Boundary::MovingWall(u));
    }

    /// Mark `node` as a prescribed-velocity boundary.
    #[deprecated(
        since = "0.1.0",
        note = "use set_boundary(node, Boundary::Velocity(u))"
    )]
    pub fn set_velocity_bc(&mut self, node: usize, u: [f64; 3]) {
        self.set_boundary(node, Boundary::Velocity(u));
    }

    /// Mark `node` as a prescribed-density (pressure) boundary.
    #[deprecated(
        since = "0.1.0",
        note = "use set_boundary(node, Boundary::Pressure(rho))"
    )]
    pub fn set_pressure_bc(&mut self, node: usize, rho: f64) {
        self.set_boundary(node, Boundary::Pressure(rho));
    }

    /// Update the target velocity of an existing velocity-boundary node
    /// (keeps the cached extrapolation neighbour; no-op for other nodes).
    pub fn update_velocity_bc(&mut self, node: usize, u: [f64; 3]) {
        if self.flags[node] == NodeClass::Velocity && self.bc_index.contains_key(&node) {
            self.set_boundary(node, Boundary::Velocity(u));
        }
    }

    /// Number of fluid nodes.
    pub fn fluid_node_count(&self) -> usize {
        self.flags
            .iter()
            .filter(|&&c| c == NodeClass::Fluid)
            .count()
    }

    /// Set every node's distributions to equilibrium at `(rho, u)`.
    pub fn initialize_equilibrium(&mut self, rho: f64, u: [f64; 3]) {
        let feq = equilibrium_all(rho, u[0], u[1], u[2]);
        for node in 0..self.node_count() {
            self.f[node * Q..node * Q + Q].copy_from_slice(&feq);
            self.rho[node] = rho;
            self.vel[node * 3..node * 3 + 3].copy_from_slice(&u);
        }
    }

    /// Set one node's distributions to equilibrium at `(rho, u)`.
    pub fn initialize_node_equilibrium(&mut self, node: usize, rho: f64, u: [f64; 3]) {
        let feq = equilibrium_all(rho, u[0], u[1], u[2]);
        self.f[node * Q..node * Q + Q].copy_from_slice(&feq);
        self.rho[node] = rho;
        self.vel[node * 3..node * 3 + 3].copy_from_slice(&u);
    }

    /// Raw distribution `f_i` at `node`.
    #[inline]
    pub fn distribution(&self, node: usize, i: usize) -> f64 {
        self.f[node * Q + i]
    }

    /// All 19 distributions at `node`.
    #[inline]
    pub fn distributions(&self, node: usize) -> &[f64] {
        &self.f[node * Q..node * Q + Q]
    }

    /// Overwrite all 19 distributions at `node`.
    pub fn set_distributions(&mut self, node: usize, values: &[f64; Q]) {
        self.f[node * Q..node * Q + Q].copy_from_slice(values);
    }

    /// Density and velocity computed directly from the current
    /// distributions at `node` (no force correction).
    pub fn moments_at(&self, node: usize) -> (f64, [f64; 3]) {
        let fs = &self.f[node * Q..node * Q + Q];
        let mut rho = 0.0;
        let mut m = [0.0; 3];
        for i in 0..Q {
            rho += fs[i];
            m[0] += fs[i] * C[i][0] as f64;
            m[1] += fs[i] * C[i][1] as f64;
            m[2] += fs[i] * C[i][2] as f64;
        }
        (rho, [m[0] / rho, m[1] / rho, m[2] / rho])
    }

    /// Stored (collision-time) velocity at `node`.
    #[inline]
    pub fn velocity_at(&self, node: usize) -> [f64; 3] {
        [
            self.vel[node * 3],
            self.vel[node * 3 + 1],
            self.vel[node * 3 + 2],
        ]
    }

    /// Zero the external force field (call after each IBM cycle).
    pub fn clear_forces(&mut self) {
        self.force.fill(0.0);
    }

    /// Add `g` to the external force at `node`.
    #[inline]
    pub fn add_force(&mut self, node: usize, g: [f64; 3]) {
        self.force[node * 3] += g[0];
        self.force[node * 3 + 1] += g[1];
        self.force[node * 3 + 2] += g[2];
    }

    /// Total mass over all fluid nodes.
    pub fn total_mass(&self) -> f64 {
        (0..self.node_count())
            .filter(|&n| self.flags[n] == NodeClass::Fluid)
            .map(|n| self.f[n * Q..n * Q + Q].iter().sum::<f64>())
            .sum()
    }

    /// Steps taken since construction.
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Overwrite the step counter (checkpoint restore only).
    pub fn set_steps_taken(&mut self, steps: u64) {
        self.steps_taken = steps;
    }

    /// The per-node relaxation-time field, if one has been installed.
    pub fn tau_field(&self) -> Option<&[f64]> {
        self.tau_field.as_deref()
    }

    /// Install or clear the per-node τ field wholesale (checkpoint
    /// restore). A provided field must cover every node.
    pub fn set_tau_field(&mut self, field: Option<Vec<f64>>) {
        if let Some(f) = &field {
            assert_eq!(
                f.len(),
                self.node_count(),
                "tau field must cover every node"
            );
        }
        self.tau_field = field;
    }

    /// Lattice kinematic viscosity implied by `tau`.
    pub fn lattice_viscosity(&self) -> f64 {
        lattice_viscosity_from_tau(self.tau)
    }

    /// Relaxation time at `node` (per-node value if set, else the global).
    #[inline]
    pub fn tau_at(&self, node: usize) -> f64 {
        match &self.tau_field {
            Some(f) => f[node],
            None => self.tau,
        }
    }

    /// Set the relaxation time of a single node (allocates the per-node
    /// field on first use).
    pub fn set_tau_at(&mut self, node: usize, tau: f64) {
        assert!(tau > 0.5, "tau must exceed 1/2, got {tau}");
        let field = self
            .tau_field
            .get_or_insert_with(|| vec![self.tau; self.nx * self.ny * self.nz]);
        field[node] = tau;
    }

    /// Neighbour flat index of `node` displaced by `c_i`, respecting
    /// periodicity; `None` if it leaves a non-periodic domain.
    #[inline]
    pub fn neighbor(&self, x: usize, y: usize, z: usize, i: usize) -> Option<usize> {
        let dims = [self.nx as i64, self.ny as i64, self.nz as i64];
        let mut p = [
            x as i64 + C[i][0] as i64,
            y as i64 + C[i][1] as i64,
            z as i64 + C[i][2] as i64,
        ];
        for a in 0..3 {
            if p[a] < 0 || p[a] >= dims[a] {
                if self.periodic[a] {
                    p[a] = (p[a] + dims[a]) % dims[a];
                } else {
                    return None;
                }
            }
        }
        Some((p[0] + dims[0] * (p[1] + dims[1] * p[2])) as usize)
    }

    /// Advance one time step: collide (fluid), stream (fluid, with halfway
    /// bounce-back off walls), then refresh boundary-condition nodes.
    pub fn step(&mut self) {
        self.advance(SubStep::Collide);
        self.advance(SubStep::Stream);
    }

    /// Execute one half of a time step (see [`SubStep`]).
    ///
    /// # Panics
    /// Panics when the halves are called out of order — two collides
    /// without a stream, or a stream without a preceding collide — which
    /// would silently corrupt the step count and the physics.
    pub fn advance(&mut self, sub: SubStep) {
        match sub {
            SubStep::Collide => {
                assert!(
                    !self.pending_stream,
                    "advance(Collide) called twice without an intervening Stream"
                );
                let _span = apr_telemetry::span("lattice.collide");
                self.collide();
                self.pending_stream = true;
            }
            SubStep::Stream => {
                assert!(
                    self.pending_stream,
                    "advance(Stream) called without a preceding Collide"
                );
                let _span = apr_telemetry::span("lattice.stream");
                self.stream();
                self.apply_bc_nodes();
                self.steps_taken += 1;
                self.pending_stream = false;
            }
        }
    }

    /// Collision phase only.
    #[deprecated(since = "0.1.0", note = "use advance(SubStep::Collide)")]
    pub fn collide_phase(&mut self) {
        self.advance(SubStep::Collide);
    }

    /// Streaming + boundary-node phase only.
    #[deprecated(since = "0.1.0", note = "use advance(SubStep::Stream)")]
    pub fn stream_phase(&mut self) {
        self.advance(SubStep::Stream);
    }

    /// BGK collision with Guo forcing on every fluid node; updates stored
    /// `rho` and `vel` (velocity includes the half-force correction).
    /// Runs on the global exec pool, one z-plane of nodes per chunk; every
    /// write is node-local, so the result is independent of the thread
    /// count.
    fn collide(&mut self) {
        let global_tau = self.tau;
        let bf = self.body_force;
        let flags = &self.flags;
        let tau_field = self.tau_field.as_deref();
        let force = &self.force;
        let n = self.nx * self.ny * self.nz;
        let plane = self.nx * self.ny;
        let f = UnsafeSlice::new(&mut self.f);
        let rho = UnsafeSlice::new(&mut self.rho);
        let vel = UnsafeSlice::new(&mut self.vel);
        let pool = apr_exec::current();
        pool.par_for_ranges(n, plane, |_, range| {
            for node in range {
                if flags[node] != NodeClass::Fluid {
                    continue;
                }
                // SAFETY: chunk ranges are disjoint, so each node (and its
                // f/rho/vel storage) is touched by exactly one lane.
                let fs = unsafe { f.slice_mut(node * Q, Q) };
                let rho = unsafe { &mut rho.slice_mut(node, 1)[0] };
                let vel = unsafe { vel.slice_mut(node * 3, 3) };
                let g = &force[node * 3..node * 3 + 3];
                let tau = match tau_field {
                    Some(f) => f[node],
                    None => global_tau,
                };
                let omega = 1.0 / tau;
                let force_scale = 1.0 - 0.5 * omega;
                let mut r = 0.0;
                let mut m = [0.0f64; 3];
                for i in 0..Q {
                    r += fs[i];
                    m[0] += fs[i] * C[i][0] as f64;
                    m[1] += fs[i] * C[i][1] as f64;
                    m[2] += fs[i] * C[i][2] as f64;
                }
                let gx = g[0] + bf[0];
                let gy = g[1] + bf[1];
                let gz = g[2] + bf[2];
                let ux = (m[0] + 0.5 * gx) / r;
                let uy = (m[1] + 0.5 * gy) / r;
                let uz = (m[2] + 0.5 * gz) / r;
                *rho = r;
                vel[0] = ux;
                vel[1] = uy;
                vel[2] = uz;
                let feq = equilibrium_all(r, ux, uy, uz);
                for i in 0..Q {
                    let forcing = guo_force_term(i, ux, uy, uz, gx, gy, gz);
                    fs[i] += omega * (feq[i] - fs[i]) + force_scale * forcing;
                }
            }
        });
        if apr_telemetry::is_enabled() {
            apr_telemetry::gauge_set(
                "exec.lattice.collide.utilization",
                pool.last_run_stats().utilization(),
            );
        }
    }

    /// Pull-streaming with halfway bounce-back (optionally moving walls).
    /// Parallel over z-slabs of `f_tmp`; each slab is written by one lane
    /// while `f` is read-only, so the result is thread-count independent.
    fn stream(&mut self) {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let plane = nx * ny;
        let f = &self.f;
        let flags = &self.flags;
        let bc_nodes = &self.bc_nodes;
        let bc_index = &self.bc_index;
        let moving_wall = |src: usize| -> Option<[f64; 3]> {
            match bc_index.get(&src).map(|&i| bc_nodes[i].boundary) {
                Some(Boundary::MovingWall(u)) => Some(u),
                _ => None,
            }
        };
        let rho = &self.rho;
        let periodic = self.periodic;
        let neighbor = move |x: usize, y: usize, z: usize, i: usize| -> Option<usize> {
            let dims = [nx as i64, ny as i64, nz as i64];
            let mut p = [
                x as i64 + C[i][0] as i64,
                y as i64 + C[i][1] as i64,
                z as i64 + C[i][2] as i64,
            ];
            for a in 0..3 {
                if p[a] < 0 || p[a] >= dims[a] {
                    if periodic[a] {
                        p[a] = (p[a] + dims[a]) % dims[a];
                    } else {
                        return None;
                    }
                }
            }
            Some((p[0] + dims[0] * (p[1] + dims[1] * p[2])) as usize)
        };
        let f_tmp = UnsafeSlice::new(&mut self.f_tmp);
        let pool = apr_exec::current();
        pool.par_for_ranges(nz, 1, |z, _| {
            // SAFETY: one z-slab per chunk; slabs are disjoint.
            let slab = unsafe { f_tmp.slice_mut(z * plane * Q, plane * Q) };
            for y in 0..ny {
                for x in 0..nx {
                    let node = x + nx * (y + ny * z);
                    let local = (x + nx * y) * Q;
                    match flags[node] {
                        NodeClass::Fluid => {
                            for i in 0..Q {
                                // Pull from the node the population left.
                                let o = OPPOSITE[i];
                                let pulled = match neighbor(x, y, z, o) {
                                    Some(src)
                                        if matches!(
                                            flags[src],
                                            NodeClass::Fluid
                                                | NodeClass::Velocity
                                                | NodeClass::Pressure
                                        ) =>
                                    {
                                        f[src * Q + i]
                                    }
                                    Some(src) => {
                                        // Wall / exterior: halfway bounce-back,
                                        // with moving-wall momentum term.
                                        let mut v = f[node * Q + o];
                                        if let Some(uw) = moving_wall(src) {
                                            let cu = C[i][0] as f64 * uw[0]
                                                + C[i][1] as f64 * uw[1]
                                                + C[i][2] as f64 * uw[2];
                                            v += 6.0 * W[i] * rho[node] * cu;
                                        }
                                        v
                                    }
                                    None => f[node * Q + o],
                                };
                                slab[local + i] = pulled;
                            }
                        }
                        _ => {
                            // Non-fluid nodes carry their distributions
                            // forward; BC nodes are rebuilt right after.
                            slab[local..local + Q].copy_from_slice(&f[node * Q..node * Q + Q]);
                        }
                    }
                }
            }
        });
        if apr_telemetry::is_enabled() {
            apr_telemetry::gauge_set(
                "exec.lattice.stream.utilization",
                pool.last_run_stats().utilization(),
            );
        }
        std::mem::swap(&mut self.f, &mut self.f_tmp);
    }

    /// Rebuild velocity/pressure boundary nodes by non-equilibrium
    /// extrapolation (Guo et al. 2002): `f = f^eq(ρ_b, u_b) + f^neq(nb)`.
    /// Entries are applied in insertion order; each writes only its own
    /// node and reads only interior fluid neighbours, so the order never
    /// affects the numbers.
    fn apply_bc_nodes(&mut self) {
        let mut entries = std::mem::take(&mut self.bc_nodes);
        for entry in &mut entries {
            match entry.boundary {
                Boundary::Velocity(u) if self.flags[entry.node] == NodeClass::Velocity => {
                    if entry.neighbor.is_none() {
                        entry.neighbor = self.resolve_interior_neighbor(entry.node);
                    }
                    let new_f = match entry.neighbor {
                        Some(nb) => {
                            let (rho_nb, u_nb) = self.moments_at(nb);
                            let feq_nb = equilibrium_all(rho_nb, u_nb[0], u_nb[1], u_nb[2]);
                            let feq_b = equilibrium_all(rho_nb, u[0], u[1], u[2]);
                            let mut out = [0.0; Q];
                            for i in 0..Q {
                                out[i] = feq_b[i] + (self.f[nb * Q + i] - feq_nb[i]);
                            }
                            out
                        }
                        None => equilibrium_all(1.0, u[0], u[1], u[2]),
                    };
                    self.set_distributions(entry.node, &new_f);
                    self.rho[entry.node] = new_f.iter().sum();
                    self.vel[entry.node * 3..entry.node * 3 + 3].copy_from_slice(&u);
                }
                Boundary::Pressure(rho_b) if self.flags[entry.node] == NodeClass::Pressure => {
                    if entry.neighbor.is_none() {
                        entry.neighbor = self.resolve_interior_neighbor(entry.node);
                    }
                    let new_f = match entry.neighbor {
                        Some(nb) => {
                            let (rho_nb, u_nb) = self.moments_at(nb);
                            let feq_nb = equilibrium_all(rho_nb, u_nb[0], u_nb[1], u_nb[2]);
                            let feq_b = equilibrium_all(rho_b, u_nb[0], u_nb[1], u_nb[2]);
                            let mut out = [0.0; Q];
                            for i in 0..Q {
                                out[i] = feq_b[i] + (self.f[nb * Q + i] - feq_nb[i]);
                            }
                            self.vel[entry.node * 3..entry.node * 3 + 3].copy_from_slice(&u_nb);
                            out
                        }
                        None => equilibrium_all(rho_b, 0.0, 0.0, 0.0),
                    };
                    self.set_distributions(entry.node, &new_f);
                    self.rho[entry.node] = rho_b;
                }
                // Moving walls act during streaming; entries whose flag was
                // redirected via set_flag are inert.
                _ => {}
            }
        }
        self.bc_nodes = entries;
    }

    /// First interior fluid neighbour of `node` in lattice-direction order.
    fn resolve_interior_neighbor(&self, node: usize) -> Option<usize> {
        let (x, y, z) = self.coords(node);
        (1..Q).find_map(|i| {
            self.neighbor(x, y, z, i)
                .filter(|&nb| self.flags[nb] == NodeClass::Fluid)
        })
    }
}
