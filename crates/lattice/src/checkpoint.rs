//! Lattice state checkpointing.
//!
//! Long CTC-transport runs (the paper's Figure 9 campaign ran for days)
//! need restartable state. The format is a plain little-endian binary dump
//! of dimensions, flags-independent state (distributions, force field, body
//! force, τ) with a magic header and version byte — no external
//! serialization dependencies.

use crate::solver::Lattice;
use std::io::{Read, Write};

const MAGIC: &[u8; 8] = b"APRLBM01";

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed or incompatible checkpoint data.
    Format(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Format(m) => write!(f, "checkpoint format error: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn write_f64s<W: Write>(w: &mut W, data: &[f64]) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(data.len() * 8);
    for v in data {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    w.write_all(&buf)
}

fn read_f64s<R: Read>(r: &mut R, n: usize) -> Result<Vec<f64>, CheckpointError> {
    let mut buf = vec![0u8; n * 8];
    r.read_exact(&mut buf)?;
    Ok(buf
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Write the fluid state of `lat` (distributions + macroscopic fields +
/// force field) to `w`. Geometry/flags are **not** stored: a restart
/// rebuilds the same domain from its generator, then loads the state —
/// mirroring how the paper's runs restore from geometry + field dumps.
pub fn save_state<W: Write>(lat: &Lattice, mut w: W) -> Result<(), CheckpointError> {
    if lat.mid_step() {
        return Err(CheckpointError::Format(
            "cannot checkpoint between collide and stream; finish the step first \
             (the guardian's engine-level format handles mid-step state)"
                .into(),
        ));
    }
    w.write_all(MAGIC)?;
    for d in [
        lat.nx as u64,
        lat.ny as u64,
        lat.nz as u64,
        lat.steps_taken(),
    ] {
        w.write_all(&d.to_le_bytes())?;
    }
    write_f64s(
        &mut w,
        &[
            lat.tau,
            lat.body_force[0],
            lat.body_force[1],
            lat.body_force[2],
        ],
    )?;
    let n = lat.node_count();
    let mut f = Vec::with_capacity(n * crate::Q);
    for node in 0..n {
        f.extend_from_slice(lat.distributions(node));
    }
    write_f64s(&mut w, &f)?;
    write_f64s(&mut w, &lat.rho)?;
    write_f64s(&mut w, &lat.vel)?;
    write_f64s(&mut w, &lat.force)?;
    Ok(())
}

/// Restore fluid state saved by [`save_state`] into `lat`, which must have
/// identical dimensions (its flags/geometry are kept as-is).
pub fn load_state<R: Read>(lat: &mut Lattice, mut r: R) -> Result<(), CheckpointError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::Format("bad magic header".into()));
    }
    let mut u64s = [0u64; 4];
    for v in &mut u64s {
        let mut b = [0u8; 8];
        r.read_exact(&mut b)?;
        *v = u64::from_le_bytes(b);
    }
    let [nx, ny, nz, _steps] = u64s;
    if nx as usize != lat.nx || ny as usize != lat.ny || nz as usize != lat.nz {
        return Err(CheckpointError::Format(format!(
            "dimension mismatch: checkpoint {nx}×{ny}×{nz} vs lattice {}×{}×{}",
            lat.nx, lat.ny, lat.nz
        )));
    }
    let header = read_f64s(&mut r, 4)?;
    lat.tau = header[0];
    lat.body_force = [header[1], header[2], header[3]];
    let n = lat.node_count();
    let f = read_f64s(&mut r, n * crate::Q)?;
    for node in 0..n {
        let mut arr = [0.0; crate::Q];
        arr.copy_from_slice(&f[node * crate::Q..(node + 1) * crate::Q]);
        lat.set_distributions(node, &arr);
    }
    lat.rho = read_f64s(&mut r, n)?;
    lat.vel = read_f64s(&mut r, n * 3)?;
    lat.force = read_f64s(&mut r, n * 3)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::couette_channel;

    #[test]
    fn round_trip_resumes_identically() {
        // Run A: 200 steps, checkpoint at 100.
        let mut a = couette_channel(6, 12, 6, 0.9, 0.03);
        for _ in 0..100 {
            a.step();
        }
        let mut blob = Vec::new();
        save_state(&a, &mut blob).unwrap();
        for _ in 0..100 {
            a.step();
        }

        // Run B: fresh lattice, same geometry, restored at step 100.
        let mut b = couette_channel(6, 12, 6, 0.9, 0.03);
        load_state(&mut b, &blob[..]).unwrap();
        for _ in 0..100 {
            b.step();
        }

        for node in 0..a.node_count() {
            let fa = a.distributions(node);
            let fb = b.distributions(node);
            for i in 0..crate::Q {
                assert!(
                    (fa[i] - fb[i]).abs() < 1e-14,
                    "node {node} dir {i}: {} vs {}",
                    fa[i],
                    fb[i]
                );
            }
        }
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let a = couette_channel(6, 12, 6, 0.9, 0.03);
        let mut blob = Vec::new();
        save_state(&a, &mut blob).unwrap();
        let mut b = couette_channel(8, 12, 6, 0.9, 0.03);
        let err = load_state(&mut b, &blob[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::Format(_)));
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let mut b = couette_channel(6, 12, 6, 0.9, 0.03);
        let err = load_state(&mut b, &b"NOTMAGIC"[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::Format(_)));
    }
}
