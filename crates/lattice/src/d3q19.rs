//! The D3Q19 velocity discretization (paper §2.1).
//!
//! The constants and closed forms now live in `apr_kernels::d3q19` next to
//! the inner loops that consume them; this module re-exports the whole
//! surface so existing `apr_lattice::d3q19::*` imports keep working.

pub use apr_kernels::d3q19::*;
