//! Convenience constructors for common flow domains.
//!
//! These encode the boundary layouts used by the paper's verification
//! problems: plane Couette stacks (Figure 4), force-driven tubes (Figure 5)
//! and channels (Figure 6).

use crate::solver::{Boundary, Lattice, NodeClass};

/// Plane Couette channel: walls at the y extremes (bottom stationary, top
/// moving at `u_lid` in +x), periodic in x and z.
///
/// Fluid nodes occupy `y ∈ [1, ny−2]`; with halfway bounce-back the physical
/// walls sit at `y = 0.5` and `y = ny − 1.5`, so the channel height is
/// `ny − 2` lattice spacings.
pub fn couette_channel(nx: usize, ny: usize, nz: usize, tau: f64, u_lid: f64) -> Lattice {
    assert!(ny >= 4, "need at least two fluid rows, got ny = {ny}");
    let mut lat = Lattice::new(nx, ny, nz, tau);
    lat.periodic = [true, false, true];
    for z in 0..nz {
        for x in 0..nx {
            let bottom = lat.idx(x, 0, z);
            lat.set_boundary(bottom, Boundary::Wall);
            let top = lat.idx(x, ny - 1, z);
            lat.set_boundary(top, Boundary::MovingWall([u_lid, 0.0, 0.0]));
        }
    }
    lat
}

/// Physical channel height of a [`couette_channel`] in lattice units.
pub fn couette_height(ny: usize) -> f64 {
    (ny - 2) as f64
}

/// Wall-normal position of fluid row `y` measured from the bottom wall
/// plane, in lattice units (halfway bounce-back places walls between nodes).
pub fn couette_y_position(y: usize) -> f64 {
    y as f64 - 0.5
}

/// Plane Poiseuille channel: stationary walls at the y extremes, periodic in
/// x and z, driven by body force `g` along +x.
pub fn poiseuille_slit(nx: usize, ny: usize, nz: usize, tau: f64, g: f64) -> Lattice {
    assert!(ny >= 4, "need at least two fluid rows, got ny = {ny}");
    let mut lat = Lattice::new(nx, ny, nz, tau);
    lat.periodic = [true, false, true];
    lat.body_force = [g, 0.0, 0.0];
    for z in 0..nz {
        for x in 0..nx {
            let bottom = lat.idx(x, 0, z);
            lat.set_boundary(bottom, Boundary::Wall);
            let top = lat.idx(x, ny - 1, z);
            lat.set_boundary(top, Boundary::Wall);
        }
    }
    lat
}

/// Circular tube along z of radius `radius` (lattice units, measured from
/// the domain center in x/y), periodic in z, driven by body force `g`
/// along +z. Nodes at or beyond the radius become walls.
pub fn force_driven_tube(
    nx: usize,
    ny: usize,
    nz: usize,
    tau: f64,
    radius: f64,
    g: f64,
) -> Lattice {
    let mut lat = Lattice::new(nx, ny, nz, tau);
    lat.periodic = [false, false, true];
    lat.body_force = [0.0, 0.0, g];
    let cx = (nx as f64 - 1.0) / 2.0;
    let cy = (ny as f64 - 1.0) / 2.0;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let r = ((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2)).sqrt();
                if r >= radius {
                    let node = lat.idx(x, y, z);
                    lat.set_boundary(node, Boundary::Wall);
                }
            }
        }
    }
    lat
}

/// Count fluid nodes in a cross-section (z = 0 plane); used to convert the
/// discrete tube into an effective radius for analytic comparison.
pub fn cross_section_fluid_count(lat: &Lattice) -> usize {
    let mut count = 0;
    for y in 0..lat.ny {
        for x in 0..lat.nx {
            if lat.flag(lat.idx(x, y, 0)) == NodeClass::Fluid {
                count += 1;
            }
        }
    }
    count
}

/// Effective tube radius from the voxelized cross-section area.
pub fn effective_tube_radius(lat: &Lattice) -> f64 {
    (cross_section_fluid_count(lat) as f64 / std::f64::consts::PI).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn couette_flags_walls_correctly() {
        let lat = couette_channel(4, 8, 4, 1.0, 0.05);
        assert_eq!(lat.flag(lat.idx(2, 0, 2)), NodeClass::Wall);
        assert_eq!(lat.flag(lat.idx(2, 7, 2)), NodeClass::Wall);
        assert_eq!(lat.flag(lat.idx(2, 3, 2)), NodeClass::Fluid);
        assert_eq!(lat.fluid_node_count(), 4 * 6 * 4);
    }

    #[test]
    fn tube_cross_section_is_round() {
        let lat = force_driven_tube(21, 21, 4, 1.0, 8.0, 1e-6);
        let r_eff = effective_tube_radius(&lat);
        assert!((r_eff - 8.0).abs() < 0.5, "r_eff = {r_eff}");
        // Center is fluid; corner is wall.
        assert_eq!(lat.flag(lat.idx(10, 10, 0)), NodeClass::Fluid);
        assert_eq!(lat.flag(lat.idx(0, 0, 0)), NodeClass::Wall);
    }
}
