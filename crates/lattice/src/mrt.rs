//! Multiple-relaxation-time (MRT) collision for D3Q19.
//!
//! BGK relaxes every kinetic mode at one rate `1/τ`; MRT (d'Humières et
//! al. 2002) relaxes each *moment* at its own rate, decoupling shear
//! viscosity (which physics fixes) from the ghost/bulk modes (which can be
//! damped harder for stability). Relevant here because Eq. 7 pushes the
//! window's τ_f toward 3 at n = 10, λ = 1/2 — the regime where BGK's free
//! modes get sloppy.
//!
//! The moment basis is built **programmatically** from the standard
//! polynomial definitions and orthogonalized numerically against uniform
//! weighting (verified by a test), and the equilibrium moments are computed
//! as `m^eq = M·f^eq(ρ, u)` from the same second-order equilibrium BGK
//! uses — so setting every rate to `1/τ` reproduces BGK *exactly*.

use crate::d3q19::{equilibrium_all, C, Q};

/// Per-moment relaxation rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MrtRates {
    /// Rate for the shear-stress moments (sets kinematic viscosity exactly
    /// like BGK's `1/τ`).
    pub shear: f64,
    /// Rate for the energy moment (sets bulk viscosity).
    pub bulk: f64,
    /// Rate for the higher-order "ghost" moments (free; 1.0–1.6 damps
    /// non-hydrodynamic noise).
    pub ghost: f64,
}

impl MrtRates {
    /// BGK-equivalent rates: everything at `1/τ`.
    pub fn bgk(tau: f64) -> Self {
        let s = 1.0 / tau;
        Self {
            shear: s,
            bulk: s,
            ghost: s,
        }
    }

    /// Stability-tuned rates: shear from `τ` (physics), bulk and ghost
    /// modes damped at fixed robust values.
    pub fn tuned(tau: f64) -> Self {
        Self {
            shear: 1.0 / tau,
            bulk: 1.1,
            ghost: 1.1,
        }
    }
}

/// Moment classification: which rate applies to each of the 19 moments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MomentKind {
    Conserved,
    Shear,
    Bulk,
    Ghost,
}

/// The D3Q19 MRT transform: orthogonal moment matrix, its inverse, and
/// per-moment classification.
#[derive(Debug, Clone)]
pub struct MrtBasis {
    /// Moment matrix rows, `m = M f`.
    m: Vec<[f64; Q]>,
    /// Inverse rows, `f = M⁻¹ m` (M orthogonal ⇒ M⁻¹ = Mᵀ·diag(1/‖row‖²)).
    minv: Vec<[f64; Q]>,
    kinds: [MomentKind; Q],
}

impl Default for MrtBasis {
    fn default() -> Self {
        Self::new()
    }
}

impl MrtBasis {
    /// Build the orthogonal D3Q19 moment basis.
    pub fn new() -> Self {
        // Raw polynomial moments of the velocity set (Gram–Schmidt makes
        // them exactly orthogonal under uniform weighting).
        let c2 = |i: usize| -> f64 {
            (C[i][0] * C[i][0] + C[i][1] * C[i][1] + C[i][2] * C[i][2]) as f64
        };
        let cx = |i: usize| C[i][0] as f64;
        let cy = |i: usize| C[i][1] as f64;
        let cz = |i: usize| C[i][2] as f64;
        type MomentPoly = Box<dyn Fn(usize) -> f64>;
        let polys: Vec<(MomentPoly, MomentKind)> = vec![
            (Box::new(|_| 1.0), MomentKind::Conserved),            // ρ
            (Box::new(c2), MomentKind::Bulk),                      // e
            (Box::new(move |i| c2(i) * c2(i)), MomentKind::Ghost), // ε
            (Box::new(cx), MomentKind::Conserved),                 // j_x
            (Box::new(move |i| c2(i) * cx(i)), MomentKind::Ghost), // q_x
            (Box::new(cy), MomentKind::Conserved),                 // j_y
            (Box::new(move |i| c2(i) * cy(i)), MomentKind::Ghost), // q_y
            (Box::new(cz), MomentKind::Conserved),                 // j_z
            (Box::new(move |i| c2(i) * cz(i)), MomentKind::Ghost), // q_z
            (
                Box::new(move |i| 3.0 * cx(i) * cx(i) - c2(i)),
                MomentKind::Shear,
            ), // p_xx
            (
                Box::new(move |i| c2(i) * (3.0 * cx(i) * cx(i) - c2(i))),
                MomentKind::Ghost,
            ), // π_xx
            (
                Box::new(move |i| cy(i) * cy(i) - cz(i) * cz(i)),
                MomentKind::Shear,
            ), // p_ww
            (
                Box::new(move |i| c2(i) * (cy(i) * cy(i) - cz(i) * cz(i))),
                MomentKind::Ghost,
            ), // π_ww
            (Box::new(move |i| cx(i) * cy(i)), MomentKind::Shear), // p_xy
            (Box::new(move |i| cy(i) * cz(i)), MomentKind::Shear), // p_yz
            (Box::new(move |i| cx(i) * cz(i)), MomentKind::Shear), // p_xz
            (
                Box::new(move |i| (cy(i) * cy(i) - cz(i) * cz(i)) * cx(i)),
                MomentKind::Ghost,
            ), // m_x
            (
                Box::new(move |i| (cz(i) * cz(i) - cx(i) * cx(i)) * cy(i)),
                MomentKind::Ghost,
            ), // m_y
            (
                Box::new(move |i| (cx(i) * cx(i) - cy(i) * cy(i)) * cz(i)),
                MomentKind::Ghost,
            ), // m_z
        ];
        let mut m: Vec<[f64; Q]> = Vec::with_capacity(Q);
        let mut kinds = [MomentKind::Ghost; Q];
        for (k, (poly, kind)) in polys.iter().enumerate() {
            let mut row = [0.0; Q];
            for (i, r) in row.iter_mut().enumerate() {
                *r = poly(i);
            }
            // Gram–Schmidt against previous rows (uniform inner product).
            for prev in &m {
                let dot: f64 = row.iter().zip(prev).map(|(a, b)| a * b).sum();
                let nrm: f64 = prev.iter().map(|v| v * v).sum();
                for (r, p) in row.iter_mut().zip(prev) {
                    *r -= dot / nrm * p;
                }
            }
            kinds[k] = *kind;
            m.push(row);
        }
        // Inverse: Mᵀ with rows scaled by 1/‖row‖².
        let mut minv = vec![[0.0; Q]; Q];
        for (k, row) in m.iter().enumerate() {
            let nrm: f64 = row.iter().map(|v| v * v).sum();
            for i in 0..Q {
                minv[i][k] = row[i] / nrm;
            }
        }
        Self { m, minv, kinds }
    }

    /// Transform distributions to moments.
    pub fn to_moments(&self, f: &[f64; Q]) -> [f64; Q] {
        let mut m = [0.0; Q];
        for (k, row) in self.m.iter().enumerate() {
            m[k] = row.iter().zip(f).map(|(a, b)| a * b).sum();
        }
        m
    }

    /// Transform moments back to distributions.
    pub fn from_moments(&self, m: &[f64; Q]) -> [f64; Q] {
        let mut f = [0.0; Q];
        for (i, row) in self.minv.iter().enumerate() {
            f[i] = row.iter().zip(m).map(|(a, b)| a * b).sum();
        }
        f
    }

    /// One MRT collision of a single node's distributions (no forcing):
    /// relax each moment toward `m^eq = M f^eq(ρ, u)` at its class rate.
    pub fn collide(&self, f: &mut [f64; Q], rates: MrtRates) {
        // Moments of the state and of its BGK-consistent equilibrium.
        let m = self.to_moments(f);
        let mut rho = 0.0;
        let mut j = [0.0f64; 3];
        for i in 0..Q {
            rho += f[i];
            j[0] += f[i] * C[i][0] as f64;
            j[1] += f[i] * C[i][1] as f64;
            j[2] += f[i] * C[i][2] as f64;
        }
        let feq = equilibrium_all(rho, j[0] / rho, j[1] / rho, j[2] / rho);
        let meq = self.to_moments(&feq);
        let mut m_new = [0.0; Q];
        for k in 0..Q {
            let s = match self.kinds[k] {
                MomentKind::Conserved => 0.0,
                MomentKind::Shear => rates.shear,
                MomentKind::Bulk => rates.bulk,
                MomentKind::Ghost => rates.ghost,
            };
            m_new[k] = m[k] - s * (m[k] - meq[k]);
        }
        *f = self.from_moments(&m_new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_is_orthogonal_and_invertible() {
        let b = MrtBasis::new();
        // Row orthogonality.
        for k1 in 0..Q {
            for k2 in 0..k1 {
                let dot: f64 = (0..Q).map(|i| b.m[k1][i] * b.m[k2][i]).sum();
                assert!(dot.abs() < 1e-10, "rows {k1},{k2} not orthogonal: {dot}");
            }
        }
        // Round trip f → m → f.
        let f = equilibrium_all(1.05, 0.03, -0.02, 0.01);
        let back = b.from_moments(&b.to_moments(&f));
        for i in 0..Q {
            assert!((back[i] - f[i]).abs() < 1e-13, "dir {i}");
        }
    }

    #[test]
    fn bgk_rates_reproduce_bgk_collision_exactly() {
        let b = MrtBasis::new();
        let tau = 0.83;
        // Arbitrary non-equilibrium state.
        let mut f = equilibrium_all(1.02, 0.04, -0.01, 0.02);
        f[3] += 0.005;
        f[11] -= 0.003;
        f[17] += 0.001;
        // BGK by hand.
        let mut rho = 0.0;
        let mut j = [0.0f64; 3];
        for i in 0..Q {
            rho += f[i];
            j[0] += f[i] * C[i][0] as f64;
            j[1] += f[i] * C[i][1] as f64;
            j[2] += f[i] * C[i][2] as f64;
        }
        let feq = equilibrium_all(rho, j[0] / rho, j[1] / rho, j[2] / rho);
        let mut bgk = f;
        for i in 0..Q {
            bgk[i] += (feq[i] - bgk[i]) / tau;
        }
        // MRT with uniform rates.
        let mut mrt = f;
        b.collide(&mut mrt, MrtRates::bgk(tau));
        for i in 0..Q {
            assert!(
                (mrt[i] - bgk[i]).abs() < 1e-13,
                "dir {i}: mrt {} vs bgk {}",
                mrt[i],
                bgk[i]
            );
        }
    }

    #[test]
    fn collision_conserves_mass_and_momentum() {
        let b = MrtBasis::new();
        let mut f = equilibrium_all(0.97, -0.02, 0.05, 0.01);
        f[5] += 0.004;
        f[9] -= 0.002;
        let before: (f64, [f64; 3]) = moments(&f);
        b.collide(&mut f, MrtRates::tuned(0.7));
        let after = moments(&f);
        assert!((before.0 - after.0).abs() < 1e-13);
        for a in 0..3 {
            assert!((before.1[a] - after.1[a]).abs() < 1e-13, "axis {a}");
        }
    }

    fn moments(f: &[f64; Q]) -> (f64, [f64; 3]) {
        let mut rho = 0.0;
        let mut j = [0.0f64; 3];
        for i in 0..Q {
            rho += f[i];
            j[0] += f[i] * C[i][0] as f64;
            j[1] += f[i] * C[i][1] as f64;
            j[2] += f[i] * C[i][2] as f64;
        }
        (rho, j)
    }

    #[test]
    fn tuned_rates_keep_equilibrium_fixed() {
        let b = MrtBasis::new();
        let mut f = equilibrium_all(1.0, 0.05, 0.02, -0.03);
        let orig = f;
        b.collide(&mut f, MrtRates::tuned(0.9));
        for i in 0..Q {
            assert!((f[i] - orig[i]).abs() < 1e-13, "equilibrium moved, dir {i}");
        }
    }

    #[test]
    fn ghost_damping_shrinks_ghost_moments_faster() {
        let b = MrtBasis::new();
        let tau = 2.0; // sluggish BGK regime (Eq. 7 at n=10, λ=1/2 territory)
        let mut f = equilibrium_all(1.0, 0.0, 0.0, 0.0);
        // Inject pure ghost-mode noise: build it in moment space so none of
        // it leaks into conserved/shear moments.
        let mut noise_m = [0.0; Q];
        for (m, kind) in noise_m.iter_mut().zip(&b.kinds) {
            if *kind == MomentKind::Ghost {
                *m = 0.01;
            }
        }
        let noise_f = b.from_moments(&noise_m);
        for i in 0..Q {
            f[i] += noise_f[i];
        }
        let ghost_norm = |f: &[f64; Q]| -> f64 {
            // Ghost content = deviation of the ghost moments from their
            // local-equilibrium values (the equilibrium itself carries
            // nonzero higher-order moments).
            let m = b.to_moments(f);
            let mut rho = 0.0;
            let mut j = [0.0f64; 3];
            for i in 0..Q {
                rho += f[i];
                j[0] += f[i] * C[i][0] as f64;
                j[1] += f[i] * C[i][1] as f64;
                j[2] += f[i] * C[i][2] as f64;
            }
            let meq = b.to_moments(&equilibrium_all(rho, j[0] / rho, j[1] / rho, j[2] / rho));
            (0..Q)
                .filter(|&k| b.kinds[k] == MomentKind::Ghost)
                .map(|k| (m[k] - meq[k]) * (m[k] - meq[k]))
                .sum::<f64>()
                .sqrt()
        };
        let mut f_bgk = f;
        let mut f_tuned = f;
        for _ in 0..3 {
            b.collide(&mut f_bgk, MrtRates::bgk(tau));
            b.collide(&mut f_tuned, MrtRates::tuned(tau));
        }
        assert!(
            ghost_norm(&f_tuned) < 0.5 * ghost_norm(&f_bgk),
            "tuned {} vs bgk {}",
            ghost_norm(&f_tuned),
            ghost_norm(&f_bgk)
        );
    }
}
