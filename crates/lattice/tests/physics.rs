//! Physics verification of the LBM solver against analytic solutions.

use apr_lattice::{
    couette_channel, couette_height, couette_y_position, force_driven_tube, poiseuille_slit,
    Boundary, Lattice, NodeClass,
};

/// Run until the x-velocity field change per step falls below `tol`.
fn run_to_steady(lat: &mut Lattice, max_steps: usize, tol: f64) -> usize {
    let mut prev: Vec<f64> = lat.vel.clone();
    for s in 0..max_steps {
        lat.step();
        if s % 50 == 49 {
            let diff = lat
                .vel
                .iter()
                .zip(&prev)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            if diff < tol {
                return s + 1;
            }
            prev.copy_from_slice(&lat.vel);
        }
    }
    max_steps
}

#[test]
fn couette_profile_is_linear() {
    let (nx, ny, nz) = (4, 22, 4);
    let u_lid = 0.05;
    let mut lat = couette_channel(nx, ny, nz, 0.9, u_lid);
    run_to_steady(&mut lat, 20000, 1e-12);
    let h = couette_height(ny);
    for y in 1..ny - 1 {
        let node = lat.idx(2, y, 2);
        let u = lat.velocity_at(node)[0];
        let expected = u_lid * couette_y_position(y) / h;
        assert!(
            (u - expected).abs() < 2e-4 * u_lid.max(1e-30) + 1e-7,
            "y = {y}: u = {u}, expected {expected}"
        );
    }
}

#[test]
fn couette_mass_is_conserved() {
    let mut lat = couette_channel(6, 10, 6, 1.0, 0.03);
    let m0 = lat.total_mass();
    for _ in 0..500 {
        lat.step();
    }
    let m1 = lat.total_mass();
    assert!((m1 - m0).abs() / m0 < 1e-10, "mass drifted {m0} -> {m1}");
}

#[test]
fn poiseuille_slit_profile_is_parabolic() {
    let (nx, ny, nz) = (4, 26, 4);
    let g = 1e-6;
    let tau = 0.8;
    let mut lat = poiseuille_slit(nx, ny, nz, tau, g);
    run_to_steady(&mut lat, 40000, 1e-13);
    let nu = lat.lattice_viscosity();
    let h = (ny - 2) as f64;
    let mut worst = 0.0f64;
    for y in 1..ny - 1 {
        let node = lat.idx(2, y, 2);
        let u = lat.velocity_at(node)[0];
        let yy = couette_y_position(y);
        let expected = g * yy * (h - yy) / (2.0 * nu);
        worst = worst.max((u - expected).abs() / (g * h * h / (8.0 * nu)));
    }
    assert!(worst < 0.01, "max relative deviation {worst}");
}

#[test]
fn poiseuille_peak_velocity_scales_with_force() {
    let center_velocity = |g: f64| -> f64 {
        let mut lat = poiseuille_slit(4, 18, 4, 0.9, g);
        run_to_steady(&mut lat, 30000, 1e-13);
        lat.velocity_at(lat.idx(2, 9, 2))[0]
    };
    let u1 = center_velocity(5e-7);
    let u2 = center_velocity(1e-6);
    assert!((u2 / u1 - 2.0).abs() < 0.01, "ratio = {}", u2 / u1);
}

#[test]
fn tube_poiseuille_profile() {
    let (nx, ny, nz) = (23, 23, 4);
    let radius = 9.0;
    let g = 1e-6;
    let mut lat = force_driven_tube(nx, ny, nz, 0.9, radius, g);
    run_to_steady(&mut lat, 40000, 1e-13);
    let nu = lat.lattice_viscosity();
    let (cx, cy) = ((nx as f64 - 1.0) / 2.0, (ny as f64 - 1.0) / 2.0);
    // Halfway bounce-back puts the wall ~half a spacing beyond the last
    // fluid node; compare against the analytic profile with a fitted radius.
    let r_wall = radius + 0.0; // nominal
    let mut samples = Vec::new();
    for y in 0..ny {
        for x in 0..nx {
            let node = lat.idx(x, y, 1);
            if lat.flag(node) != NodeClass::Fluid {
                continue;
            }
            let r = ((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2)).sqrt();
            let u = lat.velocity_at(node)[2];
            let expected = g * (r_wall * r_wall - r * r).max(0.0) / (4.0 * nu);
            samples.push((u, expected));
        }
    }
    let u_max = g * r_wall * r_wall / (4.0 * nu);
    let rms: f64 =
        (samples.iter().map(|(u, e)| (u - e) * (u - e)).sum::<f64>() / samples.len() as f64).sqrt()
            / u_max;
    assert!(rms < 0.08, "tube profile RMS error {rms}");
}

#[test]
fn velocity_bc_drives_plug_flow() {
    // A duct with an inlet velocity plane and an outlet pressure plane
    // reaches a plug-like mean flow of the prescribed rate.
    let (nx, ny, nz) = (4, 4, 30);
    let u_in = 0.02;
    let mut lat = Lattice::new(nx, ny, nz, 0.8);
    lat.periodic = [true, true, false];
    for y in 0..ny {
        for x in 0..nx {
            let inlet = lat.idx(x, y, 0);
            lat.set_boundary(inlet, Boundary::Velocity([0.0, 0.0, u_in]));
            let outlet = lat.idx(x, y, nz - 1);
            lat.set_boundary(outlet, Boundary::Pressure(1.0));
        }
    }
    for _ in 0..3000 {
        lat.step();
    }
    let mid = lat.idx(2, 2, nz / 2);
    let u = lat.velocity_at(mid)[2];
    assert!((u - u_in).abs() < 0.05 * u_in, "u = {u}, target {u_in}");
}

#[test]
fn moving_wall_transfers_momentum_direction() {
    // Lid moving +x must produce non-negative x-velocity everywhere in
    // steady Couette flow (sign check on the bounce-back correction).
    let mut lat = couette_channel(4, 12, 4, 1.0, 0.04);
    run_to_steady(&mut lat, 8000, 1e-12);
    for y in 1..11 {
        let u = lat.velocity_at(lat.idx(1, y, 1))[0];
        assert!(u > -1e-9, "u({y}) = {u}");
    }
    // And it must increase monotonically toward the lid.
    let mut prev = -1.0;
    for y in 1..11 {
        let u = lat.velocity_at(lat.idx(1, y, 1))[0];
        assert!(u > prev, "profile not monotone at y={y}");
        prev = u;
    }
}

#[test]
fn body_force_accelerates_periodic_box() {
    // Fully periodic box with uniform force: du/dt = g (unit density).
    let mut lat = Lattice::new(8, 8, 8, 1.0);
    lat.periodic = [true, true, true];
    lat.body_force = [1e-6, 0.0, 0.0];
    let steps = 100;
    for _ in 0..steps {
        lat.step();
    }
    let u = lat.velocity_at(lat.idx(4, 4, 4))[0];
    let expected = 1e-6 * steps as f64; // impulse per unit mass
    assert!(
        (u - expected).abs() < 0.02 * expected,
        "u = {u}, expected ≈ {expected}"
    );
}

#[test]
fn ibm_style_point_force_conserves_momentum_budget() {
    // A localized force adds exactly F per step to total fluid momentum in a
    // periodic box (spreading of membrane forces relies on this).
    let mut lat = Lattice::new(10, 10, 10, 0.9);
    lat.periodic = [true, true, true];
    let node = lat.idx(5, 5, 5);
    let fpoint = 1e-5;
    let steps = 50;
    for _ in 0..steps {
        lat.clear_forces();
        lat.add_force(node, [0.0, fpoint, 0.0]);
        lat.step();
    }
    // Total momentum = Σ f c over all nodes.
    let mut py = 0.0;
    for n in 0..lat.node_count() {
        let (rho, u) = lat.moments_at(n);
        py += rho * u[1];
    }
    let expected = fpoint * steps as f64;
    assert!(
        (py - expected).abs() < 0.05 * expected,
        "py = {py}, expected ≈ {expected}"
    );
}
