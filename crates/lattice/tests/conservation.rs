//! Mass conservation on the periodic force-driven tube: the collide +
//! stream cycle only rearranges distribution values (the body force is
//! velocity-shifting, not mass-adding), so total mass must be preserved
//! to floating-point round-off — for every kernel and chunking policy.

use apr_lattice::{force_driven_tube, ChunkingPolicy, KernelKind};

const KERNELS: [KernelKind; 3] = [
    KernelKind::Reference,
    KernelKind::FusedSwap,
    KernelKind::FusedSimd,
];
const POLICIES: [ChunkingPolicy; 2] = [ChunkingPolicy::Static, ChunkingPolicy::Guided];

#[test]
fn tube_conserves_mass_to_round_off_for_every_kernel_and_chunking() {
    for kernel in KERNELS {
        for policy in POLICIES {
            let mut lat = force_driven_tube(15, 15, 8, 0.9, 5.5, 1e-6);
            lat.set_kernel(Some(kernel));
            lat.set_chunking(Some(policy));
            let (m0, _, nodes0) = lat.mass_momentum_totals();
            assert!(m0 > 0.0 && nodes0 > 0);
            for _ in 0..200 {
                lat.step();
            }
            let (m1, _, nodes1) = lat.mass_momentum_totals();
            let drift = ((m1 - m0) / m0).abs();
            assert!(
                drift <= 1e-12,
                "{kernel:?}/{policy:?}: mass drifted by {drift:e} over 200 steps"
            );
            assert_eq!(nodes0, nodes1, "fluid node count is static");
        }
    }
}

#[test]
fn mass_momentum_totals_agrees_with_total_mass() {
    let mut lat = force_driven_tube(15, 15, 8, 0.9, 5.5, 1e-6);
    for _ in 0..10 {
        lat.step();
    }
    let (mass, momentum, _) = lat.mass_momentum_totals();
    let reference = lat.total_mass();
    assert!(
        ((mass - reference) / reference).abs() < 1e-12,
        "ledger total {mass} vs solver total {reference}"
    );
    // The driven tube accelerates along +z: momentum should be growing in
    // z and negligible across the section.
    assert!(momentum[2] > 0.0, "driven flow carries +z momentum");
    assert!(momentum[0].abs() < momentum[2].abs());
    assert!(momentum[1].abs() < momentum[2].abs());
}
