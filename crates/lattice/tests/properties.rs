//! Property-based tests of the D3Q19 kernel invariants.

use apr_lattice::{equilibrium_all, Lattice, C, Q};
use proptest::prelude::*;

proptest! {
    /// Equilibrium moments recover (ρ, u) for any admissible state.
    #[test]
    fn equilibrium_moments_exact(
        rho in 0.5..2.0f64,
        ux in -0.1..0.1f64,
        uy in -0.1..0.1f64,
        uz in -0.1..0.1f64,
    ) {
        let f = equilibrium_all(rho, ux, uy, uz);
        let mass: f64 = f.iter().sum();
        prop_assert!((mass - rho).abs() < 1e-12);
        for a in 0..3 {
            let mom: f64 = (0..Q).map(|i| f[i] * C[i][a] as f64).sum();
            let expected = rho * [ux, uy, uz][a];
            prop_assert!((mom - expected).abs() < 1e-12);
        }
    }

    /// All equilibrium populations stay positive at low Mach number.
    #[test]
    fn equilibrium_positivity(
        rho in 0.5..2.0f64,
        ux in -0.08..0.08f64,
        uy in -0.08..0.08f64,
        uz in -0.08..0.08f64,
    ) {
        let f = equilibrium_all(rho, ux, uy, uz);
        for (i, &fi) in f.iter().enumerate() {
            prop_assert!(fi > 0.0, "f[{i}] = {fi}");
        }
    }

    /// A uniform equilibrium state is a fixed point of the dynamics in a
    /// fully periodic box for any (ρ, u, τ).
    #[test]
    fn uniform_state_is_invariant(
        rho in 0.8..1.2f64,
        u in -0.05..0.05f64,
        tau in 0.6..1.8f64,
    ) {
        let mut lat = Lattice::new(6, 6, 6, tau);
        lat.periodic = [true, true, true];
        lat.initialize_equilibrium(rho, [u, 0.0, 0.0]);
        for _ in 0..5 {
            lat.step();
        }
        let (r, v) = lat.moments_at(lat.idx(3, 3, 3));
        prop_assert!((r - rho).abs() < 1e-12);
        prop_assert!((v[0] - u).abs() < 1e-12);
    }

    /// Mass conservation in a random walled box with arbitrary τ.
    #[test]
    fn mass_conserved_with_walls(tau in 0.6..1.5f64, u_lid in 0.0..0.08f64) {
        let mut lat = apr_lattice::couette_channel(5, 8, 5, tau, u_lid);
        let m0 = lat.total_mass();
        for _ in 0..50 {
            lat.step();
        }
        prop_assert!((lat.total_mass() - m0).abs() / m0 < 1e-9);
    }
}
