//! Property-based tests: the uniform subgrid must agree with brute force.

use apr_cells::UniformSubgrid;
use apr_mesh::Vec3;
use proptest::prelude::*;

fn points_strategy() -> impl Strategy<Value = Vec<(u64, Vec3)>> {
    proptest::collection::vec(
        (0u64..20, (-20.0..20.0f64, -20.0..20.0f64, -20.0..20.0f64)),
        1..60,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(id, (x, y, z))| (id, Vec3::new(x, y, z)))
            .collect()
    })
}

proptest! {
    /// Neighbour queries return exactly the brute-force answer for any
    /// point cloud, query centre, radius and bin size.
    #[test]
    fn subgrid_matches_brute_force(
        points in points_strategy(),
        qx in -25.0..25.0f64,
        qy in -25.0..25.0f64,
        qz in -25.0..25.0f64,
        radius in 0.1..10.0f64,
        bin in 0.5..8.0f64,
        exclude in 0u64..20,
    ) {
        let mut grid = UniformSubgrid::new(bin);
        for (i, &(id, p)) in points.iter().enumerate() {
            grid.insert(id, i as u32, p);
        }
        let q = Vec3::new(qx, qy, qz);
        let got = grid.cells_near(q, radius, exclude);
        let mut expected: Vec<u64> = points
            .iter()
            .filter(|&&(id, p)| id != exclude && p.distance_sq(q) <= radius * radius)
            .map(|&(id, _)| id)
            .collect();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(got, expected);
    }

    /// Removing a cell removes exactly its samples.
    #[test]
    fn remove_is_exact(points in points_strategy(), victim in 0u64..20) {
        let mut grid = UniformSubgrid::new(2.0);
        for (i, &(id, p)) in points.iter().enumerate() {
            grid.insert(id, i as u32, p);
        }
        let victim_count = points.iter().filter(|&&(id, _)| id == victim).count();
        grid.remove_cell(victim);
        prop_assert_eq!(grid.len(), points.len() - victim_count);
    }
}
