//! Overlap detection for cell insertion (paper §2.4.2).
//!
//! "Overlapping cells are removed using an efficient algorithm that detects
//! overlaps by identifying nearby cells at each vertex of the tested cell,
//! using a background uniform subgrid. The algorithm can run on multiple MPI
//! tasks, and maintain consistency across task counts by preferentially
//! removing overlapping cells based on global IDs."

use crate::pool::CellPool;
use crate::subgrid::UniformSubgrid;
use apr_mesh::Vec3;

/// Result of testing a candidate shape against the existing population.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OverlapOutcome {
    /// No existing vertex within the clearance of any candidate vertex.
    Clear,
    /// Overlaps these existing cell IDs (sorted, deduplicated).
    Overlaps(Vec<u64>),
}

/// Test a candidate cell shape against `grid` with clearance `min_gap`.
pub fn test_overlap(grid: &UniformSubgrid, vertices: &[Vec3], min_gap: f64) -> OverlapOutcome {
    let mut hits: Vec<u64> = Vec::new();
    for &p in vertices {
        grid.for_each_neighbor(p, min_gap, u64::MAX, |e| {
            if !hits.contains(&e.cell_id) {
                hits.push(e.cell_id);
            }
        });
    }
    if hits.is_empty() {
        OverlapOutcome::Clear
    } else {
        hits.sort_unstable();
        OverlapOutcome::Overlaps(hits)
    }
}

/// Does a candidate centroid sit within `min_centroid_gap` of any live
/// cell's centroid?
///
/// [`test_overlap`] samples **surface vertices** only, so at coarse mesh
/// resolutions two nearly concentric cells can slip below its radar: every
/// vertex-to-vertex distance exceeds `min_gap` even though the surfaces
/// interpenetrate heavily. Same-species cells whose centroids nearly
/// coincide always overlap regardless of mesh resolution, so insertion
/// paths pair the vertex test with this centroid floor (conventionally
/// `2 × min_gap`).
pub fn centroid_conflict(pool: &CellPool, centroid: Vec3, min_centroid_gap: f64) -> bool {
    let gap2 = min_centroid_gap * min_centroid_gap;
    pool.iter()
        .any(|c| (c.centroid() - centroid).norm_sq() < gap2)
}

/// Deterministic conflict resolution between two overlapping cells:
/// the one with the **larger** global ID (the later-placed cell) is removed,
/// so results are identical regardless of how placement work was divided
/// among tasks.
#[inline]
pub fn loser_of(a: u64, b: u64) -> u64 {
    a.max(b)
}

/// Resolve a batch of freshly placed, possibly mutually overlapping cells:
/// given `(id, vertices)` pairs, returns the IDs to **keep**, processing in
/// global-ID order so lower IDs win their conflicts — the rank-count
/// invariant resolution of §2.4.2.
pub fn resolve_batch(candidates: &[(u64, Vec<Vec3>)], min_gap: f64, bin: f64) -> Vec<u64> {
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_unstable_by_key(|&i| candidates[i].0);
    let mut grid = UniformSubgrid::new(bin);
    let mut kept = Vec::new();
    for i in order {
        let (id, verts) = &candidates[i];
        match test_overlap(&grid, verts, min_gap) {
            OverlapOutcome::Clear => {
                grid.insert_cell(*id, verts);
                kept.push(*id);
            }
            OverlapOutcome::Overlaps(_) => {}
        }
    }
    kept.sort_unstable();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: Vec3) -> Vec<Vec3> {
        vec![
            center,
            center + Vec3::X * 0.5,
            center - Vec3::X * 0.5,
            center + Vec3::Y * 0.5,
        ]
    }

    #[test]
    fn clear_when_far_apart() {
        let mut grid = UniformSubgrid::new(1.0);
        grid.insert_cell(1, &blob(Vec3::ZERO));
        let outcome = test_overlap(&grid, &blob(Vec3::new(10.0, 0.0, 0.0)), 0.5);
        assert_eq!(outcome, OverlapOutcome::Clear);
    }

    #[test]
    fn detects_overlap_and_names_cells() {
        let mut grid = UniformSubgrid::new(1.0);
        grid.insert_cell(3, &blob(Vec3::ZERO));
        grid.insert_cell(8, &blob(Vec3::new(0.4, 0.0, 0.0)));
        let outcome = test_overlap(&grid, &blob(Vec3::new(0.2, 0.0, 0.0)), 0.3);
        match outcome {
            OverlapOutcome::Overlaps(ids) => assert_eq!(ids, vec![3, 8]),
            OverlapOutcome::Clear => panic!("overlap missed"),
        }
    }

    #[test]
    fn loser_is_higher_id() {
        assert_eq!(loser_of(3, 8), 8);
        assert_eq!(loser_of(8, 3), 8);
    }

    #[test]
    fn batch_resolution_is_order_independent() {
        // Three cells where 0 overlaps 1 and 1 overlaps 2, but 0 and 2 are
        // clear of each other: keeping {0, 2} is the ID-ordered outcome.
        let cells = vec![
            (0u64, blob(Vec3::ZERO)),
            (1u64, blob(Vec3::new(0.6, 0.0, 0.0))),
            (2u64, blob(Vec3::new(1.8, 0.0, 0.0))),
        ];
        let kept = resolve_batch(&cells, 0.4, 1.0);
        assert_eq!(kept, vec![0, 2]);
        // Same input shuffled must keep the same set (rank-count invariance).
        let shuffled = vec![cells[2].clone(), cells[0].clone(), cells[1].clone()];
        assert_eq!(resolve_batch(&shuffled, 0.4, 1.0), vec![0, 2]);
    }

    #[test]
    fn batch_keeps_everything_when_sparse() {
        let cells: Vec<(u64, Vec<Vec3>)> = (0..5)
            .map(|i| (i as u64, blob(Vec3::new(i as f64 * 5.0, 0.0, 0.0))))
            .collect();
        assert_eq!(resolve_batch(&cells, 0.5, 1.0), vec![0, 1, 2, 3, 4]);
    }
}
