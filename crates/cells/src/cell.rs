//! A single deformable cell instance.

use apr_membrane::{EnergyBreakdown, Membrane};
use apr_mesh::Vec3;
use std::sync::Arc;

/// Biological cell type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Red blood cell.
    Rbc,
    /// Circulating tumor cell.
    Ctc,
}

/// Globally unique cell identifier.
///
/// IDs are assigned once at creation and survive window moves and task
/// migration; the overlap-removal algorithm uses them to break ties
/// deterministically across MPI task counts (paper §2.4.2).
pub type CellId = u64;

/// A deformable cell: shared membrane model + per-instance state.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Globally unique ID.
    pub id: CellId,
    /// Cell type.
    pub kind: CellKind,
    /// Shared membrane model (reference shape + material).
    pub membrane: Arc<Membrane>,
    /// Current vertex positions.
    pub vertices: Vec<Vec3>,
    /// Current vertex velocities (diagnostics; IBM advection is velocity-
    /// driven so these lag by one step).
    pub velocities: Vec<Vec3>,
    /// Accumulated vertex forces for the current step.
    pub forces: Vec<Vec3>,
}

impl Cell {
    /// Instantiate a cell of `kind` from its membrane model, placed with the
    /// reference shape centred at `center`.
    pub fn new(id: CellId, kind: CellKind, membrane: Arc<Membrane>, center: Vec3) -> Self {
        let reference = &membrane.reference;
        let n = reference.vertex_count;
        let mut vertices = Vec::with_capacity(n);
        // The reference connectivity mesh isn't stored with positions here;
        // callers that need the undeformed shape pass it via `with_shape`.
        vertices.resize(n, center);
        Self {
            id,
            kind,
            membrane,
            vertices,
            velocities: vec![Vec3::ZERO; n],
            forces: vec![Vec3::ZERO; n],
        }
    }

    /// Instantiate from explicit vertex positions (e.g. an undeformed mesh
    /// or a deep-copied deformed shape, paper §2.4.3).
    pub fn with_shape(
        id: CellId,
        kind: CellKind,
        membrane: Arc<Membrane>,
        vertices: Vec<Vec3>,
    ) -> Self {
        assert_eq!(
            vertices.len(),
            membrane.reference.vertex_count,
            "shape does not match membrane reference"
        );
        let n = vertices.len();
        Self {
            id,
            kind,
            membrane,
            vertices,
            velocities: vec![Vec3::ZERO; n],
            forces: vec![Vec3::ZERO; n],
        }
    }

    /// Reassemble a cell from checkpointed per-vertex state, preserving its
    /// original global ID (unlike [`Cell::with_shape`], which is for new
    /// cells). Velocities and forces are restored verbatim so a resumed
    /// run's first FSI substep sees exactly the pre-checkpoint state.
    pub fn from_parts(
        id: CellId,
        kind: CellKind,
        membrane: Arc<Membrane>,
        vertices: Vec<Vec3>,
        velocities: Vec<Vec3>,
        forces: Vec<Vec3>,
    ) -> Self {
        assert_eq!(
            vertices.len(),
            membrane.reference.vertex_count,
            "shape does not match membrane reference"
        );
        assert_eq!(velocities.len(), vertices.len(), "velocity count mismatch");
        assert_eq!(forces.len(), vertices.len(), "force count mismatch");
        Self {
            id,
            kind,
            membrane,
            vertices,
            velocities,
            forces,
        }
    }

    /// Number of mesh vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Mean vertex position — the centroid used for insertion-subregion
    /// bookkeeping (paper §2.4.2 tracks cells "based on their centroid").
    pub fn centroid(&self) -> Vec3 {
        self.vertices.iter().copied().sum::<Vec3>() / self.vertices.len() as f64
    }

    /// Axis-aligned bounding box of the current shape.
    pub fn bounding_box(&self) -> (Vec3, Vec3) {
        let mut lo = self.vertices[0];
        let mut hi = self.vertices[0];
        for &v in &self.vertices[1..] {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// Translate the whole cell.
    pub fn translate(&mut self, d: Vec3) {
        for v in &mut self.vertices {
            *v += d;
        }
    }

    /// Current enclosed volume (reference connectivity).
    pub fn volume(&self) -> f64 {
        apr_membrane::constraints::enclosed_volume(&self.membrane.reference, &self.vertices)
    }

    /// Current surface area.
    pub fn surface_area(&self) -> f64 {
        apr_membrane::constraints::surface_area(&self.membrane.reference, &self.vertices)
    }

    /// Zero the force accumulator.
    pub fn clear_forces(&mut self) {
        self.forces.iter_mut().for_each(|f| *f = Vec3::ZERO);
    }

    /// Accumulate membrane elastic forces; returns the energy breakdown.
    pub fn compute_membrane_forces(&mut self) -> EnergyBreakdown {
        self.membrane
            .compute_forces(&self.vertices, &mut self.forces)
    }

    /// Apply a vertex-velocity update: `x += v·dt`, storing `v`.
    pub fn advect(&mut self, velocities: &[Vec3], dt: f64) {
        assert_eq!(velocities.len(), self.vertices.len());
        for ((x, v), &vel) in self
            .vertices
            .iter_mut()
            .zip(self.velocities.iter_mut())
            .zip(velocities)
        {
            *x += vel * dt;
            *v = vel;
        }
    }

    /// True when every vertex is finite (mesh has not blown up).
    pub fn is_finite(&self) -> bool {
        self.vertices.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_membrane::{MembraneMaterial, ReferenceState};
    use apr_mesh::icosphere;

    fn sphere_membrane() -> (Arc<Membrane>, apr_mesh::TriMesh) {
        let mesh = icosphere(1, 1.0);
        let re = Arc::new(ReferenceState::build(&mesh));
        (
            Arc::new(Membrane::new(re, MembraneMaterial::rbc(1.0, 0.01))),
            mesh,
        )
    }

    #[test]
    fn with_shape_preserves_geometry() {
        let (mem, mesh) = sphere_membrane();
        let cell = Cell::with_shape(7, CellKind::Rbc, mem, mesh.vertices.clone());
        assert_eq!(cell.id, 7);
        assert!((cell.volume() - mesh.enclosed_volume()).abs() < 1e-12);
        assert!(cell.centroid().norm() < 1e-12);
    }

    #[test]
    fn translate_moves_centroid() {
        let (mem, mesh) = sphere_membrane();
        let mut cell = Cell::with_shape(0, CellKind::Rbc, mem, mesh.vertices);
        cell.translate(Vec3::new(3.0, -1.0, 2.0));
        assert!((cell.centroid() - Vec3::new(3.0, -1.0, 2.0)).norm() < 1e-12);
    }

    #[test]
    fn advect_applies_velocity() {
        let (mem, mesh) = sphere_membrane();
        let mut cell = Cell::with_shape(0, CellKind::Ctc, mem, mesh.vertices);
        let vels = vec![Vec3::new(0.5, 0.0, 0.0); cell.vertex_count()];
        cell.advect(&vels, 2.0);
        assert!((cell.centroid() - Vec3::new(1.0, 0.0, 0.0)).norm() < 1e-12);
        assert_eq!(cell.velocities[0], Vec3::new(0.5, 0.0, 0.0));
    }

    #[test]
    fn membrane_forces_accumulate() {
        let (mem, mesh) = sphere_membrane();
        let stretched: Vec<Vec3> = mesh.vertices.iter().map(|&v| v * 1.1).collect();
        let mut cell = Cell::with_shape(0, CellKind::Rbc, mem, stretched);
        let e = cell.compute_membrane_forces();
        assert!(e.total() > 0.0);
        assert!(cell.forces.iter().any(|f| f.norm() > 0.0));
        cell.clear_forces();
        assert!(cell.forces.iter().all(|f| f.norm() == 0.0));
    }

    #[test]
    #[should_panic(expected = "shape does not match")]
    fn shape_mismatch_rejected() {
        let (mem, _) = sphere_membrane();
        let _ = Cell::with_shape(0, CellKind::Rbc, mem, vec![Vec3::ZERO; 3]);
    }
}
