//! Cell suspension management (paper §2.4.2 and §2.4.5).
//!
//! Everything between the membrane model and the window logic: cell
//! instances with shared reference shapes ([`cell`]), pooled preallocated
//! storage with slot reuse ([`pool`], the paper's cell memory management),
//! the background uniform subgrid for neighbour queries ([`subgrid`]),
//! short-range intercellular repulsion ([`contact`]), overlap detection with
//! deterministic global-ID tie-breaking ([`overlap`]), and the pre-defined
//! RBC tiles that seed insertion subregions ([`tile`]).

pub mod cell;
pub mod contact;
pub mod overlap;
pub mod pool;
pub mod stats;
pub mod subgrid;
pub mod tile;

pub use cell::{Cell, CellId, CellKind};
pub use contact::{apply_contact_forces, rebuild_grid, ContactParams};
pub use overlap::{centroid_conflict, resolve_batch, test_overlap, OverlapOutcome};
pub use pool::{CellPool, SlotIndex};
pub use stats::{cell_axis, deformation_index, suspension_stats, SuspensionStats};
pub use subgrid::UniformSubgrid;
pub use tile::{Placement, RbcTile};
