//! Short-range intercellular contact forces.
//!
//! Explicitly resolved cells must not interpenetrate; a stiff short-range
//! vertex–vertex repulsion (quadratic in overlap depth, zero at the cutoff)
//! supplies the sub-grid lubrication the fluid cannot resolve. Applied
//! through the same uniform subgrid as overlap detection.

use crate::pool::CellPool;
use crate::subgrid::UniformSubgrid;
use apr_mesh::Vec3;

/// Parameters of the contact (repulsion) model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContactParams {
    /// Interaction cutoff distance (typically one fine lattice spacing).
    pub cutoff: f64,
    /// Force magnitude scale at full overlap.
    pub strength: f64,
}

impl ContactParams {
    /// Repulsion force magnitude at separation `d`: `k·(1 − d/d₀)²` inside
    /// the cutoff, zero outside.
    #[inline]
    pub fn magnitude(&self, d: f64) -> f64 {
        if d >= self.cutoff {
            0.0
        } else {
            let x = 1.0 - d / self.cutoff;
            self.strength * x * x
        }
    }
}

/// Rebuild `grid` from all live cells in `pool`.
pub fn rebuild_grid(grid: &mut UniformSubgrid, pool: &CellPool) {
    grid.clear();
    for cell in pool.iter() {
        grid.insert_cell(cell.id, &cell.vertices);
    }
}

/// Accumulate pairwise vertex–vertex repulsion forces between different
/// cells into each cell's force buffer. Returns the number of interacting
/// vertex pairs (each pair counted twice, once from each side — the paper's
/// halo-force *recomputation* strategy, §2.4.5: every owner computes forces
/// for all of its vertices rather than communicating partner forces).
pub fn apply_contact_forces(
    pool: &mut CellPool,
    grid: &UniformSubgrid,
    params: ContactParams,
) -> usize {
    let mut pairs = 0;
    for slot in 0..pool.capacity() {
        let Some(cell) = pool.get(slot) else { continue };
        let id = cell.id;
        let mut forces = vec![Vec3::ZERO; cell.vertex_count()];
        for (vi, &p) in cell.vertices.iter().enumerate() {
            grid.for_each_neighbor(p, params.cutoff, id, |entry| {
                let d = entry.position.distance(p);
                let mag = params.magnitude(d);
                if mag > 0.0 {
                    let dir = if d > 1e-12 {
                        (p - entry.position) / d
                    } else {
                        // Coincident points: deterministic push along x.
                        Vec3::X
                    };
                    forces[vi] += dir * mag;
                    pairs += 1;
                }
            });
        }
        let cell = pool.get_mut(slot).expect("slot vanished");
        for (f, add) in cell.forces.iter_mut().zip(&forces) {
            *f += *add;
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;
    use apr_membrane::{Membrane, MembraneMaterial, ReferenceState};
    use apr_mesh::{icosphere, Vec3};
    use std::sync::Arc;

    fn pool_with_two_spheres(gap: f64) -> CellPool {
        let mesh = icosphere(1, 1.0);
        let re = Arc::new(ReferenceState::build(&mesh));
        let mem = Arc::new(Membrane::new(re, MembraneMaterial::rbc(1.0, 0.01)));
        let mut pool = CellPool::with_capacity(4);
        let (s0, _) = pool.insert_shape(CellKind::Rbc, Arc::clone(&mem), mesh.vertices.clone());
        let (s1, _) = pool.insert_shape(CellKind::Rbc, mem, mesh.vertices.clone());
        pool.get_mut(s0)
            .unwrap()
            .translate(Vec3::new(-(1.0 + gap / 2.0), 0.0, 0.0));
        pool.get_mut(s1)
            .unwrap()
            .translate(Vec3::new(1.0 + gap / 2.0, 0.0, 0.0));
        pool
    }

    #[test]
    fn magnitude_vanishes_at_cutoff() {
        let p = ContactParams {
            cutoff: 0.5,
            strength: 2.0,
        };
        assert_eq!(p.magnitude(0.5), 0.0);
        assert_eq!(p.magnitude(0.6), 0.0);
        assert!((p.magnitude(0.0) - 2.0).abs() < 1e-15);
        assert!(p.magnitude(0.25) > 0.0);
    }

    #[test]
    fn touching_cells_repel_apart() {
        let mut pool = pool_with_two_spheres(0.05);
        let mut grid = UniformSubgrid::new(0.3);
        rebuild_grid(&mut grid, &pool);
        let params = ContactParams {
            cutoff: 0.2,
            strength: 1.0,
        };
        let pairs = apply_contact_forces(&mut pool, &grid, params);
        assert!(
            pairs > 0,
            "cells at 0.05 gap must interact under 0.2 cutoff"
        );
        let mut it = pool.iter();
        let a = it.next().unwrap();
        let b = it.next().unwrap();
        let fa: Vec3 = a.forces.iter().copied().sum();
        let fb: Vec3 = b.forces.iter().copied().sum();
        // Left cell pushed further left, right cell further right.
        assert!(fa.x < 0.0, "fa = {fa:?}");
        assert!(fb.x > 0.0, "fb = {fb:?}");
        // Newton's third law across the pair (both sides recomputed).
        assert!((fa + fb).norm() < 1e-9 * fa.norm().max(fb.norm()));
    }

    #[test]
    fn distant_cells_do_not_interact() {
        let mut pool = pool_with_two_spheres(1.0);
        let mut grid = UniformSubgrid::new(0.3);
        rebuild_grid(&mut grid, &pool);
        let params = ContactParams {
            cutoff: 0.2,
            strength: 1.0,
        };
        let pairs = apply_contact_forces(&mut pool, &grid, params);
        assert_eq!(pairs, 0);
        for c in pool.iter() {
            assert!(c.forces.iter().all(|f| f.norm() == 0.0));
        }
    }

    #[test]
    fn self_interactions_are_excluded() {
        // A single cell alone in the grid receives no contact force even
        // though its own vertices are within the cutoff of each other.
        let mesh = icosphere(2, 1.0);
        let re = Arc::new(ReferenceState::build(&mesh));
        let mem = Arc::new(Membrane::new(re, MembraneMaterial::rbc(1.0, 0.01)));
        let mut pool = CellPool::with_capacity(2);
        pool.insert_shape(CellKind::Rbc, mem, mesh.vertices);
        let mut grid = UniformSubgrid::new(0.5);
        rebuild_grid(&mut grid, &pool);
        let params = ContactParams {
            cutoff: 0.4,
            strength: 1.0,
        };
        let pairs = apply_contact_forces(&mut pool, &grid, params);
        assert_eq!(pairs, 0);
    }
}
