//! Uniform background subgrid for neighbour queries (paper §2.4.2: overlaps
//! are detected "by identifying nearby cells at each vertex of the tested
//! cell, using a background uniform subgrid").

use apr_mesh::Vec3;
use std::collections::HashMap;

/// A point sample registered in the subgrid: owning cell and vertex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridEntry {
    /// Owning cell's global ID.
    pub cell_id: u64,
    /// Vertex index within the cell.
    pub vertex: u32,
    /// Sample position.
    pub position: Vec3,
}

/// Sparse uniform spatial hash over vertex samples.
#[derive(Debug, Clone)]
pub struct UniformSubgrid {
    /// Cubic bin edge length.
    pub bin_size: f64,
    bins: HashMap<(i64, i64, i64), Vec<GridEntry>>,
    len: usize,
}

impl UniformSubgrid {
    /// New empty subgrid with cubic bins of edge `bin_size`.
    ///
    /// Choose `bin_size` at or above the query radius so neighbour searches
    /// touch at most 27 bins.
    pub fn new(bin_size: f64) -> Self {
        assert!(bin_size > 0.0, "bin size must be positive, got {bin_size}");
        Self {
            bin_size,
            bins: HashMap::new(),
            len: 0,
        }
    }

    #[inline]
    fn key(&self, p: Vec3) -> (i64, i64, i64) {
        (
            (p.x / self.bin_size).floor() as i64,
            (p.y / self.bin_size).floor() as i64,
            (p.z / self.bin_size).floor() as i64,
        )
    }

    /// Number of registered samples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no samples are registered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Register a vertex sample.
    pub fn insert(&mut self, cell_id: u64, vertex: u32, position: Vec3) {
        self.bins
            .entry(self.key(position))
            .or_default()
            .push(GridEntry {
                cell_id,
                vertex,
                position,
            });
        self.len += 1;
    }

    /// Register every vertex of a cell.
    pub fn insert_cell(&mut self, cell_id: u64, vertices: &[Vec3]) {
        for (i, &v) in vertices.iter().enumerate() {
            self.insert(cell_id, i as u32, v);
        }
    }

    /// Remove every sample owned by `cell_id` (linear in touched bins).
    pub fn remove_cell(&mut self, cell_id: u64) {
        for bin in self.bins.values_mut() {
            let before = bin.len();
            bin.retain(|e| e.cell_id != cell_id);
            self.len -= before - bin.len();
        }
        self.bins.retain(|_, v| !v.is_empty());
    }

    /// Drop all samples, keeping allocated bins for reuse.
    pub fn clear(&mut self) {
        for bin in self.bins.values_mut() {
            bin.clear();
        }
        self.len = 0;
    }

    /// Visit every sample within `radius` of `p` (excluding samples from
    /// `exclude_cell`, pass `u64::MAX` to include all).
    pub fn for_each_neighbor<F: FnMut(&GridEntry)>(
        &self,
        p: Vec3,
        radius: f64,
        exclude_cell: u64,
        mut visit: F,
    ) {
        let r2 = radius * radius;
        let lo = self.key(p - Vec3::splat(radius));
        let hi = self.key(p + Vec3::splat(radius));
        for bx in lo.0..=hi.0 {
            for by in lo.1..=hi.1 {
                for bz in lo.2..=hi.2 {
                    let Some(bin) = self.bins.get(&(bx, by, bz)) else {
                        continue;
                    };
                    for e in bin {
                        if e.cell_id != exclude_cell && e.position.distance_sq(p) <= r2 {
                            visit(e);
                        }
                    }
                }
            }
        }
    }

    /// Distinct cell IDs with at least one sample within `radius` of `p`.
    pub fn cells_near(&self, p: Vec3, radius: f64, exclude_cell: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.for_each_neighbor(p, radius, exclude_cell, |e| {
            if !out.contains(&e.cell_id) {
                out.push(e.cell_id);
            }
        });
        out.sort_unstable();
        out
    }

    /// Does any sample (other than `exclude_cell`'s) lie within `radius`?
    pub fn has_neighbor_within(&self, p: Vec3, radius: f64, exclude_cell: u64) -> bool {
        let mut found = false;
        self.for_each_neighbor(p, radius, exclude_cell, |_| found = true);
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_points_within_radius() {
        let mut g = UniformSubgrid::new(1.0);
        g.insert(1, 0, Vec3::new(0.0, 0.0, 0.0));
        g.insert(2, 0, Vec3::new(0.9, 0.0, 0.0));
        g.insert(3, 0, Vec3::new(3.0, 0.0, 0.0));
        let near = g.cells_near(Vec3::ZERO, 1.0, u64::MAX);
        assert_eq!(near, vec![1, 2]);
    }

    #[test]
    fn excludes_own_cell() {
        let mut g = UniformSubgrid::new(1.0);
        g.insert(5, 0, Vec3::ZERO);
        g.insert(6, 0, Vec3::new(0.1, 0.0, 0.0));
        assert_eq!(g.cells_near(Vec3::ZERO, 0.5, 5), vec![6]);
        assert!(g.has_neighbor_within(Vec3::ZERO, 0.5, 6));
        // Excluding cell 5 leaves only cell 6 at distance 0.1 — outside 0.05.
        assert!(!g.has_neighbor_within(Vec3::ZERO, 0.05, 5));
    }

    #[test]
    fn negative_coordinates_hash_correctly() {
        let mut g = UniformSubgrid::new(2.0);
        g.insert(1, 0, Vec3::new(-0.1, -0.1, -0.1));
        assert!(g.has_neighbor_within(Vec3::new(0.1, 0.1, 0.1), 1.0, u64::MAX));
        assert!(!g.has_neighbor_within(Vec3::new(5.0, 5.0, 5.0), 1.0, u64::MAX));
    }

    #[test]
    fn remove_cell_clears_its_samples() {
        let mut g = UniformSubgrid::new(1.0);
        g.insert_cell(9, &[Vec3::ZERO, Vec3::X, Vec3::Y]);
        g.insert(10, 0, Vec3::Z);
        assert_eq!(g.len(), 4);
        g.remove_cell(9);
        assert_eq!(g.len(), 1);
        assert!(!g.has_neighbor_within(Vec3::ZERO, 0.5, u64::MAX));
        assert!(g.has_neighbor_within(Vec3::Z, 0.5, u64::MAX));
    }

    #[test]
    fn search_spans_bin_boundaries() {
        let mut g = UniformSubgrid::new(1.0);
        // Two points in adjacent bins, close together across the boundary.
        g.insert(1, 0, Vec3::new(0.95, 0.5, 0.5));
        g.insert(2, 0, Vec3::new(1.05, 0.5, 0.5));
        assert_eq!(
            g.cells_near(Vec3::new(1.0, 0.5, 0.5), 0.2, u64::MAX),
            vec![1, 2]
        );
    }

    #[test]
    fn clear_retains_capacity_semantics() {
        let mut g = UniformSubgrid::new(1.0);
        g.insert_cell(1, &[Vec3::ZERO, Vec3::X]);
        g.clear();
        assert!(g.is_empty());
        g.insert(2, 0, Vec3::ZERO);
        assert_eq!(g.len(), 1);
    }
}
