//! Pre-defined RBC tiles (paper §2.4.2, Figure 3A).
//!
//! "A procedure is developed to randomly place a cube of the same size as a
//! free subregion, with a randomly selected centroid and orientation from a
//! pre-defined tile of RBCs with a specified density." A [`RbcTile`] is that
//! periodic box of undeformed RBC placements at a target hematocrit, built
//! by layered packing with random orientation jitter; [`RbcTile::sample_cube`]
//! draws a randomly shifted, randomly rotated cube from it.

use apr_mesh::{TriMesh, Vec3};
use rand::Rng;

/// A rigid placement of one undeformed RBC: position plus orientation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Cell centroid.
    pub center: Vec3,
    /// Rotation axis (unit).
    pub axis: Vec3,
    /// Rotation angle, radians.
    pub angle: f64,
}

impl Placement {
    /// Realize this placement by transforming a reference mesh's vertices.
    pub fn realize(&self, reference: &TriMesh) -> Vec<Vec3> {
        reference
            .vertices
            .iter()
            .map(|&v| v.rotate_about(self.axis, self.angle) + self.center)
            .collect()
    }
}

/// A periodic cubic tile of undeformed RBC placements at a set density.
#[derive(Debug, Clone)]
pub struct RbcTile {
    /// Cubic tile edge length.
    pub edge: f64,
    /// Cell placements with centroids in `[0, edge)³`.
    pub placements: Vec<Placement>,
    /// Volume of one undeformed RBC (same units³).
    pub cell_volume: f64,
}

impl RbcTile {
    /// Build a tile of edge `edge` targeting hematocrit `target_ht`, for
    /// RBCs of radius `rbc_radius` (max half-diameter), thickness
    /// `rbc_thickness` and volume `cell_volume`.
    ///
    /// Packing is layered: discs sit in staggered rows within layers of
    /// height slightly above the cell thickness, with per-cell random
    /// orientation jitter that shrinks as the target density rises.
    ///
    /// # Panics
    /// Panics if the requested hematocrit is unreachable for this geometry
    /// (> ~50% for discoid cells) or parameters are non-positive.
    pub fn build<R: Rng>(
        edge: f64,
        target_ht: f64,
        rbc_radius: f64,
        rbc_thickness: f64,
        cell_volume: f64,
        rng: &mut R,
    ) -> Self {
        assert!(edge > 0.0 && rbc_radius > 0.0 && rbc_thickness > 0.0 && cell_volume > 0.0);
        assert!(
            (0.0..=0.5).contains(&target_ht),
            "layered discoid packing supports Ht ≤ 50%, got {target_ht}"
        );
        let mut placements = Vec::new();
        if target_ht > 0.0 {
            // Layer height: cell thickness plus a safety margin.
            let h = rbc_thickness * 1.25;
            // In-plane pitch from Ht = V / (p²·h).
            let pitch = (cell_volume / (target_ht * h)).sqrt();
            assert!(
                pitch > 1.95 * rbc_radius * 0.9,
                "target hematocrit {target_ht} needs in-plane pitch {pitch} < cell diameter"
            );
            // Stretch pitch/height so rows tile the edge exactly — naive
            // flooring leaves uncovered bands and systematically undershoots
            // the target density on small tiles.
            let mut cols = (edge / pitch).round().max(1.0) as usize;
            while cols > 1 && edge / cols as f64 <= 1.95 * rbc_radius * 0.9 {
                cols -= 1;
            }
            let pitch = edge / cols as f64;
            let layers = (edge / h).floor().max(1.0) as usize;
            let h = edge / layers as f64;
            // Jitter scales with the free space at this density.
            let slack = (pitch - 2.0 * rbc_radius * 0.95).max(0.0);
            let tilt_max = (slack / rbc_radius).min(0.5);
            for lz in 0..layers {
                let z = (lz as f64 + 0.5) * h;
                let stagger = if lz % 2 == 0 { 0.0 } else { 0.5 * pitch };
                for iy in 0..cols {
                    let y = (iy as f64 + 0.5) * pitch;
                    for ix in 0..cols {
                        let x = ((ix as f64 + 0.5) * pitch + stagger) % edge;
                        let jitter = Vec3::new(
                            rng.gen_range(-0.5..0.5) * slack * 0.5,
                            rng.gen_range(-0.5..0.5) * slack * 0.5,
                            rng.gen_range(-0.5..0.5) * (h - rbc_thickness) * 0.4,
                        );
                        let axis = random_unit(rng);
                        let angle = rng.gen_range(-tilt_max..=tilt_max);
                        placements.push(Placement {
                            center: (Vec3::new(x, y, z) + jitter).max(Vec3::ZERO),
                            axis,
                            angle,
                        });
                    }
                }
            }
        }
        Self {
            edge,
            placements,
            cell_volume,
        }
    }

    /// Achieved hematocrit of the tile.
    pub fn hematocrit(&self) -> f64 {
        self.placements.len() as f64 * self.cell_volume / self.edge.powi(3)
    }

    /// Number of cells in the tile.
    pub fn cell_count(&self) -> usize {
        self.placements.len()
    }

    /// Sample a cube of edge `cube_edge` from the tile: a random periodic
    /// offset plus one of the axis-aligned cube rotations, as the paper's
    /// randomly-oriented subregion draw. Returned placements are relative to
    /// the cube's min corner, centroids within `[0, cube_edge)³`.
    ///
    /// # Panics
    /// Panics if the cube is larger than the tile.
    pub fn sample_cube<R: Rng>(&self, cube_edge: f64, rng: &mut R) -> Vec<Placement> {
        assert!(
            cube_edge <= self.edge,
            "sample cube {cube_edge} exceeds tile edge {}",
            self.edge
        );
        let offset = Vec3::new(
            rng.gen_range(0.0..self.edge),
            rng.gen_range(0.0..self.edge),
            rng.gen_range(0.0..self.edge),
        );
        // One of the 4 rotations about a random principal axis: keeps the
        // sampled cube axis-aligned while decorrelating draw orientation.
        let axis = [Vec3::X, Vec3::Y, Vec3::Z][rng.gen_range(0..3)];
        let quarter_turns = rng.gen_range(0..4);
        let angle = quarter_turns as f64 * std::f64::consts::FRAC_PI_2;
        let half = Vec3::splat(cube_edge / 2.0);

        let mut out = Vec::new();
        for p in &self.placements {
            // Periodic shift into tile coordinates relative to the offset.
            let mut c = p.center - offset;
            for a in 0..3 {
                c[a] = c[a].rem_euclid(self.edge);
            }
            if c.x < cube_edge && c.y < cube_edge && c.z < cube_edge {
                // Rotate about the cube center.
                let rotated = (c - half).rotate_about(axis, angle) + half;
                // Compose the cube rotation with the cell's own orientation.
                let cell_axis = p.axis.rotate_about(axis, angle);
                out.push(Placement {
                    center: rotated,
                    axis: cell_axis,
                    angle: p.angle,
                });
            }
        }
        out
    }
}

fn random_unit<R: Rng>(rng: &mut R) -> Vec3 {
    loop {
        let v = Vec3::new(
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
        );
        let n = v.norm();
        if n > 1e-3 && n <= 1.0 {
            return v / n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const R: f64 = 3.91;
    const T: f64 = 2.4;
    const V: f64 = 94.0;

    #[test]
    fn tile_achieves_target_hematocrit() {
        let mut rng = StdRng::seed_from_u64(1);
        for target in [0.1, 0.2, 0.3] {
            let tile = RbcTile::build(60.0, target, R, T, V, &mut rng);
            let ht = tile.hematocrit();
            assert!(
                (ht - target).abs() < 0.35 * target,
                "target {target}: achieved {ht}"
            );
        }
    }

    #[test]
    fn zero_hematocrit_is_empty() {
        let mut rng = StdRng::seed_from_u64(2);
        let tile = RbcTile::build(40.0, 0.0, R, T, V, &mut rng);
        assert_eq!(tile.cell_count(), 0);
    }

    #[test]
    fn placements_stay_inside_tile() {
        let mut rng = StdRng::seed_from_u64(3);
        let tile = RbcTile::build(50.0, 0.25, R, T, V, &mut rng);
        for p in &tile.placements {
            for a in 0..3 {
                assert!(
                    p.center[a] >= 0.0 && p.center[a] < tile.edge,
                    "{:?}",
                    p.center
                );
            }
        }
    }

    #[test]
    fn tile_cells_do_not_overlap_badly() {
        // Centroid spacing must stay above the cell thickness (discs can be
        // closer than a diameter when coplanar, but never than thickness).
        let mut rng = StdRng::seed_from_u64(4);
        let tile = RbcTile::build(50.0, 0.3, R, T, V, &mut rng);
        for (i, a) in tile.placements.iter().enumerate() {
            for b in tile.placements.iter().skip(i + 1) {
                let d = a.center.distance(b.center);
                assert!(d > T * 0.8, "centroids {d} apart");
            }
        }
    }

    #[test]
    fn sample_cube_is_subvolume_at_similar_density() {
        let mut rng = StdRng::seed_from_u64(5);
        let tile = RbcTile::build(60.0, 0.3, R, T, V, &mut rng);
        let mut counts = Vec::new();
        for _ in 0..20 {
            let cube = tile.sample_cube(20.0, &mut rng);
            for p in &cube {
                for a in 0..3 {
                    assert!(p.center[a] >= -1e-9 && p.center[a] <= 20.0 + 1e-9);
                }
            }
            counts.push(cube.len());
        }
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        let expected = tile.hematocrit() * 20.0f64.powi(3) / V;
        assert!(
            (mean - expected).abs() < 0.5 * expected,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn realize_rotates_and_translates() {
        let mesh = apr_mesh::biconcave_rbc_mesh(1, R);
        let p = Placement {
            center: Vec3::new(10.0, 0.0, 0.0),
            axis: Vec3::Y,
            angle: std::f64::consts::FRAC_PI_2,
        };
        let verts = p.realize(&mesh);
        let centroid: Vec3 = verts.iter().copied().sum::<Vec3>() / verts.len() as f64;
        assert!((centroid - p.center).norm() < 1e-9);
        // After a 90° rotation about y, the disc plane normal (z) maps to x:
        // extent in x should now be the thin direction.
        let (lo, hi) = verts.iter().fold(
            (Vec3::splat(f64::MAX), Vec3::splat(f64::MIN)),
            |(lo, hi), &v| (lo.min(v), hi.max(v)),
        );
        assert!(hi.x - lo.x < hi.y - lo.y);
    }

    #[test]
    #[should_panic(expected = "Ht ≤ 50%")]
    fn absurd_density_is_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = RbcTile::build(50.0, 0.8, R, T, V, &mut rng);
    }
}
