//! Pooled cell storage (paper §2.4.5, "Cell Memory Management").
//!
//! "We allocated all the necessary memory for cells, with additional space
//! for other cells, at the beginning of the simulation" — cells continuously
//! enter and leave the window and migrate between tasks, so per-event heap
//! traffic would dominate. [`CellPool`] keeps every cell slot alive: removal
//! marks the slot free and pushes it onto a free list; insertion reuses a
//! slot and overwrites its buffers in place (the paper's buffer shifting).

use crate::cell::{Cell, CellId, CellKind};
use apr_membrane::Membrane;
use apr_mesh::Vec3;
use std::sync::Arc;

/// Slot index inside a [`CellPool`] (invalidated by removal).
pub type SlotIndex = usize;

/// Cell slots per exec chunk in the parallel helpers. Fixed (never derived
/// from the thread count) so chunk layout — and with it floating-point
/// reduction order — is identical for any `APR_THREADS`.
const SLOT_CHUNK: usize = 16;

/// Fixed-capacity pool of live cells with slot reuse and stable global IDs.
#[derive(Debug, Clone)]
pub struct CellPool {
    slots: Vec<Option<Cell>>,
    free: Vec<SlotIndex>,
    next_id: CellId,
    peak_live: usize,
    total_inserted: u64,
    total_removed: u64,
}

impl CellPool {
    /// New pool with `capacity` preallocated slots.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            slots: (0..capacity).map(|_| None).collect(),
            free: (0..capacity).rev().collect(),
            next_id: 0,
            peak_live: 0,
            total_inserted: 0,
            total_removed: 0,
        }
    }

    /// Number of live cells.
    pub fn live_count(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Highest simultaneous live count observed.
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Lifetime insertion count.
    pub fn total_inserted(&self) -> u64 {
        self.total_inserted
    }

    /// Lifetime removal count.
    pub fn total_removed(&self) -> u64 {
        self.total_removed
    }

    /// Reserve and return the next global cell ID without inserting.
    pub fn allocate_id(&mut self) -> CellId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Insert a cell built from explicit shape vertices; returns
    /// `(slot, id)`. Grows the pool (doubling) if no slot is free — growth
    /// is amortized and logged via `capacity()` so sizing can be tuned.
    pub fn insert_shape(
        &mut self,
        kind: CellKind,
        membrane: Arc<Membrane>,
        vertices: Vec<Vec3>,
    ) -> (SlotIndex, CellId) {
        let id = self.allocate_id();
        let cell = Cell::with_shape(id, kind, membrane, vertices);
        let slot = self.claim_slot();
        self.slots[slot] = Some(cell);
        self.total_inserted += 1;
        self.peak_live = self.peak_live.max(self.live_count());
        (slot, id)
    }

    /// Insert an existing cell object (e.g. a deep copy made during a window
    /// move, paper §2.4.3), assigning it a fresh ID.
    pub fn insert_cell(&mut self, mut cell: Cell) -> (SlotIndex, CellId) {
        let id = self.allocate_id();
        cell.id = id;
        let slot = self.claim_slot();
        self.slots[slot] = Some(cell);
        self.total_inserted += 1;
        self.peak_live = self.peak_live.max(self.live_count());
        (slot, id)
    }

    fn claim_slot(&mut self) -> SlotIndex {
        match self.free.pop() {
            Some(slot) => slot,
            None => {
                let old = self.slots.len();
                let new_cap = (old * 2).max(8);
                self.slots.resize_with(new_cap, || None);
                self.free.extend((old + 1..new_cap).rev());
                old
            }
        }
    }

    /// Remove the cell in `slot`, freeing it for reuse. Returns the cell.
    ///
    /// # Panics
    /// Panics if the slot is already empty.
    pub fn remove(&mut self, slot: SlotIndex) -> Cell {
        let cell = self.slots[slot].take().expect("slot already empty");
        self.free.push(slot);
        self.total_removed += 1;
        cell
    }

    /// Remove every live cell for which `predicate` returns true; returns
    /// the removed cells.
    pub fn remove_where<F: FnMut(&Cell) -> bool>(&mut self, mut predicate: F) -> Vec<Cell> {
        let mut removed = Vec::new();
        for slot in 0..self.slots.len() {
            let matches = self.slots[slot].as_ref().is_some_and(&mut predicate);
            if matches {
                removed.push(self.remove(slot));
            }
        }
        removed
    }

    /// Borrow the cell in `slot` if live.
    pub fn get(&self, slot: SlotIndex) -> Option<&Cell> {
        self.slots.get(slot).and_then(|s| s.as_ref())
    }

    /// Mutably borrow the cell in `slot` if live.
    pub fn get_mut(&mut self, slot: SlotIndex) -> Option<&mut Cell> {
        self.slots.get_mut(slot).and_then(|s| s.as_mut())
    }

    /// Find a live cell by global ID (linear scan).
    pub fn find_by_id(&self, id: CellId) -> Option<&Cell> {
        self.iter().find(|c| c.id == id)
    }

    /// Iterate over live cells.
    pub fn iter(&self) -> impl Iterator<Item = &Cell> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    /// Iterate mutably over live cells.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Cell> {
        self.slots.iter_mut().filter_map(|s| s.as_mut())
    }

    /// Apply `f` to every live cell on the exec pool — membrane force
    /// evaluation across hundreds of cells is the per-substep hot loop.
    /// Each cell is written by exactly one lane, so the result is
    /// independent of the thread count.
    pub fn par_for_each_mut(&mut self, f: impl Fn(&mut Cell) + Sync) {
        apr_exec::current().par_for_chunks_mut(&mut self.slots, SLOT_CHUNK, |_, part| {
            for slot in part {
                if let Some(cell) = slot.as_mut() {
                    f(cell);
                }
            }
        });
    }

    /// Map every live cell through `f` and sum the results: per-chunk
    /// partial sums run in slot order, combined in a fixed-shape ordered
    /// reduction on the caller — deterministic for any thread count.
    pub fn par_map_sum(&mut self, f: impl Fn(&mut Cell) -> f64 + Sync) -> f64 {
        let view = apr_exec::UnsafeSlice::new(&mut self.slots);
        apr_exec::current()
            .par_map_reduce(
                view.len(),
                SLOT_CHUNK,
                |_, range| {
                    // SAFETY: chunk ranges are disjoint.
                    let part = unsafe { view.slice_mut(range.start, range.len()) };
                    let mut acc = 0.0;
                    for slot in part {
                        if let Some(cell) = slot.as_mut() {
                            acc += f(cell);
                        }
                    }
                    acc
                },
                |a, b| a + b,
            )
            .unwrap_or(0.0)
    }

    /// Iterate over `(slot, cell)` pairs of live cells.
    pub fn iter_slots(&self) -> impl Iterator<Item = (SlotIndex, &Cell)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|c| (i, c)))
    }

    /// Sum of live-cell volumes (for hematocrit accounting).
    pub fn total_cell_volume(&self) -> f64 {
        self.iter().map(|c| c.volume()).sum()
    }

    // --- checkpoint support -------------------------------------------------
    //
    // The free list is a stack: its exact order decides which slot the next
    // insertion lands in, which decides cell iteration order, which decides
    // floating-point summation order in force spreading. A bit-identical
    // resume therefore has to restore the free list verbatim, not merely a
    // set-equivalent one.

    /// The free-slot stack, top last (checkpoint serialization).
    pub fn free_slots(&self) -> &[SlotIndex] {
        &self.free
    }

    /// Next global ID to be assigned (checkpoint serialization).
    pub fn next_id(&self) -> CellId {
        self.next_id
    }

    /// Rebuild a pool from checkpointed layout: slots (dead ones `None`),
    /// the free stack in its exact saved order, and all counters.
    ///
    /// # Panics
    /// Panics if the free list is inconsistent with the slot occupancy or
    /// `next_id` does not exceed every live ID — a corrupted layout must
    /// not produce a silently wrong pool.
    pub fn from_raw_parts(
        slots: Vec<Option<Cell>>,
        free: Vec<SlotIndex>,
        next_id: CellId,
        peak_live: usize,
        total_inserted: u64,
        total_removed: u64,
    ) -> Self {
        let mut seen = vec![false; slots.len()];
        for &slot in &free {
            assert!(slot < slots.len(), "free slot {slot} out of range");
            assert!(slots[slot].is_none(), "free slot {slot} is occupied");
            assert!(!seen[slot], "free slot {slot} listed twice");
            seen[slot] = true;
        }
        let empty = slots.iter().filter(|s| s.is_none()).count();
        assert_eq!(
            free.len(),
            empty,
            "free list does not cover every empty slot"
        );
        for cell in slots.iter().flatten() {
            assert!(
                cell.id < next_id,
                "live id {} >= next_id {next_id}",
                cell.id
            );
        }
        Self {
            slots,
            free,
            next_id,
            peak_live,
            total_inserted,
            total_removed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apr_membrane::{MembraneMaterial, ReferenceState};
    use apr_mesh::icosphere;

    fn membrane() -> (Arc<Membrane>, Vec<Vec3>) {
        let mesh = icosphere(1, 1.0);
        let re = Arc::new(ReferenceState::build(&mesh));
        (
            Arc::new(Membrane::new(re, MembraneMaterial::rbc(1.0, 0.01))),
            mesh.vertices,
        )
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let (mem, verts) = membrane();
        let mut pool = CellPool::with_capacity(4);
        let (_, id0) = pool.insert_shape(CellKind::Rbc, Arc::clone(&mem), verts.clone());
        let (s1, id1) = pool.insert_shape(CellKind::Rbc, Arc::clone(&mem), verts.clone());
        pool.remove(s1);
        let (_, id2) = pool.insert_shape(CellKind::Rbc, mem, verts);
        assert!(id0 < id1 && id1 < id2, "IDs must never be reused");
    }

    #[test]
    fn slots_are_reused() {
        let (mem, verts) = membrane();
        let mut pool = CellPool::with_capacity(2);
        let (s0, _) = pool.insert_shape(CellKind::Rbc, Arc::clone(&mem), verts.clone());
        pool.remove(s0);
        let (s1, _) = pool.insert_shape(CellKind::Rbc, mem, verts);
        assert_eq!(s0, s1, "freed slot must be reused before growing");
        assert_eq!(pool.capacity(), 2);
    }

    #[test]
    fn pool_grows_when_exhausted() {
        let (mem, verts) = membrane();
        let mut pool = CellPool::with_capacity(1);
        pool.insert_shape(CellKind::Rbc, Arc::clone(&mem), verts.clone());
        pool.insert_shape(CellKind::Rbc, Arc::clone(&mem), verts.clone());
        pool.insert_shape(CellKind::Rbc, mem, verts);
        assert_eq!(pool.live_count(), 3);
        assert!(pool.capacity() >= 3);
    }

    #[test]
    fn remove_where_filters_by_predicate() {
        let (mem, verts) = membrane();
        let mut pool = CellPool::with_capacity(8);
        for i in 0..5 {
            let (slot, _) = pool.insert_shape(CellKind::Rbc, Arc::clone(&mem), verts.clone());
            pool.get_mut(slot)
                .unwrap()
                .translate(Vec3::new(i as f64 * 10.0, 0.0, 0.0));
        }
        let removed = pool.remove_where(|c| c.centroid().x > 25.0);
        assert_eq!(removed.len(), 2);
        assert_eq!(pool.live_count(), 3);
        assert_eq!(pool.total_removed(), 2);
    }

    #[test]
    fn counters_track_churn() {
        let (mem, verts) = membrane();
        let mut pool = CellPool::with_capacity(4);
        let (s0, _) = pool.insert_shape(CellKind::Rbc, Arc::clone(&mem), verts.clone());
        let (_, _) = pool.insert_shape(CellKind::Ctc, Arc::clone(&mem), verts.clone());
        assert_eq!(pool.peak_live(), 2);
        pool.remove(s0);
        pool.insert_shape(CellKind::Rbc, mem, verts);
        assert_eq!(pool.total_inserted(), 3);
        assert_eq!(pool.total_removed(), 1);
        assert_eq!(pool.peak_live(), 2);
    }

    #[test]
    fn find_by_id_locates_cells() {
        let (mem, verts) = membrane();
        let mut pool = CellPool::with_capacity(4);
        let (_, id) = pool.insert_shape(CellKind::Ctc, mem, verts);
        assert!(pool.find_by_id(id).is_some());
        assert!(pool.find_by_id(id + 1).is_none());
    }

    #[test]
    fn raw_parts_round_trip_preserves_layout() {
        let (mem, verts) = membrane();
        let mut pool = CellPool::with_capacity(4);
        let (s0, _) = pool.insert_shape(CellKind::Rbc, Arc::clone(&mem), verts.clone());
        let (_, _) = pool.insert_shape(CellKind::Ctc, Arc::clone(&mem), verts.clone());
        pool.remove(s0); // free list now ends with s0: next insert reuses it
        let slots: Vec<Option<Cell>> = (0..pool.capacity()).map(|s| pool.get(s).cloned()).collect();
        let mut rebuilt = CellPool::from_raw_parts(
            slots,
            pool.free_slots().to_vec(),
            pool.next_id(),
            pool.peak_live(),
            pool.total_inserted(),
            pool.total_removed(),
        );
        assert_eq!(rebuilt.live_count(), pool.live_count());
        assert_eq!(rebuilt.next_id(), pool.next_id());
        assert_eq!(rebuilt.total_removed(), 1);
        // The next insertion must claim the same slot and ID as the
        // original pool would.
        let (slot_a, id_a) = pool.insert_shape(CellKind::Rbc, Arc::clone(&mem), verts.clone());
        let (slot_b, id_b) = rebuilt.insert_shape(CellKind::Rbc, mem, verts);
        assert_eq!((slot_a, id_a), (slot_b, id_b));
    }

    #[test]
    #[should_panic(expected = "free list does not cover")]
    fn inconsistent_raw_parts_rejected() {
        let pool = CellPool::with_capacity(2);
        let slots: Vec<Option<Cell>> = (0..2).map(|_| None).collect();
        // Claims only one free slot for two empty slots.
        let _ = CellPool::from_raw_parts(slots, vec![0], pool.next_id(), 0, 0, 0);
    }

    #[test]
    #[should_panic(expected = "slot already empty")]
    fn double_remove_panics() {
        let (mem, verts) = membrane();
        let mut pool = CellPool::with_capacity(2);
        let (s, _) = pool.insert_shape(CellKind::Rbc, mem, verts);
        pool.remove(s);
        pool.remove(s);
    }
}
