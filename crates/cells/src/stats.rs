//! Suspension statistics: the micro-structural observables that tell a
//! physiologically deformed, equilibrated suspension (paper §2.4.2's goal)
//! from freshly dropped-in undeformed cells.

use crate::cell::CellKind;
use crate::pool::CellPool;
use apr_mesh::Vec3;

/// Summary of one suspension snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuspensionStats {
    /// Live RBC count.
    pub rbc_count: usize,
    /// Mean nearest-neighbour centroid distance.
    pub mean_nn_distance: f64,
    /// Minimum nearest-neighbour centroid distance.
    pub min_nn_distance: f64,
    /// Mean deformation index (1 − V/V₀-equivalent sphericity proxy):
    /// `1 − (36π V²)^{1/3} / A` — 0 for a sphere, larger when deformed.
    pub mean_deformation: f64,
    /// Orientation order parameter `⟨(3cos²θ − 1)/2⟩` of RBC symmetry axes
    /// against `axis` — 1 when all discs align, 0 when isotropic.
    pub orientation_order: f64,
}

/// Principal (shortest-extent) axis of a cell — for a discocyte, the disc
/// normal. Estimated from the covariance of vertex positions.
pub fn cell_axis(vertices: &[Vec3]) -> Vec3 {
    let n = vertices.len() as f64;
    let centroid: Vec3 = vertices.iter().copied().sum::<Vec3>() / n;
    // Covariance matrix.
    let mut c = [[0.0f64; 3]; 3];
    for v in vertices {
        let d = *v - centroid;
        let da = d.to_array();
        for i in 0..3 {
            for j in 0..3 {
                c[i][j] += da[i] * da[j];
            }
        }
    }
    // Smallest-eigenvalue direction by inverse power iteration on (C + εI).
    // For robustness use power iteration on (tr(C)·I − C), whose dominant
    // eigenvector is C's smallest.
    let tr = c[0][0] + c[1][1] + c[2][2];
    let m = [
        [tr - c[0][0], -c[0][1], -c[0][2]],
        [-c[1][0], tr - c[1][1], -c[1][2]],
        [-c[2][0], -c[2][1], tr - c[2][2]],
    ];
    let mut v = Vec3::new(1.0, 0.7, 0.3);
    for _ in 0..50 {
        let w = Vec3::new(
            m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z,
        );
        if let Some(u) = w.try_normalize(1e-30) {
            v = u;
        } else {
            break;
        }
    }
    v
}

/// Deformation index of one cell: `1 − (36π V²)^{1/3}/A` (0 for a sphere).
pub fn deformation_index(volume: f64, area: f64) -> f64 {
    if area <= 0.0 {
        return 0.0;
    }
    1.0 - (36.0 * std::f64::consts::PI * volume * volume).powf(1.0 / 3.0) / area
}

/// Compute suspension statistics for all RBCs in the pool.
pub fn suspension_stats(pool: &CellPool, axis: Vec3) -> SuspensionStats {
    let axis = axis.normalized();
    let rbcs: Vec<_> = pool.iter().filter(|c| c.kind == CellKind::Rbc).collect();
    let n = rbcs.len();
    if n == 0 {
        return SuspensionStats {
            rbc_count: 0,
            mean_nn_distance: 0.0,
            min_nn_distance: 0.0,
            mean_deformation: 0.0,
            orientation_order: 0.0,
        };
    }
    let centroids: Vec<Vec3> = rbcs.iter().map(|c| c.centroid()).collect();
    let mut nn_sum = 0.0;
    let mut nn_min = f64::MAX;
    for (i, &ci) in centroids.iter().enumerate() {
        let mut best = f64::MAX;
        for (j, &cj) in centroids.iter().enumerate() {
            if i != j {
                best = best.min(ci.distance(cj));
            }
        }
        if best < f64::MAX {
            nn_sum += best;
            nn_min = nn_min.min(best);
        }
    }
    let mut deform_sum = 0.0;
    let mut order_sum = 0.0;
    for c in &rbcs {
        deform_sum += deformation_index(c.volume().abs(), c.surface_area());
        let a = cell_axis(&c.vertices);
        let cos = a.dot(axis).abs();
        order_sum += (3.0 * cos * cos - 1.0) / 2.0;
    }
    SuspensionStats {
        rbc_count: n,
        mean_nn_distance: if n > 1 { nn_sum / n as f64 } else { 0.0 },
        min_nn_distance: if n > 1 { nn_min } else { 0.0 },
        mean_deformation: deform_sum / n as f64,
        orientation_order: order_sum / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;
    use apr_membrane::{Membrane, MembraneMaterial, ReferenceState};
    use apr_mesh::{biconcave_rbc_mesh, icosphere};
    use std::sync::Arc;

    #[test]
    fn sphere_has_zero_deformation_index() {
        let m = icosphere(3, 1.0);
        let d = deformation_index(m.enclosed_volume(), m.surface_area());
        assert!(d.abs() < 0.01, "d = {d}");
    }

    #[test]
    fn biconcave_cell_is_measurably_deformed() {
        let m = biconcave_rbc_mesh(2, 1.0);
        let d = deformation_index(m.enclosed_volume(), m.surface_area());
        assert!(d > 0.15, "d = {d}");
    }

    #[test]
    fn cell_axis_of_disc_is_its_normal() {
        let m = biconcave_rbc_mesh(2, 1.0); // disc normal along z
        let a = cell_axis(&m.vertices);
        assert!(a.z.abs() > 0.99, "axis = {a:?}");
        // Rotate the disc: axis follows.
        let mut rotated = m.clone();
        rotated.rotate(apr_mesh::Vec3::Y, std::f64::consts::FRAC_PI_2);
        let a = cell_axis(&rotated.vertices);
        assert!(a.x.abs() > 0.99, "axis = {a:?}");
    }

    #[test]
    fn aligned_suspension_has_high_order_parameter() {
        let mesh = biconcave_rbc_mesh(1, 1.0);
        let re = Arc::new(ReferenceState::build(&mesh));
        let mem = Arc::new(Membrane::new(re, MembraneMaterial::rbc(1.0, 0.01)));
        let mut pool = CellPool::with_capacity(16);
        for i in 0..5 {
            let verts = mesh
                .vertices
                .iter()
                .map(|&v| v + apr_mesh::Vec3::new(i as f64 * 4.0, 0.0, 0.0))
                .collect();
            pool.insert_shape(CellKind::Rbc, Arc::clone(&mem), verts);
        }
        let stats = suspension_stats(&pool, apr_mesh::Vec3::Z);
        assert_eq!(stats.rbc_count, 5);
        assert!(stats.orientation_order > 0.95, "{stats:?}");
        assert!((stats.mean_nn_distance - 4.0).abs() < 1e-9);
        assert!(stats.mean_deformation > 0.15);
    }

    #[test]
    fn empty_pool_is_safe() {
        let pool = CellPool::with_capacity(4);
        let stats = suspension_stats(&pool, apr_mesh::Vec3::Z);
        assert_eq!(stats.rbc_count, 0);
    }
}
