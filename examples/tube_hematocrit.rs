//! Hematocrit maintenance in tube flow — a scaled-down run of the paper's
//! Figure 5 experiment.
//!
//! A cell-resolved APR window sits at the centre of a force-driven tube.
//! The window is packed with RBCs at a target hematocrit; as the flow
//! carries cells out, insertion subregions repopulate from the RBC tile.
//! The run prints the hematocrit time series and compares the window's
//! effective viscosity against the Pries in-vitro correlation (Eq. 9).
//!
//! ```sh
//! cargo run --release --example tube_hematocrit
//! ```

use apr_suite::cells::RbcTile;
use apr_suite::core::{AprEngine, HematocritSeries};
use apr_suite::coupling::fine_tau;
use apr_suite::hemo::pries::{discharge_from_tube_hematocrit, relative_apparent_viscosity};
use apr_suite::lattice::{force_driven_tube, Lattice};
use apr_suite::membrane::{Membrane, MembraneMaterial, ReferenceState};
use apr_suite::mesh::biconcave_rbc_mesh;
use apr_suite::window::{HematocritController, InsertionContext};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let target_ht = 0.15;
    let n = 3usize;
    let lambda = 0.3; // plasma/whole-blood
    let g = 6e-5;
    let tau_c = 0.9;

    // Coarse tube: radius 9 coarse cells.
    let (nx, ny, nz) = (21usize, 21usize, 48usize);
    let coarse = force_driven_tube(nx, ny, nz, tau_c, 9.0, g);

    // Window: 8×8×8 coarse cells refined ×3.
    let span = 8usize;
    let dim = span * n + 1;
    let mut fine = Lattice::new(dim, dim, dim, fine_tau(tau_c, n, lambda));
    fine.body_force = [0.0, 0.0, g / n as f64];
    let origin = [6.0, 6.0, 16.0];

    // Window anatomy and contact parameters take the builder defaults
    // (proper/onramp/insertion at 22/12/14% of the window span; RBC contact
    // cutoff 1.2, strength 5e-4).
    let mut engine = AprEngine::builder(coarse, fine, origin, n, lambda).build();

    // RBC machinery: radius 3 fine units.
    let rbc_mesh = biconcave_rbc_mesh(1, 3.0);
    let volume = rbc_mesh.enclosed_volume();
    let reference = Arc::new(ReferenceState::build(&rbc_mesh));
    let membrane = Arc::new(Membrane::new(reference, MembraneMaterial::rbc(6e-4, 2e-5)));
    let mut rng = StdRng::seed_from_u64(2024);
    let tile = RbcTile::build(40.0, target_ht, 3.0, 1.8, volume, &mut rng);
    engine.insertion = Some(InsertionContext {
        rbc_mesh,
        rbc_membrane: membrane,
        tile,
        min_gap: 0.8,
    });
    engine.controller = Some(HematocritController::new(target_ht, 0.85, volume));
    engine.maintenance_interval = 10;

    let packed = engine.populate_window();
    println!("Packed {packed} RBCs into the window (target Ht = {target_ht})");
    println!("\nstep   window_Ht   live_cells   inserted_total");

    let mut series = HematocritSeries::default();
    for step in 0..800u64 {
        engine.step();
        if step % 40 == 0 {
            let ht = engine.window_hematocrit().unwrap();
            series.record(step, ht);
            println!(
                "{step:>4}   {ht:>8.4}   {:>10}   {:>13}",
                engine.pool.live_count(),
                engine.pool.total_inserted()
            );
        }
    }

    let steady = series.steady_mean(0.4).expect("series has samples");
    println!("\nSteady window hematocrit: {steady:.4} (target {target_ht})");
    println!(
        "Fluctuation (repopulation ripple): ±{:.4}",
        series.steady_fluctuation(0.4).expect("series has samples") / 2.0
    );

    // Figure 5C comparison: the Pries correlation for this Ht in a 200 µm
    // tube (the paper's configuration), relative to plasma viscosity.
    let ht_d = discharge_from_tube_hematocrit(200.0, steady);
    let mu_rel = relative_apparent_viscosity(200.0, ht_d);
    println!(
        "\nPries correlation at Ht = {steady:.3} in a 200 µm tube: μ_rel = {mu_rel:.3}×plasma"
    );
    println!(
        "Cell churn: {} inserted / {} removed across {} steps",
        engine.pool.total_inserted(),
        engine.pool.total_removed(),
        engine.steps()
    );
}
