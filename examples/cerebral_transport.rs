//! CTC transport through a synthetic cerebral vasculature — the Figure 9
//! scenario on laptop resources.
//!
//! A Murray's-law arterial tree stands in for the paper's patient-derived
//! cerebral geometry (see DESIGN.md substitutions). The bulk flow fills the
//! tree; the cell-resolved window rides the main branch with the CTC. The
//! program reports the transit distance and the APR-vs-eFSI memory budget
//! of Table 3 for this domain.
//!
//! ```sh
//! cargo run --release --example cerebral_transport
//! # long campaigns: checkpoint every 500 steps, resume after a crash
//! cargo run --release --example cerebral_transport -- --checkpoint-every 500
//! cargo run --release --example cerebral_transport -- --resume cerebral.ckpt
//! # observability: Chrome trace (open in Perfetto) + per-step metrics JSONL
//! cargo run --release --example cerebral_transport -- \
//!     --trace-out trace.json --metrics-out metrics.jsonl
//! # worker threads (overrides APR_THREADS; results are bit-identical
//! # for any thread count)
//! cargo run --release --example cerebral_transport -- --threads 4
//! ```

use apr_suite::core::{restore_engine_from_file, save_engine_to_file, AprEngine};
use apr_suite::coupling::fine_tau;
use apr_suite::geom::{open_tree_flow, voxelize, TreeParams, VascularTree};
use apr_suite::lattice::{Lattice, NodeClass};
use apr_suite::membrane::{Membrane, MembraneMaterial, ReferenceState};
use apr_suite::mesh::{icosphere, Vec3};
use apr_suite::perfmodel::MemoryEstimate;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Checkpointing and observability knobs from the command line; everything
/// else in this scenario is fixed so a resumed run rebuilds the identical
/// recipe.
struct CkptOpts {
    every: Option<u64>,
    resume: Option<std::path::PathBuf>,
    path: std::path::PathBuf,
    trace_out: Option<std::path::PathBuf>,
    metrics_out: Option<std::path::PathBuf>,
    max_steps: u64,
    threads: Option<usize>,
}

fn parse_opts() -> CkptOpts {
    let mut opts = CkptOpts {
        every: None,
        resume: None,
        path: "cerebral.ckpt".into(),
        trace_out: None,
        metrics_out: None,
        max_steps: 3000,
        threads: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--checkpoint-every" => {
                let v = args.next().expect("--checkpoint-every needs a step count");
                opts.every = Some(v.parse().expect("invalid step count"));
            }
            "--checkpoint-path" => {
                opts.path = args.next().expect("--checkpoint-path needs a path").into();
            }
            "--resume" => {
                opts.resume = Some(args.next().expect("--resume needs a path").into());
            }
            "--trace-out" => {
                opts.trace_out = Some(args.next().expect("--trace-out needs a path").into());
            }
            "--metrics-out" => {
                opts.metrics_out = Some(args.next().expect("--metrics-out needs a path").into());
            }
            "--max-steps" => {
                let v = args.next().expect("--max-steps needs a step count");
                opts.max_steps = v.parse().expect("invalid step count");
            }
            "--threads" => {
                let v = args.next().expect("--threads needs a worker count");
                opts.threads = Some(v.parse().expect("invalid worker count"));
            }
            other => panic!("unknown argument {other}"),
        }
    }
    opts
}

fn main() {
    let opts = parse_opts();
    if let Some(threads) = opts.threads {
        apr_suite::exec::set_threads(threads);
    }
    println!(
        "Execution: {} worker thread(s) (set with --threads or APR_THREADS)",
        apr_suite::exec::current_threads()
    );
    let tracing = opts.trace_out.is_some() || opts.metrics_out.is_some();
    if tracing {
        apr_suite::telemetry::enable();
    }
    // Synthetic "cerebral" tree: root radius 7 coarse cells, 3 levels.
    let mut rng = StdRng::seed_from_u64(7);
    let params = TreeParams {
        root_radius: 7.0,
        root_length: 60.0,
        levels: 3,
        branch_angle: 0.45,
        asymmetry: 0.6,
        jitter: 0.05,
    };
    let tree = VascularTree::grow(&params, Vec3::new(30.0, 30.0, 2.0), Vec3::Z, &mut rng);
    let sdf = tree.sdf();
    let (lo, hi) = tree.bounding_box();
    println!(
        "Synthetic cerebral tree: {} segments, {:.0} lattice-units of centreline, bbox {:.0}×{:.0}×{:.0}",
        tree.segments.len(),
        tree.total_length(),
        hi.x - lo.x,
        hi.y - lo.y,
        hi.z - lo.z,
    );

    // Coarse lattice over the tree, force-driven along the root axis.
    let tau_c = 0.9;
    let (nx, ny, nz) = (60usize, 60usize, 150usize);
    let mut coarse = Lattice::new(nx, ny, nz, tau_c);
    voxelize(&mut coarse, &sdf, Vec3::ZERO, 1.0);
    // A sealed tree carries no steady flow under a body force; open it with
    // a root inlet and leaf outlets instead.
    let ports = open_tree_flow(&mut coarse, &tree, Vec3::ZERO, 1.0, 0.02);
    println!(
        "Flow ports: {} inlet nodes, {} outlet nodes across {} leaves",
        ports.inlet_nodes, ports.outlet_nodes, ports.outlets
    );
    println!(
        "Bulk lattice: {}×{}×{} nodes, {} in the lumen",
        nx,
        ny,
        nz,
        coarse.fluid_node_count()
    );

    // Window on the root segment.
    let n = 3usize;
    let lambda = 0.3;
    let span = 8usize;
    let dim = span * n + 1;
    let fine = Lattice::new(dim, dim, dim, fine_tau(tau_c, n, lambda));
    let path = tree.main_path();
    let start = VascularTree::sample_path(&path, 0.12);
    let origin = [
        (start.x - span as f64 / 2.0).round(),
        (start.y - span as f64 / 2.0).round(),
        (start.z - span as f64 / 2.0).round(),
    ];

    let mut engine = AprEngine::builder(coarse, fine, origin, n, lambda).build();
    let tree_sdf = tree.sdf();
    engine.set_fine_geometry(Box::new(move |fine, origin| {
        for node in 0..fine.node_count() {
            fine.set_flag(node, NodeClass::Fluid);
        }
        let o = Vec3::new(origin[0], origin[1], origin[2]);
        voxelize(fine, &tree_sdf, o, 1.0 / 3.0);
    }));

    // The CTC.
    let ctc_mesh = icosphere(2, 3.0);
    let reference = Arc::new(ReferenceState::build(&ctc_mesh));
    let membrane = Arc::new(Membrane::new(reference, MembraneMaterial::ctc(4e-3, 2e-4)));
    let center = engine.anatomy.center;
    let verts: Vec<Vec3> = ctc_mesh.vertices.iter().map(|&v| v + center).collect();
    engine.add_ctc(Arc::clone(&membrane), verts);

    if let Some(resume) = &opts.resume {
        restore_engine_from_file(&mut engine, resume, Some(&membrane))
            .unwrap_or_else(|e| panic!("cannot resume from {}: {e}", resume.display()));
        println!(
            "Resumed from {} at step {} ({} window moves so far)",
            resume.display(),
            engine.steps(),
            engine.window_moves()
        );
    }

    println!("\nstep    world_z   path_len   window_moves");
    let first = engine.steps();
    for step in first..first + opts.max_steps {
        engine.step();
        if tracing {
            apr_suite::telemetry::sample_metrics(engine.steps());
        }
        if let Some(every) = opts.every {
            if engine.steps().is_multiple_of(every) {
                save_engine_to_file(&engine, &opts.path)
                    .unwrap_or_else(|e| panic!("checkpoint failed: {e}"));
                println!(
                    "checkpoint -> {} (step {})",
                    opts.path.display(),
                    engine.steps()
                );
            }
        }
        if step % 250 == 0 {
            if let Some(w) = engine.tracker.current() {
                println!(
                    "{step:>5}   {:>7.2}   {:>8.2}   {:>6}",
                    w.z,
                    engine.tracker.path_length(),
                    engine.window_moves()
                );
            }
        }
        if engine.window_moves() >= 4 {
            break;
        }
    }
    // A campaign can end between periodic saves (or before the first one);
    // leave a final checkpoint so the run is always resumable.
    if opts.every.is_some() {
        save_engine_to_file(&engine, &opts.path)
            .unwrap_or_else(|e| panic!("checkpoint failed: {e}"));
        println!(
            "checkpoint -> {} (step {})",
            opts.path.display(),
            engine.steps()
        );
    }
    println!(
        "\nCTC travelled {:.1} coarse cells along the tree with {} window moves.",
        engine.tracker.net_displacement(),
        engine.window_moves()
    );

    // Table 3-style memory report for this domain at the paper's spacings.
    // Treat one coarse cell as 15 µm (the paper's bulk resolution).
    let lumen_um3 = tree.lumen_volume() * 15.0f64.powi(3);
    let apr_window = MemoryEstimate::from_volume(0.75, (span as f64 * 15.0).powi(3), 0.35);
    let apr_bulk = MemoryEstimate::from_volume(15.0, lumen_um3, 0.0);
    let efsi = MemoryEstimate::from_volume(0.75, lumen_um3, 0.35);
    println!("\nMemory budget at paper resolutions (0.75 µm window / 15 µm bulk):");
    println!(
        "  APR window: {:>10.2} GB   APR bulk: {:>8.2} GB   eFSI: {:>10.2} GB",
        apr_window.total_bytes() / 1e9,
        apr_bulk.total_bytes() / 1e9,
        efsi.total_bytes() / 1e9
    );
    println!(
        "  APR/eFSI memory ratio: 1:{:.0}",
        efsi.total_bytes() / (apr_window.total_bytes() + apr_bulk.total_bytes())
    );

    if tracing {
        report_telemetry(&opts, &engine, n);
    }
}

/// Dump the recorded trace/metrics and close the model↔measurement loop:
/// fit machine-model work rates from the trace and check the fitted model
/// reproduces the measured step time.
fn report_telemetry(opts: &CkptOpts, engine: &AprEngine, n: usize) {
    use apr_suite::perfmodel::{fit_step_rates, StepGeometry};
    let rec = apr_suite::telemetry::global();
    let stats = rec.phase_stats();
    println!("\nPer-phase profile:");
    println!("{}", apr_suite::telemetry::render_phase_table(&stats));

    if let Some(path) = &opts.trace_out {
        rec.write_chrome_trace(path).expect("write trace");
        println!(
            "wrote Chrome trace to {} (open in Perfetto)",
            path.display()
        );
    }
    if let Some(path) = &opts.metrics_out {
        rec.write_metrics_jsonl(path).expect("write metrics");
        println!("wrote per-step metrics to {}", path.display());
    }

    let geom = StepGeometry {
        coarse_fluid_nodes: engine.coarse.fluid_node_count() as u64,
        fine_fluid_nodes: engine.fine.fluid_node_count() as u64,
        refinement: n as u64,
        halo_sites: 0,
    };
    if let Some(fit) = fit_step_rates(&stats, &geom) {
        let predicted = fit.predict_step_seconds(&geom);
        let deviation = (predicted - fit.step_seconds).abs() / fit.step_seconds;
        println!(
            "\nTrace-fitted machine model ({} steps, {:.1} MLUPS):",
            fit.steps,
            fit.mlups(&geom)
        );
        println!(
            "  cpu {:.3e} s/node   gpu {:.3e} s/node   measured step {:.3} ms",
            fit.cpu_per_node,
            fit.gpu_per_node,
            fit.step_seconds * 1e3
        );
        println!(
            "  model-predicted step {:.3} ms ({:+.1}% vs measured)",
            predicted * 1e3,
            deviation * 100.0
        );
    }
}
