//! Upper-body feasibility demonstration — the Figure 1 / Table 2 argument.
//!
//! Shows what the paper's headline image quantifies: at equal compute
//! resources, a fully resolved eFSI model is confined to a millimetre-scale
//! stationary box, while the APR moving window opens the entire vascular
//! volume to cellular resolution. Uses the Summit machine model and a
//! synthetic upper-body-scale arterial tree.
//!
//! ```sh
//! cargo run --release --example upper_body_feasibility
//! ```

use apr_suite::core::render_table;
use apr_suite::geom::{TreeParams, VascularTree};
use apr_suite::mesh::Vec3;
use apr_suite::perfmodel::{volume_capacity_ml, MachineSpec, MemoryEstimate};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let machine = MachineSpec::SUMMIT;
    let nodes = 256usize;
    let gpus = nodes * machine.gpu_tasks_per_node;
    let cpus = nodes * machine.cpu_tasks_per_node;
    println!("Resources: {nodes} Summit nodes = {gpus} V100 GPUs + {cpus} CPU tasks\n");

    // eFSI capacity: every µm³ costs fine fluid points + meshed RBCs, and
    // it all has to fit in GPU memory (Table 2, paper: 4.98·10⁻³ mL).
    let gpu_mem = gpus as f64 * machine.gpu_memory as f64;
    let efsi_ml = volume_capacity_ml(gpu_mem, 0.5, 0.40);

    // APR: the window has the same fine-resolution capacity, but the bulk
    // (15 µm, no explicit cells) opens the whole geometry. The paper's
    // upper-body volume is 41 mL; our synthetic tree scales similarly.
    let mut rng = StdRng::seed_from_u64(1);
    let params = TreeParams {
        root_radius: 12_000.0, // 12 mm aorta-scale root, µm
        root_length: 250_000.0,
        levels: 6,
        branch_angle: 0.5,
        asymmetry: 0.55,
        jitter: 0.08,
    };
    let tree = VascularTree::grow(&params, Vec3::ZERO, Vec3::Z, &mut rng);
    let tree_ml = tree.lumen_volume() / 1.0e12;
    let bulk = MemoryEstimate::from_volume(15.0, tree.lumen_volume(), 0.0);

    let rows = vec![
        vec![
            "APR (window)".to_string(),
            "0.5".to_string(),
            format!("{gpus} GPUs"),
            format!("{:.2e} mL", efsi_ml),
        ],
        vec![
            "APR (bulk)".to_string(),
            "15".to_string(),
            format!("{cpus} CPUs"),
            format!("{tree_ml:.1} mL"),
        ],
        vec![
            "eFSI".to_string(),
            "0.5".to_string(),
            format!("{nodes} nodes"),
            format!("{:.2e} mL", efsi_ml),
        ],
    ];
    println!(
        "{}",
        render_table(&["Model", "Δx (µm)", "Resources", "Fluid volume"], &rows)
    );

    println!(
        "Synthetic tree: {} segments, {:.2} m of vessel centreline, bulk memory {:.1} GB",
        tree.segments.len(),
        tree.total_length() / 1.0e6,
        bulk.total_bytes() / 1e9,
    );
    println!(
        "\nVolume accessible to cellular resolution: APR opens {:.0}× more fluid",
        tree_ml / efsi_ml
    );
    println!("than eFSI at identical resources — the paper's \"4 orders of magnitude\"");
    println!(
        "(Table 2: 41.0 mL vs 4.98·10⁻³ mL). The moving window turns a {:.1} mm",
        (efsi_ml * 1.0e12).powf(1.0 / 3.0) / 1.0e3
    );
    println!("stationary box into metres of traversable vasculature.");
}
