//! CTC trajectory in an expanding channel — a scaled-down Figure 6 run.
//!
//! A stiff circulating tumor cell rides a force-driven flow through a
//! channel that doubles its radius partway down (the geometry micro-
//! fluidics uses to study margination). The APR window tracks the CTC;
//! the program prints the radial-displacement profile that Figure 6D plots.
//!
//! ```sh
//! cargo run --release --example expanding_channel_ctc
//! ```

use apr_suite::core::AprEngine;
use apr_suite::coupling::fine_tau;
use apr_suite::geom::{voxelize, ExpandingChannel};
use apr_suite::lattice::Lattice;
use apr_suite::membrane::{Membrane, MembraneMaterial, ReferenceState};
use apr_suite::mesh::{icosphere, Vec3};
use std::sync::Arc;

fn main() {
    let n = 3usize;
    let lambda = 0.3;
    let tau_c = 0.9;
    let g = 1.2e-4;

    // Coarse channel: radius 6 → 11 coarse cells, expansion at z = 40.
    let (nx, ny, nz) = (27usize, 27usize, 110usize);
    let channel = ExpandingChannel {
        r0: 6.0,
        r1: 11.0,
        z_expand: 40.0,
        taper: 12.0,
        origin: Vec3::new(13.0, 13.0, 0.0),
    };
    let mut coarse = Lattice::new(nx, ny, nz, tau_c);
    coarse.periodic = [false, false, true];
    coarse.body_force = [0.0, 0.0, g];
    voxelize(&mut coarse, &channel, Vec3::ZERO, 1.0);

    // Window: 8 coarse cells cubed, refined ×3, starting before the
    // expansion with the CTC slightly off-axis (the paper's 25 µm offset).
    let span = 8usize;
    let dim = span * n + 1;
    let mut fine = Lattice::new(dim, dim, dim, fine_tau(tau_c, n, lambda));
    fine.body_force = [0.0, 0.0, g / n as f64];
    let origin = [9.0, 9.0, 8.0];

    let mut engine = AprEngine::builder(coarse, fine, origin, n, lambda).build();
    // The window geometry callback keeps channel walls flagged in the fine
    // lattice as the window moves.
    engine.set_fine_geometry(Box::new(move |fine, origin| {
        // Reset all nodes to fluid, then re-voxelize for this origin.
        for node in 0..fine.node_count() {
            fine.set_flag(node, apr_suite::lattice::NodeClass::Fluid);
        }
        let o = Vec3::new(origin[0], origin[1], origin[2]);
        voxelize(fine, &channel, o, 1.0 / 3.0);
    }));

    // Stiff CTC, radius 3.5 fine units, offset from the axis.
    let ctc_mesh = icosphere(2, 3.5);
    let reference = Arc::new(ReferenceState::build(&ctc_mesh));
    let membrane = Arc::new(Membrane::new(reference, MembraneMaterial::ctc(4e-3, 2e-4)));
    let start = engine.anatomy.center + Vec3::new(6.0, 0.0, 0.0);
    let verts: Vec<Vec3> = ctc_mesh.vertices.iter().map(|&v| v + start).collect();
    engine.add_ctc(membrane, verts);

    println!("step   z_axial   radial_r   window_moves");
    let axis_origin = Vec3::new(13.0, 13.0, 0.0);
    for step in 0..4000u64 {
        engine.step();
        if step % 200 == 0 {
            if let Some(world) = engine.tracker.current() {
                let rel = world - axis_origin;
                let radial = (rel.x * rel.x + rel.y * rel.y).sqrt();
                println!(
                    "{step:>5}   {:>7.2}   {:>7.3}   {:>6}",
                    rel.z,
                    radial,
                    engine.window_moves()
                );
            }
        }
        // Stop once the CTC is well past the expansion.
        if engine.tracker.current().is_some_and(|w| w.z > 85.0) {
            break;
        }
    }

    println!("\nRadial profile (axial z, radial r) — the Figure 6D observable:");
    for (z, r) in engine
        .tracker
        .radial_profile(axis_origin, Vec3::Z)
        .iter()
        .step_by(200)
    {
        println!("  z = {z:>7.2}   r = {r:>6.3}");
    }
    println!(
        "\nWindow moved {} times while tracking the CTC over {:.1} coarse cells.",
        engine.window_moves(),
        engine.tracker.net_displacement()
    );
    println!("APR site updates: {}", engine.site_updates());
}
