//! Quickstart: a single red blood cell deforming in shear flow.
//!
//! Builds a plane Couette channel with the eFSI engine, drops in one
//! biconcave RBC, runs a few hundred fully coupled FSI steps and reports
//! how the cell deformed and advected.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use apr_suite::cells::{CellKind, ContactParams};
use apr_suite::core::EfsiEngine;
use apr_suite::lattice::couette_channel;
use apr_suite::membrane::{Membrane, MembraneMaterial, ReferenceState};
use apr_suite::mesh::{biconcave_rbc_mesh, Vec3};
use std::sync::Arc;

fn main() {
    // Channel: 32×20×20 lattice nodes, lid speed 0.05 (lattice units).
    let u_lid = 0.05;
    let lattice = couette_channel(32, 20, 20, 1.0, u_lid);
    let mut engine = EfsiEngine::new(
        lattice,
        8,
        ContactParams {
            cutoff: 1.0,
            strength: 1e-4,
        },
    );

    // One healthy RBC, 4 lattice units in radius, at the channel centre.
    let mesh = biconcave_rbc_mesh(2, 4.0);
    let reference = Arc::new(ReferenceState::build(&mesh));
    let membrane = Arc::new(Membrane::new(reference, MembraneMaterial::rbc(1e-3, 1e-5)));
    let center = Vec3::new(12.0, 10.0, 10.0);
    let vertices: Vec<Vec3> = mesh.vertices.iter().map(|&v| v + center).collect();
    engine.add_cell(CellKind::Rbc, membrane, vertices);

    let cell_volume0 = engine.pool.iter().next().unwrap().volume();
    println!("step   centroid_x  centroid_y   volume_err   max_stretch");
    for step in 0..=600 {
        if step % 100 == 0 {
            let cell = engine.pool.iter().next().unwrap();
            let c = cell.centroid();
            let vol_err = (cell.volume() - cell_volume0).abs() / cell_volume0;
            // Largest distance of any vertex from the centroid, relative to
            // the undeformed radius: >1 means the shear is stretching it.
            let max_r = cell
                .vertices
                .iter()
                .map(|v| v.distance(c))
                .fold(0.0f64, f64::max);
            println!(
                "{step:>4}   {:>9.3}  {:>9.3}   {:>9.2e}   {:>9.3}",
                c.x,
                c.y,
                vol_err,
                max_r / 4.0
            );
        }
        engine.step();
    }

    let cell = engine.pool.iter().next().unwrap();
    println!(
        "\nAfter {} steps: the RBC advected {:.1} lattice units downstream,",
        engine.steps(),
        cell.centroid().x - 12.0
    );
    println!(
        "its volume drifted {:.3}% (membrane incompressibility), and it tank-treads in the shear.",
        (cell.volume() - cell_volume0).abs() / cell_volume0 * 100.0
    );
    println!("Site updates performed: {}", engine.site_updates());
}
