//! Serve demo: 8 concurrent sessions on a 2-worker budget, watched live.
//!
//! Submits eight tube-flow sessions — four scenario specs, two sessions
//! each — to the multi-tenant service. With 4× oversubscription every
//! session is repeatedly checkpoint-preempted and resumed; the second
//! session of each spec starts from the warm-state cache. Progress is
//! **streamed** while the scheduler runs: the demo subscribes to the
//! observability hub before submitting, and every retired slice pushes a
//! live sample (steps done, steps/s, cache temperature) — no polling of
//! `progress_snapshot` under the scheduler lock. After the stream drains,
//! it prints per-session outcomes and the service-level metrics, and
//! verifies that sessions with identical specs finished bit-identically.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```

use apr_suite::serve::{JobSpec, ScenarioSpec, ServeConfig, SimService};
use std::collections::HashMap;
use std::time::Duration;

fn main() {
    let config = ServeConfig {
        workers: 2,
        lanes_per_worker: 2,
        slice_steps: 8,
        max_sessions: 16,
        cache_capacity: 8,
        park_bytes_cap: usize::MAX,
    };
    println!(
        "serve_demo: 8 sessions on {} workers x {} lanes, {}-step slices",
        config.workers, config.lanes_per_worker, config.slice_steps
    );
    let service = SimService::start(config);

    // Subscribe BEFORE submitting so no slice sample is missed.
    let progress = service.subscribe_progress(None);

    // Four specs (different seeds), two sessions each: the second of each
    // pair should hit the warm cache.
    let mut submitted = 0usize;
    for round in 0..2 {
        for seed in 0..4u64 {
            let id = service
                .submit(JobSpec {
                    scenario: ScenarioSpec::tube_small(seed),
                    target_steps: 32,
                })
                .expect("admission");
            submitted += 1;
            println!("  admitted session {id} (seed {seed}, round {round})");
        }
    }

    // Live stream: one line per retired slice, until every session has
    // pushed its completion sample.
    println!("\nlive progress stream:");
    let mut completed = 0usize;
    let mut streamed = 0usize;
    while completed < submitted {
        let Some(p) = progress.recv_timeout(Duration::from_secs(30)) else {
            panic!("progress stream stalled with {completed}/{submitted} sessions complete");
        };
        streamed += 1;
        let temp = match p.cache_hit {
            Some(true) => "warm",
            Some(false) => "cold",
            None => "?",
        };
        println!(
            "  session {:>2}  slice {:>2}  {:>3}/{} steps  {:>8.0} steps/s  {}{}",
            p.session,
            p.slice,
            p.steps_done,
            p.target_steps,
            p.steps_per_sec,
            temp,
            if p.completed { "  [done]" } else { "" }
        );
        if p.completed {
            completed += 1;
        }
    }
    println!(
        "streamed {streamed} slice samples for {submitted} sessions ({} dropped)",
        progress.dropped()
    );

    let results = service.wait_all();
    println!("\nsession  steps  preempts  cache  checkpoint_bytes");
    for r in &results {
        println!(
            "{:>7}  {:>5}  {:>8}  {:>5}  {:>16}",
            r.session,
            r.steps,
            r.preempts,
            if r.cache_hit { "warm" } else { "cold" },
            r.final_checkpoint.len()
        );
    }

    // Identical specs must finish bit-identically regardless of how the
    // scheduler interleaved them.
    let mut by_scenario: HashMap<u64, &[u8]> = HashMap::new();
    for r in &results {
        match by_scenario.get(&r.scenario) {
            None => {
                by_scenario.insert(r.scenario, &r.final_checkpoint);
            }
            Some(reference) => assert_eq!(
                &r.final_checkpoint.as_slice(),
                reference,
                "sessions with identical specs diverged"
            ),
        }
    }
    println!("\nall identical-spec session pairs finished bit-identically");

    let m = service.metrics();
    println!(
        "completed {}/{} sessions in {:.2}s ({:.1} sessions/s)",
        m.sessions_completed, m.sessions_admitted, m.wall_seconds, m.sessions_per_sec
    );
    println!(
        "time-to-first-step p50 {:.1} ms, p95 {:.1} ms",
        m.p50_ttfs_ms, m.p95_ttfs_ms
    );
    println!(
        "preempt overhead {:.1}% over {} preemptions; cache hit rate {:.0}% ({} hits / {} misses)",
        m.preempt_overhead_pct,
        m.total_preempts,
        m.cache_hit_rate * 100.0,
        m.cache_hits,
        m.cache_misses
    );
    println!(
        "worst grant gap {} (fair-share bound: active sessions)",
        m.max_grant_gap
    );
}
