//! Kernel-engine equivalence: the fused swap-streaming kernel and the
//! SIMD fused kernel must be **bit-identical** to the reference two-pass
//! kernel on every boundary type, at every thread count, under either
//! chunking policy, across checkpoint/restore — and they must actually
//! eliminate the second distribution array they exist to remove.
//!
//! The worker pool is process-global, so every test that swaps it holds
//! `POOL_LOCK` (same discipline as `exec_determinism.rs`).

use apr_suite::guard::{read_lattice, write_lattice, ByteReader};
use apr_suite::lattice::{
    couette_channel, force_driven_tube, poiseuille_slit, Boundary, KernelKind, Lattice, SubStep, Q,
};
use std::sync::Mutex;

static POOL_LOCK: Mutex<()> = Mutex::new(());

/// The boundary-condition zoo, one constructor per streaming code path.
fn scenarios() -> Vec<(&'static str, Lattice)> {
    // Fully periodic forced box: every node takes the fused fast path.
    let mut periodic = Lattice::new(12, 10, 8, 0.8);
    periodic.periodic = [true, true, true];
    periodic.body_force = [1e-6, 2e-7, 0.0];

    // Couette: moving wall (momentum-injecting bounce-back).
    let couette = couette_channel(6, 12, 6, 0.9, 0.03);

    // Poiseuille: stationary walls + body force.
    let slit = poiseuille_slit(6, 14, 6, 0.9, 1e-6);

    // Force-driven tube: curved wall + exterior nodes + periodic axis.
    let tube = force_driven_tube(13, 13, 10, 0.9, 5.0, 1e-6);

    // Duct with a velocity inlet, pressure outlet, walls, and exterior
    // corners: exercises the post-stream non-equilibrium extrapolation
    // against both kernels' storage orders.
    let (nx, ny, nz) = (6usize, 8usize, 14usize);
    let mut duct = Lattice::new(nx, ny, nz, 0.9);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let node = duct.idx(x, y, z);
                let shell = x == 0 || x == nx - 1 || y == 0 || y == ny - 1;
                if shell {
                    let corner = (x == 0 || x == nx - 1) && (y == 0 || y == ny - 1);
                    duct.set_boundary(
                        node,
                        if corner {
                            Boundary::Exterior
                        } else {
                            Boundary::Wall
                        },
                    );
                } else if z == 0 {
                    duct.set_boundary(node, Boundary::Velocity([0.0, 0.0, 0.02]));
                } else if z == nz - 1 {
                    duct.set_boundary(node, Boundary::Pressure(1.0));
                }
            }
        }
    }

    vec![
        ("periodic_box", periodic),
        ("couette", couette),
        ("poiseuille_slit", slit),
        ("force_driven_tube", tube),
        ("velocity_pressure_duct", duct),
    ]
}

/// Raw bit digest of distributions + moments at a step boundary.
fn digest(lat: &Lattice) -> Vec<u64> {
    let mut bits: Vec<u64> = lat.storage_f().iter().map(|v| v.to_bits()).collect();
    bits.extend(lat.rho.iter().map(|v| v.to_bits()));
    bits.extend(lat.vel.iter().map(|v| v.to_bits()));
    bits
}

fn run(mut lat: Lattice, kind: KernelKind, steps: u64) -> Vec<u64> {
    lat.set_kernel(Some(kind));
    for _ in 0..steps {
        lat.step();
    }
    assert_eq!(lat.kernel(), kind);
    assert_eq!(lat.steps_taken(), steps);
    digest(&lat)
}

#[test]
fn fused_matches_reference_on_every_boundary_type_and_thread_count() {
    let _guard = POOL_LOCK.lock().unwrap();
    for (name, lat) in scenarios() {
        apr_suite::exec::set_threads(1);
        let golden = run(lat.clone(), KernelKind::Reference, 100);
        for threads in [1usize, 2, 4, 8] {
            apr_suite::exec::set_threads(threads);
            for kind in [
                KernelKind::FusedSwap,
                KernelKind::FusedSimd,
                // The reference kernel itself must also be thread-invariant.
                KernelKind::Reference,
            ] {
                let got = run(lat.clone(), kind, 100);
                assert_eq!(
                    golden, got,
                    "{kind:?} diverged from reference: scenario {name}, {threads} threads"
                );
            }
        }
    }
    apr_suite::exec::set_threads(1);
}

#[test]
fn split_halves_match_fused_full_steps() {
    let _guard = POOL_LOCK.lock().unwrap();
    apr_suite::exec::set_threads(2);
    for (name, lat) in scenarios() {
        for kind in [KernelKind::FusedSwap, KernelKind::FusedSimd] {
            let mut whole = lat.clone();
            whole.set_kernel(Some(kind));
            let mut halves = lat.clone();
            halves.set_kernel(Some(kind));
            for _ in 0..20 {
                whole.step();
                halves.advance(SubStep::Collide);
                halves.advance(SubStep::Stream);
            }
            assert_eq!(
                digest(&whole),
                digest(&halves),
                "split-half {kind:?} run diverged from step(): scenario {name}"
            );
        }
    }
    apr_suite::exec::set_threads(1);
}

/// Mid-step accessors must transparently translate the fused kernel's
/// reversed storage: logical reads between the halves agree bit-for-bit
/// with the reference kernel's post-collision state.
#[test]
fn mid_step_accessors_agree_across_kernels() {
    let _guard = POOL_LOCK.lock().unwrap();
    apr_suite::exec::set_threads(2);
    let (_, lat) = scenarios().remove(1); // couette: has a moving wall
    for kind in [KernelKind::FusedSwap, KernelKind::FusedSimd] {
        let mut a = lat.clone();
        a.set_kernel(Some(KernelKind::Reference));
        let mut b = lat.clone();
        b.set_kernel(Some(kind));
        for l in [&mut a, &mut b] {
            for _ in 0..10 {
                l.step();
            }
            l.advance(SubStep::Collide);
        }
        assert!(!a.swap_parity() && b.swap_parity());
        for node in 0..a.node_count() {
            for i in 0..Q {
                assert_eq!(
                    a.distribution(node, i).to_bits(),
                    b.distribution(node, i).to_bits(),
                    "post-collision mismatch at node {node} dir {i} ({kind:?})"
                );
            }
            let (ra, ua) = a.moments_at(node);
            let (rb, ub) = b.moments_at(node);
            assert_eq!(
                (ra.to_bits(), ua.map(f64::to_bits)),
                (rb.to_bits(), ub.map(f64::to_bits))
            );
        }
        a.advance(SubStep::Stream);
        b.advance(SubStep::Stream);
        assert_eq!(digest(&a), digest(&b));
    }
    apr_suite::exec::set_threads(1);
}

/// Guardian lattice serialization round-trips a *mid-step* fused state:
/// swap parity survives the checkpoint, and the resumed run stays on the
/// uninterrupted trajectory — and on the reference kernel's.
#[test]
fn mid_step_checkpoint_preserves_swap_parity() {
    let _guard = POOL_LOCK.lock().unwrap();
    apr_suite::exec::set_threads(2);
    let (_, lat) = scenarios().remove(1); // couette
    let golden = run(lat.clone(), KernelKind::Reference, 100);

    let mut interrupted = lat.clone();
    interrupted.set_kernel(Some(KernelKind::FusedSwap));
    for _ in 0..50 {
        interrupted.step();
    }
    interrupted.advance(SubStep::Collide);
    assert!(interrupted.mid_step() && interrupted.swap_parity());
    let blob = write_lattice(&interrupted);

    let mut resumed = lat.clone();
    resumed.set_kernel(Some(KernelKind::FusedSwap));
    read_lattice(&mut resumed, &mut ByteReader::new(&blob)).expect("restore");
    assert!(resumed.mid_step() && resumed.swap_parity());
    assert_eq!(resumed.steps_taken(), 50);
    resumed.advance(SubStep::Stream);
    for _ in 51..100 {
        resumed.step();
    }
    assert_eq!(
        digest(&resumed),
        golden,
        "resumed-from-mid-step fused run diverged"
    );

    // The same blob must refuse to land on a reference-kernel lattice:
    // its storage order cannot represent the reversed mid-step state.
    let mut wrong = lat.clone();
    wrong.set_kernel(Some(KernelKind::Reference));
    assert!(read_lattice(&mut wrong, &mut ByteReader::new(&blob)).is_err());
    apr_suite::exec::set_threads(1);
}

/// The fused kernel's reason to exist: its auxiliary memory (adjacency
/// table + deferred-swap queues) stays well under the full second
/// distribution array the reference kernel streams into.
#[test]
fn fused_kernel_eliminates_the_second_distribution_array() {
    let _guard = POOL_LOCK.lock().unwrap();
    apr_suite::exec::set_threads(2);
    let mut lat = Lattice::new(24, 24, 24, 0.9);
    lat.periodic = [true, true, true];
    lat.body_force = [1e-7, 0.0, 0.0];
    let second_array = lat.node_count() * Q * std::mem::size_of::<f64>();

    for kind in [KernelKind::FusedSwap, KernelKind::FusedSimd] {
        let mut fused = lat.clone();
        fused.set_kernel(Some(kind));
        fused.step();
        assert!(fused.kernel_scratch_bytes() > 0);
        assert!(
            fused.kernel_scratch_bytes() < second_array,
            "{kind:?} scratch {} B >= second distribution array {} B",
            fused.kernel_scratch_bytes(),
            second_array
        );
    }

    lat.set_kernel(Some(KernelKind::Reference));
    lat.step();
    assert_eq!(
        lat.kernel_scratch_bytes(),
        second_array,
        "reference kernel should hold exactly one extra distribution array"
    );
    apr_suite::exec::set_threads(1);
}

/// Geometry edits invalidate the fused kernel's compiled stencil: carving
/// a wall into a running lattice must keep fused == reference afterwards.
#[test]
fn geometry_changes_rebuild_the_fused_stencil() {
    let _guard = POOL_LOCK.lock().unwrap();
    apr_suite::exec::set_threads(2);
    let mut base = Lattice::new(10, 10, 10, 0.85);
    base.periodic = [true, true, true];
    base.body_force = [1e-6, 0.0, 0.0];
    let mut a = base.clone();
    a.set_kernel(Some(KernelKind::Reference));
    let mut b = base.clone();
    b.set_kernel(Some(KernelKind::FusedSwap));
    let mut c = base;
    c.set_kernel(Some(KernelKind::FusedSimd));
    for l in [&mut a, &mut b, &mut c] {
        for _ in 0..10 {
            l.step();
        }
        // Carve a moving plate mid-run: the compiled stencil is now stale.
        for y in 0..10 {
            for x in 0..10 {
                let node = 5 * 100 + y * 10 + x;
                l.set_boundary(node, Boundary::MovingWall([0.01, 0.0, 0.0]));
            }
        }
        for _ in 0..10 {
            l.step();
        }
    }
    assert_eq!(digest(&a), digest(&b), "post-edit trajectories diverged");
    assert_eq!(digest(&a), digest(&c), "post-edit SIMD trajectory diverged");
    apr_suite::exec::set_threads(1);
}

/// Chunking is an execution knob, not a physics knob: guided and static
/// hand-out produce bit-identical trajectories for both fused kernels at
/// every thread count.
#[test]
fn chunking_policy_never_changes_results() {
    use apr_suite::lattice::ChunkingPolicy;
    let _guard = POOL_LOCK.lock().unwrap();
    for (name, lat) in scenarios() {
        for kind in [KernelKind::FusedSwap, KernelKind::FusedSimd] {
            apr_suite::exec::set_threads(1);
            let mut golden = lat.clone();
            golden.set_chunking(Some(ChunkingPolicy::Static));
            let golden = run(golden, kind, 50);
            for threads in [2usize, 4, 8] {
                apr_suite::exec::set_threads(threads);
                for policy in [ChunkingPolicy::Guided, ChunkingPolicy::Static] {
                    let mut trial = lat.clone();
                    trial.set_chunking(Some(policy));
                    assert_eq!(
                        golden,
                        run(trial, kind, 50),
                        "{kind:?}/{policy:?} diverged: scenario {name}, {threads} threads"
                    );
                }
            }
        }
    }
    apr_suite::exec::set_threads(1);
}
