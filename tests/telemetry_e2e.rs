//! End-to-end observability: an instrumented APR run must produce a valid
//! Chrome trace whose phase spans cover ≥95% of step wall time, a monotone
//! metrics time-series carrying the window gauges, and phase aggregates
//! the perfmodel trace-fit can turn back into the measured step time.
//!
//! This test owns its process's global recorder (each integration-test
//! file is a separate binary), so it can enable tracing without
//! interfering with other tests.

use apr_suite::cells::ContactParams;
use apr_suite::core::AprEngine;
use apr_suite::coupling::fine_tau;
use apr_suite::lattice::{force_driven_tube, Lattice};
use apr_suite::perfmodel::{fit_step_rates, StepGeometry};
use apr_suite::telemetry;
use apr_suite::telemetry::{validate_chrome_trace, validate_metrics_jsonl};

/// Small APR tube problem: coarse force-driven tube, cubic fine window.
fn tube_engine() -> AprEngine {
    let (nx, ny, nz) = (21usize, 21usize, 48usize);
    let (n, tau_c, lambda, g) = (3usize, 0.9f64, 0.3f64, 4e-6f64);
    let coarse = force_driven_tube(nx, ny, nz, tau_c, 9.0, g);
    let span = 8usize;
    let fine_dim = span * n + 1;
    let mut fine = Lattice::new(fine_dim, fine_dim, fine_dim, fine_tau(tau_c, n, lambda));
    fine.body_force = [0.0, 0.0, g / n as f64];
    let origin = [
        (nx as f64 - 1.0) / 2.0 - span as f64 / 2.0,
        (ny as f64 - 1.0) / 2.0 - span as f64 / 2.0,
        4.0,
    ];
    let side = span as f64 * n as f64;
    AprEngine::builder(coarse, fine, origin, 3, lambda)
        .window(side * 0.22, side * 0.12, side * 0.14)
        .contact(ContactParams {
            cutoff: 1.2,
            strength: 5e-4,
        })
        .build()
}

#[test]
fn traced_run_validates_and_calibrates_the_machine_model() {
    telemetry::enable();
    let mut engine = tube_engine();
    let steps = 30u64;
    {
        // Run under a session scope so every span carries correlation ids
        // (the engine adds the per-step scope itself).
        let _session = telemetry::session_scope(77);
        for _ in 0..steps {
            engine.step();
            telemetry::sample_metrics(engine.steps());
        }
    }
    telemetry::disable();
    let rec = telemetry::global();

    // Chrome trace: parses, schema-complete, monotone, phase spans cover
    // ≥95% of step wall time (the ISSUE acceptance threshold).
    let trace = rec.chrome_trace_json();
    let summary = validate_chrome_trace(&trace).expect("trace must validate");
    assert!(summary.span_records >= steps as usize);
    let coverage = summary.phase_coverage();
    assert!(
        coverage >= 0.95,
        "phase spans cover only {:.1}% of step wall time",
        coverage * 100.0
    );

    // Correlation round-trip: the session/step ids scoped during the run
    // must come back out of the Chrome export, span for span — this is
    // what lets the cross-rank critical-path analyzer group spans by step.
    assert!(
        summary.correlated_spans > 0,
        "no span carried correlation args"
    );
    let doc = telemetry::json::parse(&trace).expect("trace parses");
    let events = doc.as_arr().expect("chrome trace is a record array");
    let step_spans: Vec<_> = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("X")
                && e.get("name").and_then(|n| n.as_str()) == Some("apr.step")
        })
        .collect();
    assert_eq!(step_spans.len(), steps as usize);
    for (i, span) in step_spans.iter().enumerate() {
        let args = span.get("args").expect("correlated span has args");
        assert_eq!(
            args.get("session").and_then(|s| s.as_f64()),
            Some(77.0),
            "session id lost in export round-trip"
        );
        assert_eq!(
            args.get("step").and_then(|s| s.as_f64()),
            Some(i as f64 + 1.0),
            "step id lost in export round-trip"
        );
    }

    // Metrics JSONL: one row per step, monotone, window gauges present.
    let jsonl = rec.metrics_jsonl();
    let msum = validate_metrics_jsonl(&jsonl).expect("metrics must validate");
    assert_eq!(msum.rows, steps as usize);
    let last = jsonl.lines().last().unwrap();
    for key in [
        "\"apr.site_updates\"",
        "\"window.region.total\"",
        "\"apr.window_moves\"",
    ] {
        assert!(last.contains(key), "metrics row missing {key}: {last}");
    }

    // The engine's own counter and the metric agree.
    let stats = rec.phase_stats();
    let step_stat = stats.iter().find(|s| s.name == "apr.step").unwrap();
    assert_eq!(step_stat.count, steps);

    // Per-worker attribution: the LBM kernels dispatch exec-pool regions
    // every (sub)step, and regions attribute to the innermost open span —
    // `lattice.collide`/`lattice.stream`, not their `apr.fine.*` parents.
    // Lane stats must be populated, coherent (barrier wait bounded by
    // inclusive time) and report a load-imbalance factor ≥ 1.
    for name in ["lattice.collide", "lattice.stream"] {
        let s = stats.iter().find(|s| s.name == name).unwrap();
        assert!(s.workers.regions > 0, "{name} recorded no pool regions");
        assert!(s.workers.samples >= s.workers.regions, "{name}");
        assert!(s.workers.imbalance() >= 1.0, "{name}");
        assert!(s.barrier_ns <= s.total_ns, "{name}");
        assert!(
            s.self_ns <= s.total_ns.saturating_sub(s.barrier_ns),
            "{name}: self time must exclude barrier wait"
        );
    }

    // Flight recorder: the run's spans and metrics samples are sitting in
    // the in-memory ring, ready to dump on a sentinel trip.
    let entries = rec.flight_entries();
    assert!(
        !entries.is_empty(),
        "flight ring is empty after a traced run"
    );
    let spans = entries
        .iter()
        .filter(|e| matches!(e, telemetry::FlightEntry::Span(_)))
        .count();
    let samples = entries
        .iter()
        .filter(|e| matches!(e, telemetry::FlightEntry::MetricsSample { .. }))
        .count();
    assert!(spans >= steps as usize, "ring holds only {spans} spans");
    assert_eq!(samples, steps as usize, "one metrics sample per step");
    assert!(rec.flight_total() >= entries.len() as u64);

    // Trace-fit calibration reproduces the measured step time within the
    // 20% acceptance band (the fit is an exact decomposition, so the gap
    // is the uninstrumented glue).
    let geom = StepGeometry {
        coarse_fluid_nodes: engine.coarse.fluid_node_count() as u64,
        fine_fluid_nodes: engine.fine.fluid_node_count() as u64,
        refinement: 3,
        halo_sites: 0,
    };
    let fit = fit_step_rates(&stats, &geom).expect("trace has step spans");
    assert_eq!(fit.steps, steps);
    let predicted = fit.predict_step_seconds(&geom);
    let deviation = (predicted - fit.step_seconds).abs() / fit.step_seconds;
    assert!(
        deviation < 0.20,
        "trace-fitted model off by {:.1}% (predicted {predicted} s, measured {} s)",
        deviation * 100.0,
        fit.step_seconds
    );
}
