//! Figure 3 lifecycle test: window anatomy → initial packing → density
//! monitoring → window move (capture/fill) → repopulation, exercising the
//! whole cell-side pipeline without fluid (fast, deterministic).

use apr_suite::cells::{rebuild_grid, CellPool, RbcTile, UniformSubgrid};
use apr_suite::membrane::{Membrane, MembraneMaterial, ReferenceState};
use apr_suite::mesh::{biconcave_rbc_mesh, Vec3};
use apr_suite::window::{
    move_window, remove_escaped_cells, repopulate, HematocritController, InsertionContext,
    MoveTrigger, Region, WindowAnatomy,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn machinery() -> (InsertionContext, HematocritController) {
    let rbc_mesh = biconcave_rbc_mesh(1, 3.91);
    let volume = rbc_mesh.enclosed_volume();
    let re = Arc::new(ReferenceState::build(&rbc_mesh));
    let membrane = Arc::new(Membrane::new(re, MembraneMaterial::rbc(1.0, 0.01)));
    let mut rng = StdRng::seed_from_u64(17);
    let tile = RbcTile::build(50.0, 0.25, 3.91, 2.4, volume, &mut rng);
    (
        InsertionContext {
            rbc_mesh,
            rbc_membrane: membrane,
            tile,
            min_gap: 0.6,
        },
        HematocritController::new(0.18, 0.85, volume),
    )
}

#[test]
fn full_window_lifecycle() {
    let (ctx, controller) = machinery();
    let mut anatomy = WindowAnatomy::new(Vec3::splat(60.0), 18.0, 8.0, 9.0);
    let mut pool = CellPool::with_capacity(1024);
    let mut grid = UniformSubgrid::new(4.0);
    let mut rng = StdRng::seed_from_u64(23);

    // Phase 1: fill the insertion shell to target.
    let mut total_inserted = 0;
    for _ in 0..6 {
        total_inserted +=
            repopulate(&mut pool, &mut grid, &anatomy, &controller, &ctx, &mut rng).inserted;
    }
    assert!(total_inserted > 30, "only {total_inserted} inserted");
    let ht = controller.window_hematocrit(&pool, &anatomy);
    assert!(
        ht > 0.5 * controller.target && ht <= controller.target * 1.02,
        "Ht {ht}"
    );

    // Phase 2: simulate advection — drift every cell +x and prune leavers.
    for _ in 0..5 {
        for cell in pool.iter_mut() {
            cell.translate(Vec3::new(4.0, 0.0, 0.0));
        }
        let _ = remove_escaped_cells(&mut pool, &mut grid, &anatomy);
        rebuild_grid(&mut grid, &pool);
        repopulate(&mut pool, &mut grid, &anatomy, &controller, &ctx, &mut rng);
    }
    assert!(pool.total_removed() > 0, "drift never pushed cells out");
    assert!(
        pool.total_inserted() > total_inserted as u64,
        "no refills during drift"
    );

    // Phase 3: window move triggered by a synthetic CTC near the boundary.
    let trigger = MoveTrigger {
        trigger_distance: 4.0,
    };
    let ctc = anatomy.center + Vec3::new(15.0, 2.0, -1.0);
    assert!(trigger.should_move(&anatomy, ctc));
    let live_before = pool.live_count();
    let (new_anatomy, report) = move_window(&anatomy, &mut pool, &mut grid, ctc, ctx.min_gap);
    anatomy = new_anatomy;
    assert_eq!(anatomy.center, ctc);
    assert!(report.captured > 0, "{report:?}");
    // Everything alive sits inside the new window.
    for cell in pool.iter() {
        assert!(anatomy.contains(cell.centroid()));
    }
    assert!(
        pool.live_count() > live_before / 3,
        "move lost too many cells"
    );

    // Phase 4: post-move repopulation tops the shell back up.
    let report = repopulate(&mut pool, &mut grid, &anatomy, &controller, &ctx, &mut rng);
    let ht = controller.window_hematocrit(&pool, &anatomy);
    assert!(
        ht <= controller.target * 1.02,
        "post-move Ht {ht} breached target ({report:?})"
    );

    // Invariant: no two cells interpenetrate badly anywhere in the pipeline.
    let cells: Vec<_> = pool.iter().collect();
    for (i, a) in cells.iter().enumerate() {
        for b in cells.iter().skip(i + 1) {
            let d = a.centroid().distance(b.centroid());
            assert!(d > 1.2, "cells {} and {} at distance {d}", a.id, b.id);
        }
    }
}

#[test]
fn regions_route_cells_through_onramp() {
    // Cells entering through insertion must pass OnRamp before Proper —
    // geometric invariant of the anatomy (Figure 3A).
    let anatomy = WindowAnatomy::new(Vec3::ZERO, 10.0, 5.0, 5.0);
    let path: Vec<Region> = (0..40)
        .map(|i| anatomy.region_of(Vec3::new(19.0 - i as f64, 0.0, 0.0)))
        .collect();
    let first_onramp = path.iter().position(|&r| r == Region::OnRamp).unwrap();
    let first_proper = path.iter().position(|&r| r == Region::Proper).unwrap();
    let first_insertion = path.iter().position(|&r| r == Region::Insertion).unwrap();
    assert!(first_insertion < first_onramp && first_onramp < first_proper);
}

#[test]
fn overlap_resolution_is_task_count_invariant() {
    // The paper's §2.4.2 determinism claim: resolving a batch of candidate
    // placements yields the same survivors regardless of processing order
    // (standing in for MPI task counts).
    let (ctx, _) = machinery();
    let mut rng = StdRng::seed_from_u64(31);
    let placements = ctx.tile.sample_cube(30.0, &mut rng);
    let candidates: Vec<(u64, Vec<apr_suite::mesh::Vec3>)> = placements
        .iter()
        .enumerate()
        .map(|(i, p)| (i as u64, p.realize(&ctx.rbc_mesh)))
        .collect();
    let kept_forward = apr_suite::cells::resolve_batch(&candidates, 0.4, 4.0);
    let mut reversed = candidates.clone();
    reversed.reverse();
    let kept_reverse = apr_suite::cells::resolve_batch(&reversed, 0.4, 4.0);
    assert_eq!(kept_forward, kept_reverse);
    assert!(!kept_forward.is_empty());
}
