//! Cross-crate integration: units flow correctly from physical constants
//! through the unit converter into lattice/membrane parameters, geometry
//! voxelizes into working lattices, and the perf model agrees with the real
//! decomposition geometry.

use apr_suite::geom::{voxelize, Cylinder, TreeParams, VascularTree};
use apr_suite::hemo::{
    UnitConverter, PLASMA_DENSITY, PLASMA_KINEMATIC_VISCOSITY, RBC_DIAMETER, RBC_SHEAR_MODULUS,
    WHOLE_BLOOD_VISCOSITY,
};
use apr_suite::lattice::{Lattice, NodeClass};
use apr_suite::mesh::Vec3;
use apr_suite::parallel::BlockDecomposition;
use apr_suite::perfmodel::neighbor_fraction;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn paper_figure6_unit_chain_is_stable() {
    // Paper §3.3: Δx_f = 0.5 µm window at plasma viscosity with τ_f from
    // Eq. 7. Choose τ_c = 1 on the 2.5 µm bulk grid and check the whole
    // chain gives a stable fine lattice and sane lattice parameters.
    let n = 5usize;
    let lambda = PLASMA_KINEMATIC_VISCOSITY / (WHOLE_BLOOD_VISCOSITY / 1060.0);
    let tau_c = 1.0;
    let tau_f = apr_suite::coupling::fine_tau(tau_c, n, lambda);
    assert!(tau_f > 0.5 && tau_f < 2.5, "τ_f = {tau_f}");

    // The coarse unit converter fixes Δt; inlet velocity 0.1 m/s must map
    // to a low-Mach lattice velocity on the coarse grid.
    let conv = UnitConverter::from_viscosity(2.5e-6, WHOLE_BLOOD_VISCOSITY / 1060.0, tau_c, 1060.0);
    let u_lat = conv.velocity_to_lattice(0.1);
    assert!(u_lat < 0.15, "lattice velocity {u_lat} too compressible");

    // RBC shear modulus in fine-lattice units is small but nonzero.
    let fine_conv = UnitConverter::new(conv.dx / n as f64, conv.dt / n as f64, PLASMA_DENSITY);
    let gs_lat = fine_conv.surface_modulus_to_lattice(RBC_SHEAR_MODULUS);
    assert!(gs_lat > 1e-8 && gs_lat < 10.0, "G_s lattice = {gs_lat}");

    // The RBC spans ~16 fine lattice nodes, matching the paper's "order of
    // magnitude smaller than the length scale of an individual RBC".
    let d_lat = fine_conv.length_to_lattice(RBC_DIAMETER);
    assert!(
        d_lat > 8.0 && d_lat < 40.0,
        "RBC diameter {d_lat} fine nodes"
    );
}

#[test]
fn voxelized_tree_carries_flow() {
    // Grow a small tree, voxelize, open it to flow (inlet + leaf outlets —
    // a body force alone in a *sealed* tree correctly produces zero net
    // flow), and confirm the lumen flows while walls hold.
    let mut rng = StdRng::seed_from_u64(5);
    let params = TreeParams {
        root_radius: 5.0,
        root_length: 30.0,
        levels: 2,
        branch_angle: 0.4,
        asymmetry: 0.5,
        jitter: 0.0,
    };
    let tree = VascularTree::grow(&params, Vec3::new(16.0, 16.0, 2.0), Vec3::Z, &mut rng);
    let mut lat = Lattice::new(32, 32, 64, 0.9);
    voxelize(&mut lat, &tree.sdf(), Vec3::ZERO, 1.0);
    let fluid0 = lat.fluid_node_count();
    assert!(fluid0 > 1000, "lumen too small: {fluid0}");
    let ports = apr_suite::geom::open_tree_flow(&mut lat, &tree, Vec3::ZERO, 1.0, 0.02);
    assert!(ports.outlets >= 2, "{ports:?}");
    for _ in 0..600 {
        lat.step();
    }
    let root_mid = lat.idx(16, 16, 12);
    let rho_mid = lat.moments_at(root_mid).0;
    for _ in 0..200 {
        lat.step();
    }
    // Flow developed inside the root lumen.
    assert_eq!(lat.flag(root_mid), NodeClass::Fluid);
    let u = lat.velocity_at(root_mid)[2];
    assert!(u > 1e-3, "no flow in the lumen: {u}");
    // Steady pressure head, not a mass leak.
    let (rho, _) = lat.moments_at(root_mid);
    assert!(
        (rho - rho_mid).abs() < 0.01,
        "density drifting: {rho_mid} -> {rho}"
    );
}

#[test]
fn perfmodel_neighbor_fraction_matches_real_decomposition() {
    // The cost model's neighbour-fraction approximation must track the true
    // interior-face fraction of real block decompositions.
    for tasks in [8usize, 64, 512] {
        let d = BlockDecomposition::new([64, 64, 64], tasks);
        let total_faces = 6.0 * tasks as f64;
        let interior_faces: usize = (0..tasks).map(|t| d.face_neighbors(t).len()).sum();
        let real = interior_faces as f64 / total_faces;
        let model = neighbor_fraction(tasks);
        assert!(
            (real - model).abs() < 0.15,
            "tasks {tasks}: real {real} vs model {model}"
        );
    }
}

#[test]
fn cylinder_tube_flow_matches_across_apis() {
    // The geom voxelizer and the lattice's built-in tube helper must agree
    // on the resulting flow field.
    let radius = 7.0;
    let g = 1e-6;
    let mut a = apr_suite::lattice::force_driven_tube(17, 17, 4, 0.9, radius, g);
    let mut b = Lattice::new(17, 17, 4, 0.9);
    b.periodic = [false, false, true];
    b.body_force = [0.0, 0.0, g];
    let sdf = Cylinder::new(Vec3::new(8.0, 8.0, 0.0), Vec3::Z, radius);
    voxelize(&mut b, &sdf, Vec3::ZERO, 1.0);
    for _ in 0..3000 {
        a.step();
        b.step();
    }
    let ua = a.velocity_at(a.idx(8, 8, 2))[2];
    let ub = b.velocity_at(b.idx(8, 8, 2))[2];
    assert!(ua > 0.0 && ub > 0.0);
    assert!((ua - ub).abs() / ua < 0.05, "centerline {ua} vs {ub}");
}
