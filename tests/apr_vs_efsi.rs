//! APR vs eFSI head-to-head on the same physical problem — the trust
//! argument behind the paper's Figure 6, reduced to a cheap, deterministic
//! case: one stiff CTC advected down a force-driven tube.
//!
//! eFSI resolves the whole tube at the fine resolution; APR couples a
//! coarse tube to a fine moving window. Both simulate the *same physical
//! fluid* (λ = 1: the paper's viscosity contrast exists only when RBCs fill
//! the window and homogenize to whole blood in the bulk — a cell-free
//! contrast would make the two models different physical problems), so the
//! CTC's transport speed must agree.

use apr_suite::cells::{CellKind, ContactParams};
use apr_suite::core::{AprEngine, EfsiEngine};
use apr_suite::coupling::fine_tau;
use apr_suite::lattice::force_driven_tube;
use apr_suite::lattice::Lattice;
use apr_suite::membrane::{Membrane, MembraneMaterial, ReferenceState};
use apr_suite::mesh::{icosphere, Vec3};
use std::sync::Arc;

const N: usize = 2; // refinement ratio
const TAU_C: f64 = 0.9;
const G: f64 = 8e-5; // coarse-lattice body force
const LAMBDA: f64 = 1.0; // single-fluid head-to-head (see module docs)
const RADIUS_C: f64 = 8.0; // tube radius in coarse units

fn ctc_membrane(radius: f64) -> (Arc<Membrane>, apr_suite::mesh::TriMesh) {
    let mesh = icosphere(2, radius);
    let re = Arc::new(ReferenceState::build(&mesh));
    // Stiff CTC; moduli scale with resolution so physics match: G_s in
    // lattice units scales as dt²/dx³ ∝ 1/n (convective scaling), handled
    // by the caller passing the right value.
    (
        Arc::new(Membrane::new(re, MembraneMaterial::ctc(4e-3, 2e-4))),
        mesh,
    )
}

/// eFSI: the whole tube at fine resolution (coarse dims × n), fine time
/// step. Body force scales by 1/n (acceleration in lattice units ∝ dt²/dx).
fn run_efsi(coarse_steps: u64) -> f64 {
    let (nx, ny, nz) = (17usize * N, 17 * N, 40 * N);
    let tau_f = fine_tau(TAU_C, N, LAMBDA);
    let mut lat = force_driven_tube(nx, ny, nz, tau_f, RADIUS_C * N as f64, G / N as f64);
    lat.periodic = [false, false, true];
    let mut engine = EfsiEngine::new(
        lat,
        4,
        ContactParams {
            cutoff: 1.0,
            strength: 5e-4,
        },
    );
    let (mem, mesh) = ctc_membrane(2.5 * N as f64);
    let start = Vec3::new(
        (nx as f64 - 1.0) / 2.0,
        (ny as f64 - 1.0) / 2.0,
        8.0 * N as f64,
    );
    let verts: Vec<Vec3> = mesh.vertices.iter().map(|&v| v + start).collect();
    engine.add_cell(CellKind::Ctc, mem, verts);
    for _ in 0..coarse_steps * N as u64 {
        engine.step();
    }
    let end = engine.centroid_of_first(CellKind::Ctc).unwrap();
    // Return displacement in coarse units.
    (end.z - start.z) / N as f64
}

/// APR: coarse tube + fine moving window around the CTC.
fn run_apr(coarse_steps: u64) -> (f64, u64) {
    let (nx, ny, nz) = (17usize, 17, 40);
    let coarse = force_driven_tube(nx, ny, nz, TAU_C, RADIUS_C, G);
    let span = 10usize;
    let dim = span * N + 1;
    let mut fine = Lattice::new(dim, dim, dim, fine_tau(TAU_C, N, LAMBDA));
    fine.body_force = [0.0, 0.0, G / N as f64];
    let origin = [3.0, 3.0, 3.0];
    let mut engine = AprEngine::builder(coarse, fine, origin, N, LAMBDA)
        .window(
            span as f64 * N as f64 * 0.28,
            span as f64 * N as f64 * 0.11,
            span as f64 * N as f64 * 0.11,
        )
        .contact(ContactParams {
            cutoff: 1.0,
            strength: 5e-4,
        })
        .build();
    let (mem, mesh) = ctc_membrane(2.5 * N as f64);
    // Same world start: tube centre, z = 8 coarse.
    let start_world = Vec3::new(8.0, 8.0, 8.0);
    let start_fine = engine.world_to_fine(start_world);
    let verts: Vec<Vec3> = mesh.vertices.iter().map(|&v| v + start_fine).collect();
    engine.add_ctc(mem, verts);
    for _ in 0..coarse_steps {
        engine.step();
    }
    let end = engine.tracker.current().unwrap();
    (end.z - start_world.z, engine.window_moves())
}

#[test]
fn apr_recovers_efsi_transport_speed() {
    let steps = 400u64;
    let efsi_dz = run_efsi(steps);
    let (apr_dz, moves) = run_apr(steps);
    assert!(efsi_dz > 1.0, "eFSI CTC barely moved: {efsi_dz}");
    assert!(apr_dz > 1.0, "APR CTC barely moved: {apr_dz}");
    let ratio = apr_dz / efsi_dz;
    assert!(
        (0.75..1.35).contains(&ratio),
        "transport mismatch: eFSI Δz = {efsi_dz:.2}, APR Δz = {apr_dz:.2} (ratio {ratio:.2}, {moves} moves)"
    );
}
