//! Execution-backend determinism: the ISSUE acceptance criterion that the
//! same APR problem produces **bit-identical** results for every worker
//! thread count, and that the guardian checkpoint→rollback cycle replays
//! the identical trajectory under a multithreaded pool.
//!
//! apr-exec guarantees this by construction — chunk layout depends only on
//! the problem size, never the thread count, and all reductions and
//! scratch-buffer merges happen in fixed chunk order — so these tests pin
//! the contract end-to-end through the full engine (LBM, IBM spreading,
//! membrane forces, hematocrit maintenance, RNG-driven insertion).
//!
//! The worker pool is process-global, so every test that swaps it holds
//! `POOL_LOCK` to keep concurrent test threads from racing on it.

use apr_suite::cells::RbcTile;
use apr_suite::core::{restore_engine, save_engine, AprEngine};
use apr_suite::coupling::fine_tau;
use apr_suite::lattice::{force_driven_tube, Lattice};
use apr_suite::membrane::{Membrane, MembraneMaterial, ReferenceState};
use apr_suite::mesh::biconcave_rbc_mesh;
use apr_suite::window::{HematocritController, InsertionContext};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex};

static POOL_LOCK: Mutex<()> = Mutex::new(());

/// The guardian-test recipe: force-driven tube with a refined window kept
/// at target hematocrit by RNG-driven insertion — every parallel code path
/// (collide, stream, spread, interpolate, membrane forces, advection) runs.
fn hematocrit_engine() -> AprEngine {
    let (nx, ny, nz) = (21usize, 21usize, 48usize);
    let (n, tau_c, lambda, g) = (3usize, 0.9f64, 0.3f64, 4e-6f64);
    let coarse = force_driven_tube(nx, ny, nz, tau_c, 9.0, g);
    let span = 8usize;
    let fine_dim = span * n + 1;
    let mut fine = Lattice::new(fine_dim, fine_dim, fine_dim, fine_tau(tau_c, n, lambda));
    fine.body_force = [0.0, 0.0, g / n as f64];
    let origin = [
        (nx as f64 - 1.0) / 2.0 - span as f64 / 2.0,
        (ny as f64 - 1.0) / 2.0 - span as f64 / 2.0,
        4.0,
    ];
    let mut eng = AprEngine::builder(coarse, fine, origin, n, lambda)
        .maintenance_interval(10)
        .build();

    let radius = 3.0;
    let rbc_mesh = biconcave_rbc_mesh(1, radius);
    let re = Arc::new(ReferenceState::build(&rbc_mesh));
    let membrane = Arc::new(Membrane::new(re, MembraneMaterial::rbc(2e-4, 1e-5)));
    let mut rng = StdRng::seed_from_u64(99);
    let volume = rbc_mesh.enclosed_volume();
    let tile = RbcTile::build(40.0, 0.15, radius, radius * 0.6, volume, &mut rng);
    eng.insertion = Some(InsertionContext {
        rbc_mesh,
        rbc_membrane: membrane,
        tile,
        min_gap: 0.8,
    });
    eng.controller = Some(HematocritController::new(0.12, 0.85, volume));
    let placed = eng.populate_window();
    assert!(placed > 5, "initial packing placed only {placed} cells");
    eng
}

/// Run 100 APR steps on `threads` workers; return the full engine
/// checkpoint (distributions, moments, cells, RNG — everything), the raw
/// bits of the fine lattice's distributions, and the bits of the window
/// hematocrit.
fn run_100_steps(threads: usize) -> (Vec<u8>, Vec<u64>, u64) {
    apr_suite::exec::set_threads(threads);
    let mut eng = hematocrit_engine();
    for _ in 0..100 {
        eng.step();
    }
    let f_bits: Vec<u64> = (0..eng.fine.node_count())
        .flat_map(|node| eng.fine.distributions(node).iter().map(|v| v.to_bits()))
        .collect();
    let ht_bits = eng
        .window_hematocrit()
        .expect("controller is configured")
        .to_bits();
    (save_engine(&eng), f_bits, ht_bits)
}

#[test]
fn hundred_steps_bit_identical_across_thread_counts() {
    let _guard = POOL_LOCK.lock().unwrap();
    let (blob_1, f_1, ht_1) = run_100_steps(1);
    for threads in [2usize, 4, 8] {
        let (blob_t, f_t, ht_t) = run_100_steps(threads);
        assert_eq!(
            f_1, f_t,
            "fine-lattice distributions diverged at {threads} threads"
        );
        assert_eq!(
            ht_1, ht_t,
            "window hematocrit diverged at {threads} threads"
        );
        assert_eq!(
            blob_1, blob_t,
            "engine checkpoint diverged at {threads} threads"
        );
    }
    apr_suite::exec::set_threads(1);
}

#[test]
fn guardian_rollback_replays_identically_at_four_threads() {
    let _guard = POOL_LOCK.lock().unwrap();
    apr_suite::exec::set_threads(4);
    let mut eng = hematocrit_engine();
    for _ in 0..30 {
        eng.step();
    }
    let checkpoint = save_engine(&eng);
    for _ in 0..20 {
        eng.step();
    }
    let end_state = save_engine(&eng);

    // Roll back to the checkpoint and replay the same 20 steps: the pool
    // is still running 4 workers, so any scheduling nondeterminism would
    // surface as a byte diff here.
    restore_engine(&mut eng, &checkpoint, None).expect("rollback must succeed");
    assert_eq!(
        save_engine(&eng),
        checkpoint,
        "restored engine must re-serialize to the identical checkpoint"
    );
    for _ in 0..20 {
        eng.step();
    }
    assert_eq!(
        save_engine(&eng),
        end_state,
        "replayed trajectory diverged from the pre-rollback run"
    );
    apr_suite::exec::set_threads(1);
}

/// Guided chunking claims chunks from a shared cursor, so which lane
/// computes which chunk depends on thread timing. The results must not:
/// 20 runs with randomized per-lane start delays (forcing different claim
/// interleavings every run) all land on the identical trajectory.
#[test]
fn guided_chunking_survives_randomized_worker_starts() {
    use apr_suite::lattice::{ChunkingPolicy, KernelKind};
    use rand::Rng;

    let _guard = POOL_LOCK.lock().unwrap();
    apr_suite::exec::set_threads(4);
    let run_once = |kind: KernelKind| {
        let mut lat = force_driven_tube(13, 13, 24, 0.9, 5.0, 1e-6);
        lat.set_kernel(Some(kind));
        lat.set_chunking(Some(ChunkingPolicy::Guided));
        for _ in 0..30 {
            lat.step();
        }
        let bits: Vec<u64> = lat.storage_f().iter().map(|v| v.to_bits()).collect();
        bits
    };
    let mut rng = StdRng::seed_from_u64(0xC1A1);
    for kind in [KernelKind::FusedSwap, KernelKind::FusedSimd] {
        let baseline = run_once(kind);
        for round in 0..20 {
            let table: Vec<u64> = (0..4).map(|_| rng.gen_range(0..300_000u64)).collect();
            apr_suite::exec::set_test_start_jitter(Some(table));
            let jittered = run_once(kind);
            apr_suite::exec::set_test_start_jitter(None);
            assert_eq!(
                baseline, jittered,
                "{kind:?} trajectory changed with start jitter (round {round})"
            );
        }
    }
    apr_suite::exec::set_threads(1);
}
