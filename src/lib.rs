//! Umbrella crate for the APR-RBC reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single dependency. See `apr_core` for the main simulation API.

pub use apr_cells as cells;
pub use apr_core as core;
pub use apr_coupling as coupling;
pub use apr_exec as exec;
pub use apr_geom as geom;
pub use apr_guard as guard;
pub use apr_hemo as hemo;
pub use apr_ibm as ibm;
pub use apr_kernels as kernels;
pub use apr_lattice as lattice;
pub use apr_membrane as membrane;
pub use apr_mesh as mesh;
pub use apr_parallel as parallel;
pub use apr_perfmodel as perfmodel;
pub use apr_scenarios as scenarios;
pub use apr_serve as serve;
pub use apr_telemetry as telemetry;
pub use apr_window as window;
