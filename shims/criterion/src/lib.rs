//! Offline stand-in for [criterion](https://docs.rs/criterion) covering the
//! subset this workspace's benches use: `Criterion::benchmark_group`,
//! `bench_function`, `Bencher::iter`/`iter_with_setup`, `black_box`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros (both paren and brace forms).
//!
//! Statistics are intentionally simple — a warm-up pass then `sample_size`
//! timed samples, reporting min/mean/max to stdout. No HTML reports, no
//! outlier analysis; enough to compare relative costs and keep `cargo bench`
//! compiling and running offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark throughput annotation (recorded, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level bench configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Soft cap on total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            config: self.clone(),
            throughput: None,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.clone();
        run_one(&config, None, &id.into(), f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    config: Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Annotate subsequent benches with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.config.sample_size = n;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.config, Some(&self.name), &id.into(), f);
        self
    }

    /// End the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Timing handle passed to benchmark closures.
pub struct Bencher<'a> {
    config: &'a Criterion,
    samples: Vec<Duration>,
}

impl Bencher<'_> {
    /// Time `routine`, warm-up first, then `sample_size` timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.config.warm_up_time {
                break;
            }
        }
        // Sampling, capped by sample count and the measurement budget.
        let measure_start = Instant::now();
        for i in 0..self.config.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if i > 0 && measure_start.elapsed() >= self.config.measurement_time {
                break;
            }
        }
    }

    /// Like [`Bencher::iter`], but runs `setup` before each timed invocation
    /// of `routine`; only `routine` is timed.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        loop {
            let input = setup();
            black_box(routine(input));
            if warm_start.elapsed() >= self.config.warm_up_time {
                break;
            }
        }
        let measure_start = Instant::now();
        for i in 0..self.config.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
            if i > 0 && measure_start.elapsed() >= self.config.measurement_time {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(config: &Criterion, group: Option<&str>, id: &str, mut f: F) {
    let mut b = Bencher {
        config,
        samples: Vec::new(),
    };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if b.samples.is_empty() {
        println!("bench {label}: no samples recorded");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().unwrap();
    let max = b.samples.iter().max().unwrap();
    println!(
        "bench {label}: mean {mean:?} (min {min:?}, max {max:?}, {} samples)",
        b.samples.len()
    );
}

/// Define a bench harness function from targets; supports the paren form
/// `criterion_group!(name, t1, t2)` and the brace form with `config = …`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut c = quick();
        let mut count = 0u64;
        c.bench_function("counter", |b| b.iter(|| count += 1));
        assert!(
            count >= 4,
            "warm-up + samples should run the routine, got {count}"
        );
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        let mut ran = false;
        group.bench_function("inner", |b| b.iter(|| ran = true));
        group.finish();
        assert!(ran);
    }

    criterion_group! {
        name = shim_group;
        config = Criterion::default().sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        targets = target_a
    }

    fn target_a(c: &mut Criterion) {
        c.bench_function("a", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn macro_brace_form_compiles_and_runs() {
        shim_group();
    }
}
