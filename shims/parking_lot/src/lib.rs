//! Offline stand-in for [parking_lot](https://docs.rs/parking_lot): `Mutex`
//! and `RwLock` with parking_lot's non-poisoning API, backed by `std::sync`.
//! Poison is swallowed by taking the inner guard from a poisoned error —
//! parking_lot semantics (a panicking holder does not poison the lock).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex (std-backed).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// New unlocked mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock (std-backed).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// New unlocked rwlock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
