//! Offline stand-in for [rayon](https://docs.rs/rayon) covering the subset
//! of its API this workspace uses.
//!
//! The build environment has no network access and no vendored registry, so
//! the real rayon cannot be fetched. This shim executes everything
//! **sequentially** on the calling thread: `par_iter` family methods return
//! ordinary `std` iterators, and [`join`] runs its closures back to back.
//! Because every "parallel" iterator here *is* a `std::iter::Iterator`, the
//! full std combinator set (`map`, `sum`, `for_each`, …) is available, which
//! is exactly how call sites use rayon's `ParallelIterator`.
//!
//! Determinism note: sequential execution makes reductions bit-reproducible,
//! which the checkpoint/rollback tests rely on. If the real rayon is ever
//! restored, those tests must switch to tolerance-based comparison.

/// Parallel iterator traits. [`iter::ParallelIterator`] is a blanket alias
/// for `Iterator` so `impl ParallelIterator<Item = T>` return types work.
pub mod iter {
    /// Sequential stand-in: every `Iterator` is a `ParallelIterator`.
    pub trait ParallelIterator: Iterator {}
    impl<I: Iterator> ParallelIterator for I {}
}

/// Run two closures "in parallel" (sequentially here), returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    let ra = a();
    let rb = b();
    (ra, rb)
}

/// Error from building a thread pool (never produced by this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error (shim)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`]; thread count is recorded but ignored —
/// everything runs on the calling thread.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request a worker count (recorded for introspection only).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the (sequential) pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.max(1),
        })
    }
}

/// Sequential stand-in for rayon's thread pool.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` "inside" the pool (directly on the calling thread).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }

    /// Configured worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Number of threads in the (implicit) global pool — always 1 here.
pub fn current_num_threads() -> usize {
    1
}

/// The traits rayon's prelude exports, implemented over std iterators.
pub mod prelude {
    pub use crate::iter::ParallelIterator;

    /// `collection.into_par_iter()` — sequential `into_iter`.
    pub trait IntoParallelIterator {
        type Iter: Iterator<Item = Self::Item>;
        type Item;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `collection.par_iter()` — sequential `iter`.
    pub trait IntoParallelRefIterator<'data> {
        type Iter: Iterator<Item = Self::Item>;
        type Item: 'data;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Iter = <&'data C as IntoIterator>::IntoIter;
        type Item = <&'data C as IntoIterator>::Item;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `collection.par_iter_mut()` — sequential `iter_mut`.
    pub trait IntoParallelRefMutIterator<'data> {
        type Iter: Iterator<Item = Self::Item>;
        type Item: 'data;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
    where
        &'data mut C: IntoIterator,
    {
        type Iter = <&'data mut C as IntoIterator>::IntoIter;
        type Item = <&'data mut C as IntoIterator>::Item;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `slice.par_chunks(n)` — sequential `chunks`.
    pub trait ParallelSlice<T> {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// `slice.par_chunks_mut(n)` — sequential `chunks_mut`.
    pub trait ParallelSliceMut<T> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1, 2, 3, 4];
        let s: i32 = v.par_iter().map(|x| x * 2).sum();
        assert_eq!(s, 20);
        let mut w = vec![1, 2, 3];
        w.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(w, vec![2, 3, 4]);
        let c: Vec<i32> = vec![5, 6].into_par_iter().collect();
        assert_eq!(c, vec![5, 6]);
    }

    #[test]
    fn chunks_and_join() {
        let v = [1, 2, 3, 4, 5];
        assert_eq!(v.par_chunks(2).count(), 3);
        let (a, b) = super::join(|| 1 + 1, || "x");
        assert_eq!((a, b), (2, "x"));
    }
}
