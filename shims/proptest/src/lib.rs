//! Offline stand-in for [proptest](https://docs.rs/proptest) covering the
//! subset this workspace uses: the `proptest!` macro with `arg in strategy`
//! bindings, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, range and
//! tuple strategies, `Strategy::prop_map`, and `collection::vec`.
//!
//! Differences from the real crate: no shrinking (a failing case reports its
//! seed and case index instead of a minimized input), and sampling uses the
//! workspace's deterministic xoshiro `StdRng`, so failures are reproducible
//! run-to-run. Case count defaults to 96 and can be raised with the
//! `PROPTEST_CASES` environment variable.

use rand::Rng;

/// The RNG driving every sample.
pub type TestRng = rand::rngs::StdRng;

/// A source of random values of one type (subset of `proptest::Strategy`).
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keep only samples for which `pred` holds (rejection sampling; panics
    /// after 1000 consecutive rejections).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive samples: {}",
            self.whence
        );
    }
}

/// Strategy yielding one fixed value (subset of `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length bounds for generated collections (half-open).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each case draws a length then that many elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Case driver used by the [`proptest!`] expansion.
pub mod test_runner {
    pub use super::TestRng;
    use rand::SeedableRng;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure — aborts the whole test with this message.
        Fail(String),
        /// `prop_assume!` rejection — the case is skipped, not failed.
        Reject,
    }

    /// Number of cases per property (`PROPTEST_CASES` env override).
    pub fn case_count() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(96)
    }

    /// Run `case` repeatedly with a deterministic per-test RNG.
    pub fn run<F>(test_name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut hasher = DefaultHasher::new();
        test_name.hash(&mut hasher);
        let seed = hasher.finish() ^ 0xA55A_5AA5_55AA_AA55;
        let mut rng = TestRng::seed_from_u64(seed);
        let cases = case_count();
        let mut executed = 0usize;
        let mut rejected = 0usize;
        while executed < cases {
            match case(&mut rng) {
                Ok(()) => executed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected < 64 * cases,
                        "{test_name}: too many prop_assume! rejections ({rejected})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{test_name}: case {executed} failed (rng seed {seed:#x}): {msg}")
                }
            }
        }
    }
}

/// Property test block: `proptest! { #[test] fn f(x in strat, ...) { .. } }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(
                    stringify!($name),
                    |__proptest_rng: &mut $crate::test_runner::TestRng|
                        -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $(let $arg = $crate::Strategy::sample(&($strat), __proptest_rng);)+
                        $body
                        Ok(())
                    },
                );
            }
        )+
    };
}

/// Assert inside a `proptest!` body; failure aborts with seed context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        // Bind first so the negation is on a plain bool (clippy
        // neg_cmp_op_on_partial_ord fires on `!(a > b)` for floats).
        let __cond: bool = $cond;
        if !__cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            __l, __r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        let __cond: bool = $cond;
        if !__cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Just, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        /// Range strategies stay inside their bounds.
        #[test]
        fn ranges_in_bounds(x in -2.0..3.0f64, n in 1u32..10, m in 0..=5i32) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!((0..=5).contains(&m));
        }

        /// Tuple + vec + prop_map compose.
        #[test]
        fn composite_strategies(
            v in crate::collection::vec((0u64..4, (0.0..1.0f64, 0.0..1.0f64)), 2..9)
                .prop_map(|v| v.into_iter().map(|(id, (a, b))| (id, a + b)).collect::<Vec<_>>()),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 9, "len {}", v.len());
            for (id, s) in &v {
                prop_assert!(*id < 4);
                prop_assert!((0.0..2.0).contains(s));
            }
        }

        /// prop_assume rejects without failing.
        #[test]
        fn assume_skips(x in 0.0..1.0f64) {
            prop_assume!(x > 0.5);
            prop_assert!(x > 0.5);
        }
    }

    #[test]
    #[should_panic(expected = "case 0 failed")]
    fn failing_property_panics_with_context() {
        crate::test_runner::run("failing_property", |rng| {
            let x = crate::Strategy::sample(&(0.0..1.0f64), rng);
            crate::prop_assert!(x > 2.0, "x was {x}");
            Ok(())
        });
    }
}
