//! Offline stand-in for [rand](https://docs.rs/rand) 0.8 covering the subset
//! of its API this workspace uses: `StdRng` + `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}` over float/integer ranges, and
//! `seq::SliceRandom::{shuffle, choose}`.
//!
//! The generator is xoshiro256** seeded through splitmix64 — high quality,
//! tiny, and **checkpointable**: unlike the real `StdRng`, [`rngs::StdRng`]
//! exposes [`rngs::StdRng::state`] / [`rngs::StdRng::from_state`] so the
//! simulation guardian can serialize the exact stream position and make
//! restarts bit-identical. Sampled values differ from the real rand crate,
//! which only matters for tests pinning exact sequences (none here do).

/// Low-level word source (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Deterministic construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Seed type (fixed-width byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it to a full seed deterministically.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly from a range (subset of `SampleUniform`).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sample range");
                let u = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + u * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sample range");
                let u = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(unused_comparisons)]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sample range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sample range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Range types accepted by [`Rng::gen_range`] (subset of `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Values producible by [`Rng::gen`] (stand-in for `Standard` sampling).
pub trait StandardSample {
    /// Draw one value from the "standard" distribution of the type.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Standard-distribution sample (`f64` in `[0,1)`, full-width ints…).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the shim's standard generator.
    ///
    /// Not the real rand `StdRng` (ChaCha12); chosen because its 256-bit
    /// state round-trips through [`StdRng::state`]/[`StdRng::from_state`],
    /// which full-engine checkpointing needs for bit-identical resumes.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Exact generator state, for checkpointing.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator at an exact stream position.
        pub fn from_state(s: [u64; 4]) -> Self {
            // An all-zero state is a fixed point of xoshiro; never valid
            // from seed_from_u64, but guard restored checkpoints anyway.
            if s == [0; 4] {
                Self::seed_from_u64(0)
            } else {
                Self { s }
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

/// Sequence sampling (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// `shuffle` / `choose` over slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0f64), b.gen_range(0.0..1.0f64));
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen_range(0u64..1 << 60), c.gen_range(0u64..1 << 60));
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&x));
            let n = rng.gen_range(3..9usize);
            assert!((3..9).contains(&n));
            let m = rng.gen_range(0..=4u32);
            assert!(m <= 4);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(99);
        for _ in 0..17 {
            let _ = a.gen::<u64>();
        }
        let snap = a.state();
        let tail_a: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let mut b = StdRng::from_state(snap);
        let tail_b: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        assert_eq!(tail_a, tail_b);
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn uniform_mean_is_plausible() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0f64)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
