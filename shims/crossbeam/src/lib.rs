//! Offline stand-in for [crossbeam](https://docs.rs/crossbeam) covering the
//! subset this workspace uses: `channel::{unbounded, Sender, Receiver}`.
//!
//! Implemented over a `Mutex<VecDeque>` + `Condvar` so that — unlike
//! `std::sync::mpsc` — both ends are `Clone + Send + Sync`, matching
//! crossbeam's MPMC semantics that the halo exchanger relies on.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<QueueState<T>>,
        ready: Condvar,
    }

    struct QueueState<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the deadline.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.queue.lock().unwrap();
            if q.receivers == 0 {
                return Err(SendError(value));
            }
            q.items.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut q = self.shared.queue.lock().unwrap();
            q.senders -= 1;
            if q.senders == 0 {
                drop(q);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = q.items.pop_front() {
                    return Ok(v);
                }
                if q.senders == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap();
            }
        }

        /// Block until a message arrives, all senders disconnect, or
        /// `timeout` elapses — whichever happens first.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = q.items.pop_front() {
                    return Ok(v);
                }
                if q.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self.shared.ready.wait_timeout(q, deadline - now).unwrap();
                q = guard;
                if res.timed_out() && q.items.is_empty() {
                    if q.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap();
            match q.items.pop_front() {
                Some(v) => Ok(v),
                None if q.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_and_counts() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_is_observable() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv().unwrap(), 1);
            assert!(rx.recv().is_err());
            let (tx2, rx2) = unbounded::<u32>();
            drop(rx2);
            assert!(tx2.send(5).is_err());
        }

        #[test]
        fn recv_timeout_observes_messages_timeouts_and_disconnects() {
            let (tx, rx) = unbounded();
            tx.send(7u32).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(10)), Ok(7));
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn works_across_threads() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100u64 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            for _ in 0..100 {
                sum += rx.recv().unwrap();
            }
            h.join().unwrap();
            assert_eq!(sum, 4950);
        }
    }
}
